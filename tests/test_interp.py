"""Unit and property tests for the interpolation library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import (
    InverseLookup,
    LinearInterpolator,
    NaturalCubicSpline,
    PchipInterpolator,
    find_crossing,
    monotone_envelope,
)


def knot_sets(min_size=3, max_size=12):
    """Strategy producing strictly increasing x with finite y."""
    return st.lists(
        st.tuples(st.floats(0, 1000, allow_nan=False),
                  st.floats(-100, 100, allow_nan=False)),
        min_size=min_size, max_size=max_size,
        unique_by=lambda p: round(p[0], 3),
    ).map(lambda pts: sorted(pts)).filter(
        lambda pts: all(b[0] - a[0] > 1e-3 for a, b in zip(pts, pts[1:])))


class TestValidation:
    @pytest.mark.parametrize("cls", [LinearInterpolator, NaturalCubicSpline,
                                     PchipInterpolator])
    def test_rejects_single_knot(self, cls):
        with pytest.raises(ValueError):
            cls([1.0], [2.0])

    @pytest.mark.parametrize("cls", [LinearInterpolator, NaturalCubicSpline,
                                     PchipInterpolator])
    def test_rejects_unsorted_x(self, cls):
        with pytest.raises(ValueError):
            cls([0.0, 2.0, 1.0], [1.0, 2.0, 3.0])

    @pytest.mark.parametrize("cls", [LinearInterpolator, NaturalCubicSpline,
                                     PchipInterpolator])
    def test_rejects_duplicate_x(self, cls):
        with pytest.raises(ValueError):
            cls([0.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearInterpolator([0.0, 1.0], [1.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            PchipInterpolator([0.0, 1.0], [1.0, float("inf")])


class TestInterpolationInvariants:
    @pytest.mark.parametrize("cls", [LinearInterpolator, NaturalCubicSpline,
                                     PchipInterpolator])
    def test_passes_through_knots(self, cls):
        x = np.array([0.0, 1.0, 3.0, 7.0, 10.0])
        y = np.array([2.0, 5.0, 3.0, 8.0, 8.5])
        f = cls(x, y)
        assert np.allclose(f(x), y, atol=1e-9)

    @pytest.mark.parametrize("cls", [LinearInterpolator, NaturalCubicSpline,
                                     PchipInterpolator])
    def test_scalar_and_array_agree(self, cls):
        f = cls([0.0, 1.0, 2.0], [0.0, 1.0, 4.0])
        assert f(0.5) == pytest.approx(float(f(np.array([0.5]))[0]))

    def test_linear_reproduces_line(self):
        f = LinearInterpolator([0.0, 5.0, 10.0], [1.0, 11.0, 21.0])
        xs = np.linspace(-5, 15, 50)
        assert np.allclose(f(xs), 2 * xs + 1)

    def test_cubic_reproduces_line_exactly(self):
        """A natural cubic spline through collinear points is that line."""
        x = np.array([0.0, 1.0, 2.0, 4.0, 8.0])
        f = NaturalCubicSpline(x, 3 * x + 2)
        xs = np.linspace(0, 8, 33)
        assert np.allclose(f(xs), 3 * xs + 2, atol=1e-9)

    def test_pchip_reproduces_line_exactly(self):
        x = np.array([0.0, 1.0, 2.0, 4.0, 8.0])
        f = PchipInterpolator(x, -2 * x + 7)
        xs = np.linspace(0, 8, 33)
        assert np.allclose(f(xs), -2 * xs + 7, atol=1e-9)

    def test_natural_spline_boundary_second_derivatives_zero(self):
        f = NaturalCubicSpline([0.0, 1.0, 2.0, 3.0], [0.0, 2.0, 1.0, 3.0])
        m = f.second_derivatives()
        assert m[0] == 0.0 and m[-1] == 0.0

    def test_linear_extrapolation_beyond_domain(self):
        f = PchipInterpolator([0.0, 10.0], [0.0, 100.0])
        # slope 10 everywhere for two knots
        assert f(20.0) == pytest.approx(200.0)
        assert f(-5.0) == pytest.approx(-50.0)


class TestPchipMonotonicity:
    def test_monotone_data_gives_monotone_curve(self):
        x = np.array([0.0, 1.0, 2.0, 5.0, 9.0, 10.0])
        y = np.array([0.0, 0.5, 4.0, 4.1, 9.0, 20.0])
        f = PchipInterpolator(x, y)
        xs = np.linspace(0, 10, 500)
        ys = f(xs)
        assert np.all(np.diff(ys) >= -1e-12)

    def test_no_overshoot_between_knots(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 10.0, 10.5])
        f = PchipInterpolator(x, y)
        xs = np.linspace(0, 2, 200)
        ys = f(xs)
        assert ys.max() <= 10.5 + 1e-9
        assert ys.min() >= -1e-9

    def test_flat_segment_stays_flat(self):
        f = PchipInterpolator([0.0, 1.0, 2.0, 3.0], [1.0, 5.0, 5.0, 9.0])
        xs = np.linspace(1.0, 2.0, 50)
        assert np.allclose(f(xs), 5.0, atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(knot_sets())
    def test_property_stays_within_data_range(self, pts):
        x = [p[0] for p in pts]
        y = [p[1] for p in pts]
        f = PchipInterpolator(x, y)
        xs = np.linspace(x[0], x[-1], 100)
        ys = f(xs)
        assert ys.max() <= max(y) + 1e-6
        assert ys.min() >= min(y) - 1e-6

    @settings(max_examples=60, deadline=None)
    @given(knot_sets())
    def test_property_monotone_input_monotone_output(self, pts):
        x = [p[0] for p in pts]
        y = sorted(p[1] for p in pts)  # force monotone data
        f = PchipInterpolator(x, y)
        xs = np.linspace(x[0], x[-1], 100)
        assert np.all(np.diff(f(xs)) >= -1e-9)

    @settings(max_examples=40, deadline=None)
    @given(knot_sets())
    def test_property_all_interpolants_hit_knots(self, pts):
        x = [p[0] for p in pts]
        y = [p[1] for p in pts]
        for cls in (LinearInterpolator, NaturalCubicSpline, PchipInterpolator):
            f = cls(x, y)
            assert np.allclose(f(np.asarray(x)), y, atol=1e-6)


class TestInverseLookup:
    def test_exact_inverse_on_monotone_curve(self):
        f = PchipInterpolator([0.0, 50.0, 100.0], [10.0, 20.0, 100.0])
        inv = InverseLookup(f, grid_points=1024)
        assert inv.largest_below(20.0) == pytest.approx(50.0, abs=0.5)

    def test_target_below_curve_returns_domain_min(self):
        f = PchipInterpolator([5.0, 100.0], [10.0, 50.0])
        inv = InverseLookup(f)
        assert inv.largest_below(1.0) == 5.0

    def test_target_above_curve_extrapolates(self):
        f = PchipInterpolator([0.0, 100.0], [0.0, 100.0])
        inv = InverseLookup(f, max_extrapolation=1.0)
        assert inv.largest_below(150.0) == pytest.approx(150.0, rel=0.05)

    def test_extrapolation_capped(self):
        f = PchipInterpolator([0.0, 100.0], [0.0, 100.0])
        inv = InverseLookup(f, max_extrapolation=0.1)
        assert inv.largest_below(1e9) == pytest.approx(110.0)

    def test_nonmonotone_curve_takes_largest_admissible(self):
        # dip in the middle: 0->10 rises, 10->20 dips, 20->30 rises high
        f = LinearInterpolator([0.0, 10.0, 20.0, 30.0],
                               [0.0, 50.0, 10.0, 100.0])
        inv = InverseLookup(f, grid_points=2048)
        # target 30: last x with f(x) <= 30 is on the final rising segment
        x = inv.largest_below(30.0)
        assert 20.0 < x < 30.0
        assert f(x) == pytest.approx(30.0, abs=1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(5, 500))
    def test_property_inverse_consistent(self, target):
        f = PchipInterpolator([0.0, 10.0, 50.0, 100.0],
                              [5.0, 15.0, 80.0, 300.0])
        inv = InverseLookup(f, grid_points=2048)
        x = inv.largest_below(target)
        # f(x) must not exceed the target (within grid tolerance)
        assert float(f(x)) <= target * 1.02 + 0.5


class TestHelpers:
    def test_monotone_envelope(self):
        out = monotone_envelope(np.array([1.0, 3.0, 2.0, 5.0, 4.0]))
        assert list(out) == [1.0, 3.0, 3.0, 5.0, 5.0]

    def test_find_crossing_interpolates(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 10.0, 20.0])
        assert find_crossing(x, y, 5.0) == pytest.approx(0.5)

    def test_find_crossing_none_when_below(self):
        assert find_crossing(np.array([0.0, 1.0]),
                             np.array([0.0, 1.0]), 5.0) is None

    def test_find_crossing_at_first_sample(self):
        assert find_crossing(np.array([2.0, 3.0]),
                             np.array([9.0, 10.0]), 5.0) == 2.0
