"""Tests for the §3 channel predictors."""

import numpy as np
import pytest

from repro.cellular import (
    EwmaPredictor,
    HoltPredictor,
    LastValuePredictor,
    LinearPredictor,
    MeanPredictor,
    compare_predictors,
    evaluate_predictor,
)


class TestLastValue:
    def test_predicts_last_observation(self):
        p = LastValuePredictor()
        p.update(5.0)
        p.update(7.0)
        assert p.predict() == 7.0

    def test_zero_before_any_data(self):
        assert LastValuePredictor().predict() == 0.0

    def test_reset(self):
        p = LastValuePredictor()
        p.update(5.0)
        p.reset()
        assert p.predict() == 0.0


class TestLinear:
    def test_extrapolates_trend(self):
        p = LinearPredictor(window=5)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            p.update(v)
        assert p.predict(1) == pytest.approx(6.0)
        assert p.predict(3) == pytest.approx(8.0)

    def test_window_limits_history(self):
        p = LinearPredictor(window=3)
        for v in (100.0, 1.0, 2.0, 3.0):   # old outlier leaves the window
            p.update(v)
        assert p.predict(1) == pytest.approx(4.0)

    def test_single_sample_predicts_flat(self):
        p = LinearPredictor()
        p.update(9.0)
        assert p.predict() == 9.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LinearPredictor(window=1)


class TestEwma:
    def test_converges_toward_level(self):
        p = EwmaPredictor(alpha=0.5)
        for _ in range(20):
            p.update(10.0)
        assert p.predict() == pytest.approx(10.0)

    def test_horizon_independent(self):
        p = EwmaPredictor()
        p.update(4.0)
        assert p.predict(1) == p.predict(10)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0.0)


class TestHolt:
    def test_captures_linear_trend(self):
        p = HoltPredictor(alpha=0.8, beta=0.8)
        for v in np.arange(0.0, 20.0):
            p.update(v)
        assert p.predict(1) == pytest.approx(20.0, abs=1.5)
        assert p.predict(5) == pytest.approx(24.0, abs=2.5)

    def test_flat_series_no_trend(self):
        p = HoltPredictor()
        for _ in range(30):
            p.update(5.0)
        assert p.predict(10) == pytest.approx(5.0)


class TestMean:
    def test_rolling_mean(self):
        p = MeanPredictor(window=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            p.update(v)
        assert p.predict() == pytest.approx(3.0)


class TestEvaluation:
    def test_perfect_prediction_zero_error(self):
        series = [5.0] * 30
        result = evaluate_predictor(LastValuePredictor(), series, horizon=1)
        assert result["rmse"] == 0.0
        assert result["mae"] == 0.0

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictor(LastValuePredictor(), [1.0, 2.0], horizon=1)

    def test_compare_includes_naive_baseline(self):
        rng = np.random.default_rng(0)
        series = rng.random(100)
        scores = compare_predictors(series)
        assert scores[0].name == "naive"
        assert scores[0].rmse_vs_naive == 1.0
        assert {s.name for s in scores} >= {"naive", "linear", "ewma",
                                            "holt", "mean"}

    def test_linear_wins_on_linear_series(self):
        series = np.arange(100, dtype=float)
        scores = {s.name: s for s in compare_predictors(series)}
        assert scores["linear"].rmse < scores["naive"].rmse

    def test_no_predictor_dominates_on_iid_noise(self):
        """§3's point in miniature: on unpredictable (white-noise) series
        no predictor beats naive by a large margin — the signal itself is
        the limit, not the predictor."""
        rng = np.random.default_rng(42)
        series = rng.exponential(1.0, size=400)
        scores = {s.name: s for s in compare_predictors(series)}
        for name in ("linear", "holt"):
            assert scores[name].rmse > 0.5 * scores["naive"].rmse

    def test_bursty_channel_series_poorly_predictable(self):
        """End-to-end: windowed throughput of a synthetic 3G trace keeps
        large relative RMSE for every predictor (Fig 4 discussion)."""
        from repro.cellular import generate_scenario_trace
        from repro.metrics import windowed_throughput
        trace = generate_scenario_trace("city_stationary", duration=60.0,
                                        technology="3g",
                                        mean_rate_bps=10e6, seed=31)
        deliveries = [(t, i, 0.0, 1400) for i, t in enumerate(trace)]
        _, series = windowed_throughput(deliveries, 0.020, end=60.0)
        scores = {s.name: s for s in compare_predictors(series)}
        mean_rate = float(np.mean(series))
        for score in scores.values():
            assert score.rmse > 0.3 * mean_rate   # ≥30% relative error
