"""Tests for the extended §2 baselines: LEDBAT, Compound, Binomial, PCC."""

import numpy as np
import pytest

from repro.experiments import FlowSpec, make_endpoints
from repro.metrics import flow_stats
from repro.netsim import DirectPath, DropTailQueue, Link, Simulator
from repro.pcc import PccReceiver, PccSender, allegro_utility
from repro.tcp import (
    BinomialSender,
    CompoundSender,
    CubicSender,
    LedbatSender,
    TcpReceiver,
)


def run_flow(sender, receiver, rate_bps=10e6, rtt=0.05, duration=40.0,
             queue_bytes=300_000, loss_rate=0.0, seed=0):
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps,
                queue=DropTailQueue(capacity_bytes=queue_bytes),
                loss_rate=loss_rate, rng=np.random.default_rng(seed))
    path = DirectPath(sim, link, sender, receiver, rtt=rtt)
    path.run(duration)
    return flow_stats(receiver.deliveries, start=duration / 2, end=duration)


class TestLedbat:
    def test_fills_link(self):
        stats = run_flow(LedbatSender(0), TcpReceiver(0))
        assert stats.throughput_bps > 0.8 * 10e6

    def test_holds_delay_near_target(self):
        """LEDBAT aims at 100 ms of queueing; it must neither bloat a big
        buffer nor sit at the floor."""
        stats = run_flow(LedbatSender(0), TcpReceiver(0),
                         queue_bytes=3_000_000, duration=60.0)
        # one-way: 25 ms floor + ~target of queueing (forward path)
        assert 0.05 < stats.mean_delay < 0.25

    def test_yields_to_cubic(self):
        """Background transport: LEDBAT backs off when Cubic floods."""
        sim = Simulator()
        from repro.netsim import Dumbbell
        link = Link(sim, rate_bps=10e6,
                    queue=DropTailQueue(capacity_bytes=500_000))
        bell = Dumbbell(sim, link, default_rtt=0.05)
        ledbat, l_rcv = LedbatSender(0), TcpReceiver(0)
        cubic, c_rcv = CubicSender(1), TcpReceiver(1)
        bell.add_flow(ledbat, l_rcv)
        bell.add_flow(cubic, c_rcv, start_at=10.0)
        # LEDBAT's decrement is ~GAIN packets per RTT, so yielding takes
        # tens of seconds; measure the late tail.
        bell.run(110.0)
        ledbat_tail = flow_stats(l_rcv.deliveries, start=80.0, end=110.0)
        cubic_tail = flow_stats(c_rcv.deliveries, start=80.0, end=110.0)
        assert cubic_tail.throughput_bps > 2.0 * ledbat_tail.throughput_bps

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LedbatSender(0, target=0.0)
        with pytest.raises(ValueError):
            LedbatSender(0, gain=0.0)

    def test_base_delay_tracks_minimum(self):
        sender, _ = LedbatSender(0), None
        run_flow(sender, TcpReceiver(0), duration=10.0)
        assert sender.base_delay() == pytest.approx(0.05, rel=0.1)


class TestCompound:
    def test_fills_link(self):
        stats = run_flow(CompoundSender(0), TcpReceiver(0))
        assert stats.throughput_bps > 0.8 * 10e6

    def test_delay_window_collapses_under_queueing(self):
        sender = CompoundSender(0)
        run_flow(sender, TcpReceiver(0), queue_bytes=2_000_000,
                 duration=40.0)
        # Standing queue forms → diff > gamma → dwnd near zero.
        assert sender.dwnd < sender.cwnd

    @pytest.mark.slow
    def test_faster_ramp_than_reno_on_big_pipe(self):
        """The scalable delay window accelerates on an empty 100 Mbps path."""
        from repro.tcp import NewRenoSender
        compound = run_flow(CompoundSender(0), TcpReceiver(0),
                            rate_bps=100e6, queue_bytes=2_000_000,
                            duration=20.0)
        reno = run_flow(NewRenoSender(0), TcpReceiver(0),
                        rate_bps=100e6, queue_bytes=2_000_000,
                        duration=20.0)
        assert compound.throughput_bps >= 0.9 * reno.throughput_bps

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CompoundSender(0, beta=1.0)
        with pytest.raises(ValueError):
            CompoundSender(0, k=1.5)


class TestBinomial:
    def test_sqrt_variant_fills_link(self):
        stats = run_flow(BinomialSender.sqrt(0), TcpReceiver(0))
        assert stats.throughput_bps > 0.7 * 10e6

    def test_aimd_variant_matches_reno_shape(self):
        sender = BinomialSender.aimd(0)
        assert sender.k == 0.0 and sender.l == 1.0
        stats = run_flow(sender, TcpReceiver(0))
        assert stats.throughput_bps > 0.7 * 10e6

    def test_iiad_variant(self):
        # IIAD's inverse increase recovers extremely slowly from a timeout
        # collapse; seed ssthresh below the buffer so slow start does not
        # overshoot into one within the test horizon.
        stats = run_flow(BinomialSender.iiad(0, initial_ssthresh=60),
                         TcpReceiver(0), duration=60.0)
        assert stats.throughput_bps > 0.5 * 10e6

    def test_gentler_backoff_than_aimd_under_random_loss(self):
        """SQRT reduces by β·√w — milder than halving — so it holds more
        throughput under stochastic (non-congestion) loss."""
        sqrt_stats = run_flow(BinomialSender.sqrt(0), TcpReceiver(0),
                              loss_rate=0.005, seed=2, duration=60.0)
        aimd_stats = run_flow(BinomialSender.aimd(0), TcpReceiver(0),
                              loss_rate=0.005, seed=2, duration=60.0)
        assert sqrt_stats.throughput_bps > aimd_stats.throughput_bps

    def test_tcp_friendliness_condition_enforced(self):
        with pytest.raises(ValueError):
            BinomialSender(0, k=0.2, l=0.2)   # k + l < 1


class TestPccUtility:
    def test_zero_loss_utility_positive(self):
        assert allegro_utility(5.0, 0.0) > 0

    def test_high_loss_utility_negative(self):
        assert allegro_utility(5.0, 0.5) < 0

    def test_knee_at_five_percent(self):
        below = allegro_utility(5.0, 0.03)
        above = allegro_utility(5.0, 0.08)
        assert below > 0 > above

    def test_monotone_in_throughput_at_fixed_low_loss(self):
        assert allegro_utility(10.0, 0.01) > allegro_utility(5.0, 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            allegro_utility(-1.0, 0.0)
        with pytest.raises(ValueError):
            allegro_utility(1.0, 1.5)


class TestPccSender:
    def test_converges_on_fixed_link(self):
        stats = run_flow(PccSender(0), PccReceiver(0), duration=60.0)
        assert stats.throughput_bps > 0.7 * 10e6

    def test_starting_phase_doubles(self):
        sender = PccSender(0, initial_rate_pps=50.0)
        run_flow(sender, PccReceiver(0), duration=5.0)
        assert sender.rate_pps > 100.0

    def test_leaves_starting_state(self):
        sender = PccSender(0)
        run_flow(sender, PccReceiver(0), duration=30.0)
        assert sender.state in ("decision", "adjusting")
        assert sender.decisions > 0

    def test_adapts_down_after_rate_drop(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e6,
                    queue=DropTailQueue(capacity_bytes=200_000))
        sender, receiver = PccSender(0), PccReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.05)
        sim.schedule_at(30.0, lambda: setattr(link, "rate_bps", 2e6))
        path.run(90.0)
        tail = flow_stats(receiver.deliveries, start=70.0, end=90.0)
        assert tail.throughput_bps < 2.5e6
        assert tail.throughput_bps > 1e6

    def test_verus_dominates_pcc_on_delay_under_rapid_change(self):
        """The paper's §2 positioning: PCC optimises a loss-based utility
        on seconds-scale monitor intervals, so on a rapidly changing link
        it buys its throughput by standing deep in the buffer; Verus
        keeps comparable-order throughput at a small fraction of the
        delay."""
        from repro.experiments.micro import rapid_change_schedule
        from repro.experiments.runner import FlowSpec, run_variable_dumbbell

        results = {}
        for protocol in ("verus", "pcc"):
            schedule = rapid_change_schedule(90.0, 2e6, 20e6, seed=3)
            result = run_variable_dumbbell(
                schedule, [FlowSpec(protocol=protocol)], duration=90.0,
                queue_bytes=2_000_000, seed=3)
            results[protocol] = result.stats(0)
        verus, pcc = results["verus"], results["pcc"]
        assert verus.mean_delay < pcc.mean_delay / 4.0
        assert verus.throughput_bps > 0.5 * pcc.throughput_bps

    def test_validation(self):
        with pytest.raises(ValueError):
            PccSender(0, initial_rate_pps=0.0)
        with pytest.raises(ValueError):
            PccSender(0, epsilon=0.9)


class TestRunnerIntegration:
    @pytest.mark.parametrize("protocol", ["pcc", "ledbat", "compound",
                                          "binomial"])
    def test_make_endpoints(self, protocol):
        sender, receiver = make_endpoints(FlowSpec(protocol=protocol), 5)
        assert sender.flow_id == 5 and receiver.flow_id == 5
