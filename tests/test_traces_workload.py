"""Workload generation: augmentation recipes and campaign expansion.

Covers the corpus → sweep path end-to-end: derived-seed determinism,
regenerable augment provenance, and TaskSpec cells whose cache keys pin
trace content (not location).
"""

import shutil

import numpy as np
import pytest

from repro.campaign.spec import run_simulation_task
from repro.traces import (
    AUGMENT_OPS,
    apply_augment,
    augment_corpus,
    build_corpus,
    derive_seed,
    expand_corpus,
    expand_corpus_chaos,
    load_corpus,
    splice_traces,
)


@pytest.fixture(scope="module")
def mini_corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus") / "mini"
    return build_corpus(root, preset="mini").corpus


def parent_trace():
    rng = np.random.default_rng(3)
    return np.sort(rng.integers(0, 10_000, size=500)).astype(np.int64)


class TestAugmentOps:
    def test_registry_complete(self):
        assert set(AUGMENT_OPS) == {"scale", "splice", "resample"}

    def test_derive_seed_deterministic_and_separated(self):
        assert derive_seed(0, "a", "op") == derive_seed(0, "a", "op")
        assert derive_seed(0, "a", "op") != derive_seed(0, "b", "op")
        assert derive_seed(0, "a", "op") != derive_seed(1, "a", "op")

    @pytest.mark.parametrize("op,params", [
        ("scale", {"factor": 1.5}),
        ("splice", {"segments": 4}),
        ("resample", {"duration_ms": 5000, "block_ms": 500}),
    ])
    def test_ops_are_seed_deterministic(self, op, params):
        parent = parent_trace()
        a = apply_augment(op, parent, params, seed=9)
        b = apply_augment(op, parent, params, seed=9)
        np.testing.assert_array_equal(a, b)
        assert a.size > 0

    def test_scale_changes_density_not_duration(self):
        parent = parent_trace()
        doubled = apply_augment("scale", parent, {"factor": 2.0}, seed=1)
        assert doubled.size == 2 * parent.size
        assert doubled[0] == parent[0] and doubled[-1] == parent[-1]
        thinned = apply_augment("scale", parent, {"factor": 0.5}, seed=1)
        assert 0.3 * parent.size < thinned.size < 0.7 * parent.size

    def test_splice_preserves_opportunity_count(self):
        parent = parent_trace()
        spliced = apply_augment("splice", parent, {"segments": 5}, seed=2)
        assert spliced.size == parent.size
        assert np.all(np.diff(spliced) >= 0)

    def test_resample_hits_target_duration(self):
        parent = parent_trace()
        out = apply_augment("resample", parent,
                            {"duration_ms": 30_000, "block_ms": 1000},
                            seed=4)
        assert 25_000 <= out[-1] < 31_000

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown augmentation op"):
            apply_augment("warp", parent_trace(), {}, 0)

    def test_splice_traces_concatenates(self):
        a = np.array([0, 10], dtype=np.int64)
        b = np.array([5, 7], dtype=np.int64)
        np.testing.assert_array_equal(splice_traces(a, b, gap_ms=1),
                                      [0, 10, 11, 13])


class TestAugmentCorpus:
    def test_augment_records_regenerable_provenance(self, tmp_path):
        corpus = build_corpus(tmp_path / "c", preset="mini").corpus
        parent = corpus.names()[0]
        entry = augment_corpus(corpus, "boosted", "scale", parent,
                               params={"factor": 2.0})
        assert entry.source["kind"] == "augment"
        expected = corpus.load_ms("boosted").copy()
        corpus.trace_path("boosted").unlink()
        np.testing.assert_array_equal(corpus.load_ms("boosted"), expected)

    def test_augment_is_rerun_stable(self, tmp_path):
        corpus = build_corpus(tmp_path / "c", preset="mini").corpus
        parent = corpus.names()[0]
        first = augment_corpus(corpus, "x", "splice", parent,
                               params={"segments": 3})
        second = augment_corpus(corpus, "x", "splice", parent,
                                params={"segments": 3}, overwrite=True)
        assert first.sha256 == second.sha256


class TestExpandCorpus:
    def test_cells_cover_grid_with_pinned_hashes(self, mini_corpus):
        tasks = expand_corpus(mini_corpus, protocols=["verus", "cubic"],
                              flow_counts=[1, 3], seeds=2)
        assert len(tasks) == 2 * 2 * 2 * 2
        for task in tasks:
            entry = mini_corpus.entry(task.scenario)
            assert task.trace_sha256 == entry.sha256
            assert task.duration == pytest.approx(
                entry.stats["duration_s"])
        # Distinct cells, deterministic expansion.
        keys = [t.key() for t in tasks]
        assert len(set(keys)) == len(keys)
        again = expand_corpus(mini_corpus, protocols=["verus", "cubic"],
                              flow_counts=[1, 3], seeds=2)
        assert [t.key() for t in again] == keys

    def test_key_stable_under_corpus_relocation(self, mini_corpus,
                                                tmp_path):
        tasks = expand_corpus(mini_corpus, protocols=["verus"])
        moved_root = tmp_path / "moved"
        shutil.copytree(mini_corpus.root, moved_root)
        moved = load_corpus(moved_root)
        moved_tasks = expand_corpus(moved, protocols=["verus"])
        assert [t.key() for t in moved_tasks] == [t.key() for t in tasks]
        assert moved_tasks[0].trace_file != tasks[0].trace_file

    def test_cell_runs_end_to_end(self, mini_corpus):
        task = expand_corpus(mini_corpus, protocols=["verus"],
                             flow_counts=[1], duration=3.0,
                             names=[mini_corpus.names()[0]])[0]
        summary = run_simulation_task(task.to_dict())
        assert summary["flows"][0]["stats"]["throughput_bps"] > 0

    def test_tampered_trace_refused_at_run_time(self, tmp_path):
        corpus = build_corpus(tmp_path / "c", preset="mini").corpus
        task = expand_corpus(corpus, protocols=["verus"], duration=2.0,
                             names=[corpus.names()[0]])[0]
        path = corpus.trace_path(task.scenario)
        path.write_text(path.read_text() + "99999\n")
        with pytest.raises(ValueError, match="pinned"):
            run_simulation_task(task.to_dict())

    def test_unknown_trace_name_rejected_early(self, mini_corpus):
        from repro.traces import CorpusError
        with pytest.raises(CorpusError, match="no trace named"):
            expand_corpus(mini_corpus, protocols=["verus"],
                          names=["ghost"])

    def test_chaos_expansion(self, mini_corpus):
        tasks = expand_corpus_chaos(mini_corpus, protocols=["verus"],
                                    faults=["blackout"], duration=5.0)
        assert len(tasks) == len(mini_corpus.names())
        for task in tasks:
            assert task.trace_sha256 == \
                mini_corpus.entry(task.scenario).sha256
        assert len({t.key() for t in tasks}) == len(tasks)


class TestWorkerTraceMemo:
    """The per-worker parsed-trace memo in ``campaign.spec`` must speed
    repeated loads up without ever weakening the sha-256 content pin."""

    @pytest.fixture(autouse=True)
    def _clean_memo(self):
        from repro.campaign import spec as campaign_spec
        campaign_spec._TRACE_MEMO.clear()
        yield
        campaign_spec._TRACE_MEMO.clear()

    @staticmethod
    def _pinned_task(path):
        from types import SimpleNamespace

        from repro.traces.corpus import trace_sha256
        from repro.traces.formats import read_trace_ms
        times_ms = read_trace_ms(str(path), fmt="mahimahi")
        return SimpleNamespace(trace_file=str(path),
                               trace_sha256=trace_sha256(times_ms))

    @staticmethod
    def _write(path, step):
        from repro.traces.formats import write_trace_ms
        write_trace_ms(path, np.arange(0, 2000, step, dtype=np.int64),
                       "mahimahi")

    def test_memo_hit_skips_reparse_and_never_aliases(self, tmp_path,
                                                      monkeypatch):
        from repro.campaign.spec import _load_task_trace
        from repro.traces import formats
        path = tmp_path / "t.trace"
        self._write(path, 10)
        task = self._pinned_task(path)
        first = _load_task_trace(task)

        def _boom(*a, **k):
            raise AssertionError("memo hit must not re-read the file")

        monkeypatch.setattr(formats, "read_trace_ms", _boom)
        second = _load_task_trace(task)
        np.testing.assert_array_equal(first, second)
        assert second is not first
        # A caller scribbling on its copy must not poison later loads.
        second[:] = -1.0
        third = _load_task_trace(task)
        np.testing.assert_array_equal(first, third)

    def test_mutated_file_refused_despite_memo(self, tmp_path):
        from repro.campaign.spec import _load_task_trace
        path = tmp_path / "t.trace"
        self._write(path, 10)
        task = self._pinned_task(path)
        _load_task_trace(task)          # seed the memo
        self._write(path, 25)           # corpus drifts mid-sweep
        with pytest.raises(ValueError, match="corpus content changed"):
            _load_task_trace(task)

    def test_memo_keyed_by_pin_not_just_path(self, tmp_path):
        from types import SimpleNamespace

        from repro.campaign.spec import _load_task_trace
        path = tmp_path / "t.trace"
        self._write(path, 10)
        good = self._pinned_task(path)
        _load_task_trace(good)          # memo holds the good pin
        bad = SimpleNamespace(trace_file=str(path),
                              trace_sha256="0" * 64)
        with pytest.raises(ValueError, match="pinned"):
            _load_task_trace(bad)
        # ...and the good pin still serves correctly afterwards.
        np.testing.assert_array_equal(
            _load_task_trace(good),
            np.arange(0, 2000, 10, dtype=np.int64).astype(float) / 1000.0)
