"""Tests for the resilience subsystem: triage taxonomy, heartbeat
watchdog, quarantine persistence, crash bundles and the soak harness.

Pool-spawning endurance tests carry the ``soak`` marker so the fast CI
tier can deselect them with ``-m "not soak"``; everything else here is
plain in-process unit work.
"""

import json
import time

import pytest

from repro.campaign import run_tasks
from repro.resilience import (
    Heartbeat,
    Quarantine,
    SoakRecord,
    SoakReport,
    SoakSpec,
    WorkerWatchdog,
    build_axes,
    bundle_hash,
    cell_key,
    classify,
    draw_cell,
    draw_digest,
    dump_bundle,
    load_bundle,
    load_ledger,
    normalize_error,
    normalize_traceback,
    replay_cell,
    run_soak,
    run_soak_cell,
    signature_of,
)


# ----------------------------------------------------------------------
# Triage: taxonomy, normalisation, deduplication
# ----------------------------------------------------------------------
class TestTriage:
    def test_normalize_strips_addresses_and_all_numbers(self):
        raw = "worker 0x7f3a9c2b died at 372MB after 1.5s (attempt 2)"
        assert normalize_error(raw) == \
            "worker ADDR died at NMB after Ns (attempt N)"

    def test_signature_stable_across_volatile_detail(self):
        a = signature_of("oom", "[oom] rss 372MB over the 150MB budget")
        b = signature_of("oom", "[oom] rss 410MB over the 150MB budget")
        assert a == b
        assert len(a) == 12

    def test_signature_distinguishes_kinds(self):
        assert signature_of("oom", "dead") != signature_of("hang", "dead")

    def test_classify_executor_statuses(self):
        assert classify("timeout", "timed out after 2.0s", None) == "hang"
        assert classify("failed", "[hang] no heartbeat for 3.1s", None) \
            == "hang"
        assert classify("failed", "[oom] rss 372MB over budget", None) \
            == "oom"
        assert classify("failed", "ValueError: boom", None) == "crash"
        assert classify("quarantined", None, {"kind": "oom"}) == "oom"
        assert classify("quarantined", None, None) == "crash"

    def test_classify_completed_results(self):
        violated = {"invariant": {"violations": [{"monitor": "verus-law"}]}}
        assert classify("ok", None, violated) == "invariant"
        assert classify("ok", None, {"degraded": True,
                                     "degraded_code": "hang"}) == "degraded"
        assert classify("ok", None, {"recovered": True}, attempts=2) \
            == "flaky"
        assert classify("ok", None, {"recovered": True}) == "ok"
        assert classify("cached", None, {}) == "ok"

    def _record(self, draw, kind, signature, status="failed", repro=None):
        return SoakRecord(draw=draw, key=f"k{draw}", status=status,
                          kind=kind, signature=signature, cell={},
                          repro=repro)

    def test_report_deduplicates_by_signature(self):
        sig = signature_of("crash", "ValueError: boom")
        records = [
            self._record(0, "crash", sig, repro="repro soak --replay k0"),
            self._record(1, "crash", sig),
            SoakRecord(draw=2, key="k2", status="ok", kind="ok",
                       signature=None, cell={}),
        ]
        report = SoakReport(records)
        assert report.cells() == 3
        assert report.kind_counts == {"crash": 2, "ok": 1}
        assert len(report.signatures) == 1
        group = report.signatures[sig]
        assert group.count == 2 and group.draws == [0, 1]
        assert group.repro == "repro soak --replay k0"
        assert not report.ok
        assert "repro soak --replay k0" in report.render()

    def test_flaky_only_report_is_ok(self):
        records = [
            self._record(0, "flaky", signature_of("flaky", "transient"),
                         status="ok"),
            SoakRecord(draw=1, key="k1", status="ok", kind="ok",
                       signature=None, cell={}),
        ]
        assert SoakReport(records).ok

    def test_rows_ordered_worst_first(self):
        records = [
            self._record(0, "flaky", "f" * 12, status="ok"),
            self._record(1, "crash", "c" * 12),
            self._record(2, "invariant", "i" * 12, status="ok"),
        ]
        kinds = [row["kind"] for row in SoakReport(records).rows()]
        assert kinds == ["crash", "invariant", "flaky"]

    def test_record_roundtrips_through_ledger_dict(self):
        record = self._record(5, "oom", "a" * 12)
        clone = SoakRecord.from_dict(json.loads(json.dumps(
            record.to_dict())))
        assert clone == record


# ----------------------------------------------------------------------
# Heartbeats and the watchdog (in-process, fake kills)
# ----------------------------------------------------------------------
class TestHeartbeat:
    def test_beacon_writes_schema_and_keeps_beating(self, tmp_path):
        hb = Heartbeat(tmp_path, "t0a0", interval=0.02).start()
        try:
            time.sleep(0.15)
        finally:
            hb.stop()
        assert hb.beats >= 3
        beat = json.loads(hb.path.read_text())
        assert beat["schema"] == "repro.heartbeat/1"
        assert beat["token"] == "t0a0"
        assert beat["pid"] > 0
        assert beat["rss"] is None or beat["rss"] > 0

    def test_stop_unlink_removes_the_file(self, tmp_path):
        hb = Heartbeat(tmp_path, "t1a0", interval=0.02).start()
        assert hb.path.exists()
        hb.stop(unlink=True)
        assert not hb.path.exists()

    def test_from_directive_matches_wrap(self, tmp_path):
        dog = WorkerWatchdog(tmp_path, stall_after=1.0)
        payload = dog.wrap(4, 1, {"value": 9})
        assert payload["value"] == 9            # original untouched fields
        hb = Heartbeat.from_directive(payload["_heartbeat"])
        assert hb.token == "t4a1"
        assert hb.path.parent == tmp_path


class TestWorkerWatchdog:
    def _beat(self, tmp_path, token, *, age=0.0, rss=10 << 20, pid=4242):
        (tmp_path / f"{token}.json").write_text(json.dumps({
            "schema": "repro.heartbeat/1", "pid": pid, "token": token,
            "time": time.time() - age, "rss": rss}))

    def test_stale_heartbeat_is_shot_as_hang(self, tmp_path):
        killed = []
        dog = WorkerWatchdog(tmp_path, stall_after=0.5, poll_interval=0.0,
                             kill_fn=killed.append)
        dog.wrap(0, 0, {})
        self._beat(tmp_path, "t0a0", age=5.0)
        dog.poll()
        assert killed == [4242]
        assert dog.kills[0]["kind"] == "hang"
        kills = dog.take_kills()
        assert set(kills) == {0} and kills[0].startswith("[hang]")
        assert dog.take_kills() == {}           # consumed exactly once

    def test_rss_breach_is_shot_as_oom(self, tmp_path):
        killed = []
        dog = WorkerWatchdog(tmp_path, stall_after=60.0,
                             rss_limit_bytes=64 << 20, poll_interval=0.0,
                             kill_fn=killed.append)
        dog.wrap(2, 1, {})
        self._beat(tmp_path, "t2a1", rss=200 << 20)
        dog.poll()
        assert killed == [4242]
        assert dog.kills[0]["kind"] == "oom"
        assert dog.take_kills()[2].startswith("[oom]")

    def test_queued_task_without_beat_is_spared(self, tmp_path):
        killed = []
        dog = WorkerWatchdog(tmp_path, stall_after=0.5, poll_interval=0.0,
                             kill_fn=killed.append)
        dog.wrap(0, 0, {})                     # never wrote a first beat
        dog.poll()
        assert killed == [] and dog.take_kills() == {}

    def test_fresh_beat_under_budget_is_spared(self, tmp_path):
        killed = []
        dog = WorkerWatchdog(tmp_path, stall_after=5.0,
                             rss_limit_bytes=64 << 20, poll_interval=0.0,
                             kill_fn=killed.append)
        dog.wrap(0, 0, {})
        self._beat(tmp_path, "t0a0", rss=1 << 20)
        dog.poll()
        assert killed == []

    def test_release_clears_beat_file(self, tmp_path):
        dog = WorkerWatchdog(tmp_path, stall_after=1.0)
        dog.wrap(7, 0, {})
        self._beat(tmp_path, "t7a0")
        dog.release(7)
        assert not (tmp_path / "t7a0.json").exists()
        dog.poll()
        assert dog.take_kills() == {}


class TestQuarantine:
    def _add(self, q, key="aa" * 32, kind="crash"):
        return q.add(key, kind=kind, signature="c" * 12,
                     repro=f"repro soak --replay {key[:12]}",
                     cell={"task": {"protocol": "verus"}},
                     error="ValueError: boom")

    def test_entries_persist_across_instances(self, tmp_path):
        path = tmp_path / "quarantine.json"
        first = Quarantine(path)
        self._add(first)
        assert "aa" * 32 in first and len(first) == 1

        again = Quarantine(path)
        entry = again.get("aa" * 32)
        assert entry["kind"] == "crash"
        assert entry["hits"] == 1
        assert entry["repro"].startswith("repro soak --replay")

    def test_readd_increments_hits_not_entries(self, tmp_path):
        q = Quarantine(tmp_path / "q.json")
        self._add(q)
        self._add(q)
        assert len(q) == 1
        assert q.get("aa" * 32)["hits"] == 2

    def test_clear_removes_file_and_entries(self, tmp_path):
        path = tmp_path / "q.json"
        q = Quarantine(path)
        self._add(q)
        q.clear()
        assert len(q) == 0 and not path.exists()
        assert len(Quarantine(path)) == 0

    def test_unknown_schema_is_ignored(self, tmp_path):
        path = tmp_path / "q.json"
        path.write_text(json.dumps({"schema": "something/else",
                                    "entries": {"x": {}}}))
        assert len(Quarantine(path)) == 0


# ----------------------------------------------------------------------
# Flight recorder: traceback normalisation, content-addressed bundles
# ----------------------------------------------------------------------
class TestBlackbox:
    def test_normalize_traceback_uses_basenames(self):
        try:
            raise ValueError("boom at 0x7f00")
        except ValueError as exc:
            frames = normalize_traceback(exc)
        assert frames[-1] == "ValueError: boom at 0x7f00"
        name, lineno, func = frames[0].split(":")
        assert name == "test_resilience.py"
        assert int(lineno) > 0
        assert func == "test_normalize_traceback_uses_basenames"

    def test_bundle_hash_is_pure_and_discriminating(self):
        task = {"protocol": "verus", "fault": "blackout"}
        assert bundle_hash("crash", "a" * 12, task, 7) == \
            bundle_hash("crash", "a" * 12, task, 7)
        assert bundle_hash("crash", "a" * 12, task, 7) != \
            bundle_hash("hang", "a" * 12, task, 7)
        assert bundle_hash("crash", "a" * 12, task, 7) != \
            bundle_hash("crash", "a" * 12, task, 8)

    def test_dump_is_idempotent_and_loads_back(self, tmp_path):
        task = {"protocol": "cubic", "seed": 3}
        first = dump_bundle(tmp_path, kind="crash", signature="b" * 12,
                            task=task, seed=3, error="ValueError: boom",
                            frames=["mod.py:10:run", "ValueError: boom"],
                            timeline_rows=[{"time": 0.1, "event": "send"}],
                            repro="repro soak --replay bbbb")
        body = load_bundle(first)
        assert body["schema"] == "repro.crash-bundle/1"
        assert body["kind"] == "crash"
        assert body["signature"] == "b" * 12
        assert body["task"] == task
        assert body["timeline_events"] == 1
        assert (tmp_path / body["hash"][:12] / "timeline.jsonl").exists()

        again = dump_bundle(tmp_path, kind="crash", signature="b" * 12,
                            task=task, seed=3, error="different volatile")
        assert again == first                   # same identity, same dir
        assert load_bundle(again)["error"] == "ValueError: boom"


# ----------------------------------------------------------------------
# Soak drawing: reproducibility without running anything
# ----------------------------------------------------------------------
def _spec(tmp_path, **overrides):
    base = dict(seed=7, budget_cells=3, protocols=("cubic",),
                faults=("none",), scenarios=("campus_stationary",),
                duration=0.5, jobs=2, timeout=60.0, retries=0,
                stall_after=2.0, rss_limit_mb=None,
                state_dir=str(tmp_path / "state"))
    base.update(overrides)
    return SoakSpec(**base)


class TestSoakDrawing:
    def test_draws_are_pure_functions_of_seed_and_index(self, tmp_path):
        spec = _spec(tmp_path, protocols=("verus", "cubic", "sprout"),
                     faults=("none", "blackout"))
        axes = build_axes(spec)
        forward = [draw_cell(spec, axes, i) for i in range(6)]
        # Drawing out of order, or again, changes nothing.
        assert draw_cell(spec, axes, 3).to_dict() == forward[3].to_dict()
        redraw = [draw_cell(spec, axes, i) for i in reversed(range(6))]
        assert [c.to_dict() for c in reversed(redraw)] == \
            [c.to_dict() for c in forward]
        assert draw_digest(forward) == draw_digest(
            [draw_cell(spec, axes, i) for i in range(6)])

    def test_different_seed_draws_differently(self, tmp_path):
        spec7 = _spec(tmp_path, protocols=("verus", "cubic", "sprout"))
        spec8 = _spec(tmp_path, seed=8,
                      protocols=("verus", "cubic", "sprout"))
        axes7, axes8 = build_axes(spec7), build_axes(spec8)
        six7 = [draw_cell(spec7, axes7, i) for i in range(6)]
        six8 = [draw_cell(spec8, axes8, i) for i in range(6)]
        assert draw_digest(six7) != draw_digest(six8)

    def test_spec_validates_axes_and_budget(self, tmp_path):
        with pytest.raises(ValueError):
            _spec(tmp_path, protocols=("smtp",))
        with pytest.raises(ValueError):
            _spec(tmp_path, faults=("not-a-preset",))
        with pytest.raises(ValueError):
            _spec(tmp_path, budget_cells=None, budget_seconds=None)
        with pytest.raises(ValueError):
            _spec(tmp_path, inject={0: {"mode": "sigsegv"}})

    def test_injection_salts_the_cell_key(self, tmp_path):
        spec = _spec(tmp_path)
        cell = draw_cell(spec, build_axes(spec), 0)
        clean = cell_key(cell, None)
        assert clean == cell.key()
        salted = cell_key(cell, {"mode": "crash"})
        assert salted != clean
        assert salted == cell_key(cell, {"mode": "crash"})


# ----------------------------------------------------------------------
# Endurance paths: real pools, real kills (soak tier)
# ----------------------------------------------------------------------
@pytest.mark.soak
class TestWatchdogKillsRealWorkers:
    def test_hung_worker_is_killed_and_attributed(self, tmp_path):
        dog = WorkerWatchdog(tmp_path / "hb", stall_after=0.6)
        payload = {"_soak": {"inject": {"mode": "hang", "seconds": 30}}}
        run = run_tasks([payload], run_soak_cell, jobs=2, retries=0,
                        timeout=30.0, backoff=0.01, supervisor=dog)
        outcome = run.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.error.startswith("[hang]")
        assert classify(outcome.status, outcome.error, None) == "hang"
        assert dog.kills and dog.kills[0]["kind"] == "hang"

    def test_rss_breach_is_killed_and_attributed(self, tmp_path):
        dog = WorkerWatchdog(tmp_path / "hb", stall_after=10.0,
                             rss_limit_bytes=96 << 20)
        payload = {"_soak": {"inject": {"mode": "oom", "mb": 256,
                                        "seconds": 30}}}
        run = run_tasks([payload], run_soak_cell, jobs=2, retries=0,
                        timeout=30.0, backoff=0.01, supervisor=dog)
        outcome = run.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.error.startswith("[oom]")
        assert classify(outcome.status, outcome.error, None) == "oom"
        assert dog.kills and dog.kills[0]["kind"] == "oom"
        assert dog.kills[0]["rss"] > 96 << 20


@pytest.mark.soak
class TestSoakQuarantinePersistence:
    def test_crasher_is_quarantined_then_skipped_then_freshened(
            self, tmp_path):
        spec = _spec(tmp_path, inject={1: {"mode": "crash"}})

        # Run 1: draw 1 crashes, lands in the poison list with a repro.
        first = run_soak(spec)
        assert [r.kind for r in first.records] == ["ok", "crash", "ok"]
        poisoned = first.records[1]
        assert poisoned.status == "failed"
        assert poisoned.signature and poisoned.repro
        assert "--replay" in poisoned.repro
        quarantine = Quarantine(
            tmp_path / "state" / "quarantine.json")
        assert poisoned.key in quarantine
        assert quarantine.get(poisoned.key)["repro"] == poisoned.repro

        # Run 2 over the same state dir: the poison cell is skipped
        # without burning retries; ok cells come back cached.
        second = run_soak(_spec(tmp_path, inject={1: {"mode": "crash"}}))
        assert second.records[1].status == "quarantined"
        assert second.records[1].kind == "crash"
        assert second.records[1].attempts == 0
        assert second.skipped == 1
        assert second.stats["executed"] == 0
        assert second.stats["cached"] == 2
        assert second.stats["retries"] == 0
        assert second.digest == first.digest
        assert Quarantine(tmp_path / "state" /
                          "quarantine.json").get(poisoned.key)["hits"] >= 2

        # --fresh clears the poison list and the ledger: the crasher
        # actually re-executes (and fails again); cached oks survive.
        third = run_soak(_spec(tmp_path, inject={1: {"mode": "crash"}}),
                         fresh=True)
        assert third.records[1].status == "failed"
        assert third.records[1].kind == "crash"
        assert third.skipped == 0
        assert third.stats["cached"] == 2
        ledger = load_ledger(tmp_path / "state")
        assert [r.draw for r in ledger] == [0, 1, 2]
        assert ledger[1].status == "failed"

    def test_same_spec_two_state_dirs_same_draw_and_bundles(self,
                                                            tmp_path):
        runs = []
        for name in ("one", "two"):
            spec = _spec(tmp_path, state_dir=str(tmp_path / name),
                         inject={1: {"mode": "crash"}})
            runs.append(run_soak(spec))
        a, b = runs
        assert a.digest == b.digest
        assert a.records[1].signature == b.records[1].signature
        # Content-addressed: same failure identity, same bundle id.
        assert a.records[1].bundle and b.records[1].bundle
        assert a.records[1].bundle.split("/")[-1] == \
            b.records[1].bundle.split("/")[-1]


@pytest.mark.soak
class TestSoakAcceptance:
    def test_injected_hang_oom_crash_triaged_and_replayable(self,
                                                           tmp_path):
        """The ISSUE acceptance scenario: one seeded soak with an
        injected hang, oom and crash ends with the hang killed by the
        watchdog, all three quarantined with repro commands, one bundle
        per signature, and a failing report."""
        # Workers are forked, so they inherit this process's RSS; a
        # fixed budget misclassifies the hang cell as [oom] whenever the
        # parent (e.g. a full pytest run) has grown past it.  Budget
        # relative to the parent instead: the hang cell stays under it,
        # and the sized oom injection allocates past it either way.
        from repro.resilience.watchdog import _rss_bytes
        parent_mb = (_rss_bytes() or 0) // (1 << 20)
        spec = _spec(tmp_path, retries=1, stall_after=0.8,
                     rss_limit_mb=max(150, parent_mb + 100), timeout=30.0,
                     inject={0: {"mode": "hang"},
                             1: {"mode": "oom"},
                             2: {"mode": "crash"}})
        result = run_soak(spec)

        by_kind = {r.kind: r for r in result.records}
        assert set(by_kind) == {"hang", "oom", "crash"}
        # The watchdog (not the 30 s wall deadline) caught the hang.
        assert by_kind["hang"].status == "failed"
        assert "[hang]" in by_kind["hang"].error
        assert "[oom]" in by_kind["oom"].error
        assert "injected deterministic crash" in by_kind["crash"].error
        # Offender-only retries: each poison cell burnt its own attempts.
        assert all(r.attempts == 2 for r in result.records)
        assert result.stats["pool_restarts"] >= 2   # hang + oom kills

        # One content-addressed bundle per signature, with the report
        # carrying a ready-to-run repro line for each.
        report = result.report
        assert not report.ok
        assert len(report.signatures) == 3
        for row in report.rows():
            assert row["repro"] and "--replay" in row["repro"]
            assert row["bundle"]
            assert load_bundle(row["bundle"])["signature"] == \
                row["signature"]

        quarantine = Quarantine(tmp_path / "state" / "quarantine.json")
        assert len(quarantine) == 3

        # The recorded repro command actually replays the crasher.
        replay = replay_cell(spec, by_kind["crash"].key[:12])
        assert replay.kind == "crash"
        assert replay.signature == by_kind["crash"].signature
