"""Validation tests for VerusConfig."""

import pytest

from repro.core import VerusConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = VerusConfig()
        assert cfg.epoch == 0.005                       # ε = 5 ms
        assert cfg.r == 2.0                             # default R
        assert cfg.delta1 == 0.001                      # δ1 = 1 ms
        assert cfg.delta2 == 0.002                      # δ2 = 2 ms
        assert cfg.profile_update_interval == 1.0       # 1 s re-interpolation
        assert cfg.ss_exit_ratio == 15.0                # N = 15
        assert cfg.multiplicative_decrease == 0.5
        assert cfg.packet_bytes == 1400                 # paper MTU

    def test_paper_default_factory_sets_r(self):
        assert VerusConfig.paper_default(r=6.0).r == 6.0

    def test_delta_constraint_from_paper(self):
        """§5.3: 1 ms ≤ δ ≤ 2 ms with δ1 ≤ δ2."""
        cfg = VerusConfig()
        assert 0.001 <= cfg.delta1 <= cfg.delta2 <= 0.002


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("epoch", 0.0),
        ("epoch", -0.005),
        ("r", 1.0),
        ("r", 0.5),
        ("delta1", 0.0),
        ("alpha", 0.0),
        ("alpha", 1.1),
        ("multiplicative_decrease", 1.0),
        ("multiplicative_decrease", 0.0),
        ("ss_exit_ratio", 1.0),
        ("profile_update_interval", 0.0),
        ("profile_ewma", 0.0),
        ("min_window", -1.0),
        ("dmin_window", 0.0),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            VerusConfig(**{field: value})

    def test_delta1_must_not_exceed_delta2(self):
        with pytest.raises(ValueError):
            VerusConfig(delta1=0.003, delta2=0.002)

    def test_max_window_must_cover_min(self):
        with pytest.raises(ValueError):
            VerusConfig(min_window=10.0, max_window=5.0)

    def test_none_update_interval_is_static_profile(self):
        """Fig 15's 'static delay profile' ablation configuration."""
        cfg = VerusConfig(profile_update_interval=None)
        assert cfg.profile_update_interval is None

    def test_none_dmin_window_is_lifetime(self):
        cfg = VerusConfig(dmin_window=None)
        assert cfg.dmin_window is None

    @pytest.mark.parametrize("field", ["floor_rebase_after",
                                       "profile_max_age"])
    def test_optional_positive_fields(self, field):
        assert getattr(VerusConfig(**{field: None}), field) is None
        with pytest.raises(ValueError):
            VerusConfig(**{field: 0.0})
