"""Tests for the DRR per-flow fair queue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import DRRQueue, Packet, Simulator, TraceLink


def pkt(flow, seq=0, size=1400):
    return Packet(flow_id=flow, seq=seq, size=size)


class TestBasics:
    def test_single_flow_fifo(self):
        q = DRRQueue()
        for i in range(5):
            q.push(pkt(0, i), 0.0)
        assert [q.pop(0.0).seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty(self):
        assert DRRQueue().pop(0.0) is None

    def test_byte_accounting(self):
        q = DRRQueue()
        q.push(pkt(0, size=1000), 0.0)
        q.push(pkt(1, size=500), 0.0)
        assert q.bytes == 1500
        assert len(q) == 2
        q.pop(0.0)
        assert q.bytes == 1000 or q.bytes == 500

    def test_per_flow_capacity(self):
        q = DRRQueue(per_flow_capacity_bytes=3000)
        assert q.push(pkt(0, 0), 0.0)
        assert q.push(pkt(0, 1), 0.0)
        assert not q.push(pkt(0, 2), 0.0)   # flow 0 full
        assert q.push(pkt(1, 0), 0.0)       # flow 1 unaffected
        assert q.stats.dropped == 1

    def test_flow_backlog(self):
        q = DRRQueue()
        q.push(pkt(3, size=700), 0.0)
        q.push(pkt(3, size=700), 0.0)
        assert q.flow_backlog(3) == 1400
        assert q.flow_backlog(9) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DRRQueue(quantum_bytes=0)
        with pytest.raises(ValueError):
            DRRQueue(per_flow_capacity_bytes=0)

    def test_clear(self):
        q = DRRQueue()
        q.push(pkt(0), 0.0)
        q.clear()
        assert len(q) == 0 and q.bytes == 0


class TestFairness:
    def test_round_robin_interleaves_equal_backlogs(self):
        q = DRRQueue(quantum_bytes=1400)
        for i in range(10):
            q.push(pkt(0, i), 0.0)
            q.push(pkt(1, i), 0.0)
        served = [q.pop(0.0).flow_id for _ in range(20)]
        # Equal service in every prefix window of 4.
        for start in range(0, 20, 4):
            window = served[start:start + 4]
            assert window.count(0) == 2 and window.count(1) == 2

    def test_backlogged_flow_cannot_starve_light_flow(self):
        q = DRRQueue()
        for i in range(100):
            q.push(pkt(0, i), 0.0)   # heavy flow
        q.push(pkt(1, 0), 0.0)        # light flow
        served = [q.pop(0.0).flow_id for _ in range(4)]
        assert 1 in served

    def test_byte_fairness_with_mixed_sizes(self):
        """Flow 0 sends 1400 B packets, flow 1 sends 700 B: DRR serves
        bytes, so flow 1 gets ~2 packets per round."""
        q = DRRQueue(quantum_bytes=1400)
        for i in range(20):
            q.push(pkt(0, i, size=1400), 0.0)
            q.push(pkt(1, 2 * i, size=700), 0.0)
            q.push(pkt(1, 2 * i + 1, size=700), 0.0)
        bytes_served = {0: 0, 1: 0}
        for _ in range(30):
            packet = q.pop(0.0)
            bytes_served[packet.flow_id] += packet.size
        ratio = bytes_served[0] / max(bytes_served[1], 1)
        assert 0.6 < ratio < 1.7

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(100, 2000)),
                    min_size=1, max_size=60))
    def test_property_conservation(self, items):
        q = DRRQueue(per_flow_capacity_bytes=8000)
        for i, (flow, size) in enumerate(items):
            q.push(pkt(flow, i, size=size), 0.0)
        drained = 0
        while q.pop(0.0) is not None:
            drained += 1
        assert drained == q.stats.dequeued
        assert q.stats.enqueued + q.stats.dropped == len(items)
        assert q.bytes == 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 5), st.integers(5, 30))
    def test_property_equal_backlogs_equal_service(self, flows, per_flow):
        q = DRRQueue()
        for i in range(per_flow):
            for flow in range(flows):
                q.push(pkt(flow, i), 0.0)
        counts = {f: 0 for f in range(flows)}
        for _ in range(flows * per_flow // 2):
            counts[q.pop(0.0).flow_id] += 1
        # After serving half the backlog, per-flow service is within one
        # round of equal.
        assert max(counts.values()) - min(counts.values()) <= 2


class TestWithTraceLink:
    def test_drr_isolates_bufferbloat(self):
        """A flooding flow fills only its own queue: the light flow's
        packets keep low sojourn times."""
        sim = Simulator()
        delays = {0: [], 1: []}
        link = TraceLink(sim, np.arange(1, 5001) * 0.001,   # 1 pkt/ms
                         queue=DRRQueue(),
                         dst=lambda p: delays[p.flow_id].append(
                             sim.now - p.sent_time),
                         loop=False)
        # Flow 0 floods 3000 packets at t=0; flow 1 sends 1 packet/5 ms.
        for i in range(3000):
            link.send(Packet(flow_id=0, seq=i, sent_time=0.0))
        for i in range(400):
            sim.schedule_at(i * 0.005, lambda i=i: link.send(
                Packet(flow_id=1, seq=i, sent_time=sim.now)))
        sim.run(until=5.0)
        assert np.mean(delays[1]) < np.mean(delays[0]) / 5.0
