"""Unit tests for the Loss Handler (eq. 6 + recovery phase)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LossHandler


class TestEq6:
    def test_multiplicative_decrease(self):
        handler = LossHandler(multiplicative_decrease=0.5)
        assert handler.on_loss(100.0) == pytest.approx(50.0)

    def test_uses_window_of_lost_packet(self):
        """eq. 6 multiplies W_loss, not the current window."""
        handler = LossHandler(multiplicative_decrease=0.5)
        assert handler.on_loss(w_loss=40.0) == pytest.approx(20.0)

    def test_floored_at_min_window(self):
        handler = LossHandler(multiplicative_decrease=0.5, min_window=2.0)
        assert handler.on_loss(1.0) == 2.0

    def test_repeated_losses_in_one_episode_do_not_compound(self):
        handler = LossHandler(multiplicative_decrease=0.5)
        first = handler.on_loss(100.0)
        second = handler.on_loss(100.0)
        assert first == second == pytest.approx(50.0)
        assert handler.losses == 1

    def test_invalid_decrease_rejected(self):
        with pytest.raises(ValueError):
            LossHandler(multiplicative_decrease=1.0)
        with pytest.raises(ValueError):
            LossHandler(multiplicative_decrease=0.0)


class TestRecoveryPhase:
    def test_enters_recovery_on_loss(self):
        handler = LossHandler()
        handler.on_loss(10.0)
        assert handler.in_recovery
        assert handler.window == pytest.approx(5.0)

    def test_additive_growth_during_recovery(self):
        handler = LossHandler()
        handler.on_loss(20.0)                 # window 10
        w = handler.on_ack_in_recovery(window_at_send=1e9)
        assert w == pytest.approx(10.1)       # + 1/10

    def test_exit_when_ack_from_post_decrease_packet(self):
        handler = LossHandler()
        handler.on_loss(20.0)                 # window 10
        handler.on_ack_in_recovery(window_at_send=100.0)   # still old
        assert handler.in_recovery
        handler.on_ack_in_recovery(window_at_send=5.0)     # sent after cut
        assert not handler.in_recovery
        assert handler.recoveries_completed == 1

    def test_window_none_outside_recovery(self):
        handler = LossHandler()
        assert handler.window is None
        handler.on_loss(10.0)
        handler.on_ack_in_recovery(1.0)
        assert handler.window is None

    def test_ack_outside_recovery_raises(self):
        with pytest.raises(RuntimeError):
            LossHandler().on_ack_in_recovery(1.0)

    def test_abort_leaves_recovery(self):
        handler = LossHandler()
        handler.on_loss(10.0)
        handler.abort()
        assert not handler.in_recovery

    def test_new_episode_after_recovery_compounds(self):
        handler = LossHandler()
        handler.on_loss(100.0)                        # 50
        handler.on_ack_in_recovery(window_at_send=1.0)  # exits
        w = handler.on_loss(50.0)
        assert w == pytest.approx(25.0)
        assert handler.losses == 2

    @settings(max_examples=50, deadline=None)
    @given(st.floats(1.0, 10_000.0), st.floats(0.1, 0.9))
    def test_property_post_loss_window_bounded(self, w_loss, m):
        handler = LossHandler(multiplicative_decrease=m, min_window=1.0)
        w = handler.on_loss(w_loss)
        assert 1.0 <= w <= max(1.0, w_loss)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 200))
    def test_property_recovery_growth_is_monotone(self, n_acks):
        handler = LossHandler()
        handler.on_loss(50.0)
        prev = handler.window
        for _ in range(n_acks):
            w = handler.on_ack_in_recovery(window_at_send=1e9)
            assert w >= prev
            prev = w
