"""Integration tests for the experiment harness (short durations)."""

import numpy as np
import pytest

from repro.cellular import generate_scenario_trace
from repro.experiments import (
    FlowSpec,
    format_series,
    format_table,
    make_endpoints,
    repeat_flows,
    run_fixed_dumbbell,
    run_trace_contention,
    run_variable_dumbbell,
)
from repro.experiments.micro import rapid_change_schedule
from repro.metrics import aggregate_stats


class TestFlowSpec:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            FlowSpec(protocol="quic")

    def test_label_defaults_to_protocol(self):
        assert FlowSpec(protocol="cubic").label == "cubic"

    def test_repeat_flows_staggered(self):
        specs = repeat_flows("verus", 3, start_stagger=10.0, r=4.0)
        assert [s.start_at for s in specs] == [0.0, 10.0, 20.0]
        assert all(s.options == {"r": 4.0} for s in specs)

    def test_repeat_flows_count_validated(self):
        with pytest.raises(ValueError):
            repeat_flows("verus", 0)

    @pytest.mark.parametrize("protocol", ["verus", "cubic", "newreno",
                                          "vegas", "sprout"])
    def test_make_endpoints_all_protocols(self, protocol):
        sender, receiver = make_endpoints(FlowSpec(protocol=protocol), 3)
        assert sender.flow_id == 3
        assert receiver.flow_id == 3

    def test_verus_options_forwarded(self):
        sender, _ = make_endpoints(
            FlowSpec(protocol="verus", options={"r": 6.0}), 0)
        assert sender.config.r == 6.0

    def test_verus_config_object_accepted(self):
        from repro.core import VerusConfig
        config = VerusConfig(r=4.0)
        sender, _ = make_endpoints(
            FlowSpec(protocol="verus", options={"config": config}), 0)
        assert sender.config is config


class TestRunners:
    def test_trace_contention_basic(self):
        trace = generate_scenario_trace("campus_stationary", duration=15.0,
                                        technology="3g", seed=1)
        result = run_trace_contention(trace, repeat_flows("verus", 2),
                                      duration=15.0, warmup=3.0)
        stats = result.all_stats()
        assert len(stats) == 2
        assert all(s.throughput_bps > 0 for s in stats)

    def test_stats_by_label_groups(self):
        trace = generate_scenario_trace("campus_stationary", duration=10.0,
                                        seed=1)
        specs = repeat_flows("verus", 1) + repeat_flows("cubic", 2)
        result = run_trace_contention(trace, specs, duration=10.0,
                                      warmup=2.0)
        grouped = result.stats_by_label()
        assert len(grouped["verus"]) == 1
        assert len(grouped["cubic"]) == 2

    def test_fixed_dumbbell_fills_link(self):
        result = run_fixed_dumbbell(20e6, repeat_flows("cubic", 2),
                                    duration=15.0, queue_bytes=300_000,
                                    warmup=5.0)
        agg = aggregate_stats(result.all_stats())
        assert agg["total_throughput_mbps"] > 15.0

    def test_variable_dumbbell_runs(self):
        schedule = rapid_change_schedule(20.0, 5e6, 20e6, seed=1)
        result = run_variable_dumbbell(schedule,
                                       [FlowSpec(protocol="verus")],
                                       duration=20.0, warmup=5.0)
        assert result.stats(0).throughput_bps > 1e6

    def test_reproducible_with_seed(self):
        trace = generate_scenario_trace("city_driving", duration=10.0,
                                        seed=2)
        def run():
            result = run_trace_contention(
                trace, repeat_flows("newreno", 2), duration=10.0, seed=5)
            return [r.bytes_received for r in result.receivers]
        assert run() == run()

    def test_per_flow_deliveries_keyed_by_flow(self):
        trace = generate_scenario_trace("campus_stationary", duration=8.0,
                                        seed=1)
        result = run_trace_contention(trace, repeat_flows("verus", 2),
                                      duration=8.0)
        mapping = result.per_flow_deliveries()
        assert set(mapping) == {0, 1}

    def test_summary_round_trips_through_json(self):
        import json

        from repro.experiments.runner import summary_stats
        trace = generate_scenario_trace("campus_stationary", duration=10.0,
                                        seed=1)
        specs = repeat_flows("verus", 1) + repeat_flows("cubic", 1)
        result = run_trace_contention(trace, specs, duration=10.0,
                                      warmup=2.0)
        summary = json.loads(json.dumps(result.summary()))
        assert summary["duration"] == 10.0
        assert [f["protocol"] for f in summary["flows"]] == ["verus", "cubic"]
        restored = summary_stats(summary)
        assert restored == result.all_stats()


class TestHeadlineResult:
    def test_verus_vs_cubic_delay_gap(self):
        """The paper's core claim, end to end: on the same cellular trace
        under contention, Verus delivers comparable throughput at a small
        fraction of Cubic's delay."""
        trace = generate_scenario_trace("campus_pedestrian", duration=40.0,
                                        technology="3g",
                                        mean_rate_bps=8e6, seed=11)
        verus = run_trace_contention(trace, repeat_flows("verus", 3, r=2.0),
                                     duration=40.0, warmup=10.0)
        cubic = run_trace_contention(trace, repeat_flows("cubic", 3),
                                     duration=40.0, warmup=10.0)
        verus_agg = aggregate_stats(verus.all_stats())
        cubic_agg = aggregate_stats(cubic.all_stats())
        assert verus_agg["mean_delay_ms"] < cubic_agg["mean_delay_ms"] / 2.5
        assert (verus_agg["mean_throughput_mbps"]
                > 0.4 * cubic_agg["mean_throughput_mbps"])


class TestReport:
    def test_format_table_aligns_columns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_table_union_of_keys(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_format_series_subsamples(self):
        text = format_series("s", range(1000), range(1000), max_points=10)
        assert text.count("(") <= 26

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])
