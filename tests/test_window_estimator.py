"""Unit tests for the Window Estimator (eq. 4 and eq. 5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WindowEstimator


def make(r=2.0, delta1=0.001, delta2=0.002, epoch=0.005, d_est=0.1):
    est = WindowEstimator(r=r, delta1=delta1, delta2=delta2, epoch=epoch)
    est.initialise(d_est)
    return est


class TestValidation:
    def test_rejects_r_at_most_one(self):
        with pytest.raises(ValueError):
            WindowEstimator(r=1.0, delta1=0.001, delta2=0.002, epoch=0.005)

    def test_rejects_delta1_above_delta2(self):
        with pytest.raises(ValueError):
            WindowEstimator(r=2.0, delta1=0.003, delta2=0.002, epoch=0.005)

    def test_rejects_nonpositive_epoch(self):
        with pytest.raises(ValueError):
            WindowEstimator(r=2.0, delta1=0.001, delta2=0.002, epoch=0.0)

    def test_update_before_initialise_raises(self):
        est = WindowEstimator(r=2.0, delta1=0.001, delta2=0.002, epoch=0.005)
        with pytest.raises(RuntimeError):
            est.update_set_point(0.0, 0.1, 0.05)

    def test_initialise_rejects_nonpositive(self):
        est = WindowEstimator(r=2.0, delta1=0.001, delta2=0.002, epoch=0.005)
        with pytest.raises(ValueError):
            est.initialise(0.0)


class TestEq4Branches:
    def test_ratio_branch_decrements_by_delta2(self):
        est = make(r=2.0, d_est=0.200)
        # D_max/D_min = 0.3/0.1 = 3 > R
        result = est.update_set_point(delta_d=-0.01, d_max=0.3, d_min=0.1)
        assert result == pytest.approx(0.198)
        assert est.last_branch == "ratio"

    def test_ratio_branch_has_priority_over_delta_d(self):
        est = make(r=2.0, d_est=0.100)
        est.update_set_point(delta_d=0.05, d_max=0.5, d_min=0.1)
        assert est.last_branch == "ratio"

    def test_backoff_branch_decrements_by_delta1(self):
        est = make(r=10.0, d_est=0.150)
        result = est.update_set_point(delta_d=0.01, d_max=0.15, d_min=0.1)
        assert result == pytest.approx(0.149)
        assert est.last_branch == "backoff"

    def test_backoff_floored_at_dmin(self):
        est = make(r=10.0, d_est=0.1005)
        result = est.update_set_point(delta_d=0.01, d_max=0.15, d_min=0.1)
        assert result == pytest.approx(0.1)  # max(D_min, D_est - δ1)

    def test_increase_branch_adds_delta2(self):
        est = make(r=10.0, d_est=0.100)
        result = est.update_set_point(delta_d=-0.01, d_max=0.15, d_min=0.1)
        assert result == pytest.approx(0.102)
        assert est.last_branch == "increase"

    def test_zero_delta_d_counts_as_increase(self):
        est = make(r=10.0, d_est=0.100)
        est.update_set_point(delta_d=0.0, d_max=0.15, d_min=0.1)
        assert est.last_branch == "increase"

    def test_set_point_never_below_dmin(self):
        est = make(r=2.0, d_est=0.101)
        for _ in range(100):
            est.update_set_point(delta_d=0.0, d_max=0.5, d_min=0.1)
        assert est.d_est >= 0.1

    def test_rejects_nonpositive_dmin(self):
        est = make()
        with pytest.raises(ValueError):
            est.update_set_point(0.0, 0.1, 0.0)

    def test_equilibrium_oscillates_near_r_dmin(self):
        """Driving eq. 4 with D_max = D_est settles near R × D_min."""
        est = make(r=2.0, d_est=0.05)
        d_min = 0.05
        for _ in range(2000):
            est.update_set_point(delta_d=0.0, d_max=est.d_est, d_min=d_min)
        assert est.d_est == pytest.approx(2.0 * d_min, rel=0.1)


class TestEq5:
    def test_epochs_per_rtt_ceiling(self):
        assert WindowEstimator.epochs_per_rtt(0.050, 0.005) == 10
        assert WindowEstimator.epochs_per_rtt(0.051, 0.005) == 11

    def test_epochs_per_rtt_floor_of_two(self):
        assert WindowEstimator.epochs_per_rtt(0.001, 0.005) == 2
        assert WindowEstimator.epochs_per_rtt(0.0, 0.005) == 2

    def test_steady_state_sends_window_per_rtt(self):
        """W_{i+1} = W_i = W → S = W/(n−1): one window per RTT."""
        est = make()
        w = 90.0
        rtt = 0.050
        n = WindowEstimator.epochs_per_rtt(rtt, est.epoch)
        s = est.send_budget(w, w, rtt)
        assert s == pytest.approx(w / (n - 1))

    def test_budget_clamped_at_zero(self):
        est = make()
        # Window collapsed: far more in flight than the next target.
        assert est.send_budget(1.0, 500.0, 0.05) == 0.0

    def test_growth_sends_more(self):
        est = make()
        shrink = est.send_budget(50.0, 100.0, 0.05)
        steady = est.send_budget(100.0, 100.0, 0.05)
        grow = est.send_budget(150.0, 100.0, 0.05)
        assert shrink < steady < grow

    def test_rejects_negative_windows(self):
        est = make()
        with pytest.raises(ValueError):
            est.send_budget(-1.0, 0.0, 0.05)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(0.0, 1000.0), st.floats(0.0, 1000.0),
           st.floats(0.001, 1.0))
    def test_property_budget_nonnegative(self, w_next, w_cur, rtt):
        est = make()
        assert est.send_budget(w_next, w_cur, rtt) >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(st.floats(0.01, 0.5), st.floats(0.01, 0.5), st.floats(0.01, 0.5))
    def test_property_eq4_moves_by_at_most_delta2(self, d_est, d_max, d_min):
        est = make(d_est=d_est)
        before = est.d_est
        after = est.update_set_point(0.0, d_max, d_min)
        # Single update moves the set-point by at most δ2 (modulo the
        # D_min floor, which can only pull it up).
        assert after >= min(before - est.delta2, d_min)
        assert after <= max(before + est.delta2, d_min)
