"""Unit tests for the Delay Profiler (Fig 5 / Fig 7 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DelayProfiler


def seeded_profile(points=((0, 0.02), (10, 0.03), (50, 0.08), (100, 0.2))):
    prof = DelayProfiler()
    for window, delay in points:
        prof.add_sample(window, delay)
    assert prof.interpolate()
    return prof


class TestPointMaintenance:
    def test_new_point_stored_directly(self):
        prof = DelayProfiler(ewma=0.5)
        prof.add_sample(10, 0.1)
        assert dict(prof.knots())[10] == pytest.approx(0.1)

    def test_ewma_update_of_existing_point(self):
        prof = DelayProfiler(ewma=0.5)
        prof.add_sample(10, 0.1)
        prof.add_sample(10, 0.2)
        assert dict(prof.knots())[10] == pytest.approx(0.15)

    def test_window_rounded_to_int_key(self):
        prof = DelayProfiler()
        prof.add_sample(10.4, 0.1)
        prof.add_sample(9.6, 0.3)
        knots = dict(prof.knots())
        assert list(knots) == [10]

    def test_negative_window_clamped_to_zero(self):
        prof = DelayProfiler()
        prof.add_sample(-5.0, 0.1)
        assert list(dict(prof.knots())) == [0]

    def test_rejects_nonpositive_delay(self):
        with pytest.raises(ValueError):
            DelayProfiler().add_sample(1, 0.0)

    def test_eviction_keeps_most_recent(self):
        prof = DelayProfiler(max_points=4)
        for w in range(6):
            prof.add_sample(w, 0.1)
        assert len(prof) == 4
        assert 0 not in dict(prof.knots())   # oldest evicted
        assert 5 in dict(prof.knots())

    def test_touching_a_point_protects_it_from_eviction(self):
        prof = DelayProfiler(max_points=4)
        for w in range(4):
            prof.add_sample(w, 0.1)
        prof.add_sample(0, 0.2)              # refresh oldest
        prof.add_sample(9, 0.1)              # forces eviction
        assert 0 in dict(prof.knots())
        assert 1 not in dict(prof.knots())

    def test_freeze_drops_samples(self):
        prof = DelayProfiler()
        prof.freeze_updates()
        prof.add_sample(1, 0.1)
        assert len(prof) == 0
        prof.unfreeze_updates()
        prof.add_sample(1, 0.1)
        assert len(prof) == 1


class TestInterpolation:
    def test_needs_two_points(self):
        prof = DelayProfiler()
        prof.add_sample(5, 0.1)
        assert not prof.interpolate()
        prof.add_sample(10, 0.2)
        assert prof.interpolate()
        assert prof.ready

    def test_dmin_anchor_adds_origin_point(self):
        prof = DelayProfiler()
        prof.add_sample(50, 0.2)
        # a single recorded point + the (0, d_min) anchor is enough
        assert prof.interpolate(d_min=0.02)
        assert prof.delay_for_window(0.0) == pytest.approx(0.02, rel=0.01)

    def test_queries_before_interpolation_raise(self):
        prof = DelayProfiler()
        with pytest.raises(RuntimeError):
            prof.window_for_delay(0.1)
        with pytest.raises(RuntimeError):
            prof.delay_for_window(1.0)

    def test_interpolation_counter(self):
        prof = seeded_profile()
        count = prof.interpolations
        prof.interpolate()
        assert prof.interpolations == count + 1

    def test_curve_samples_shape(self):
        prof = seeded_profile()
        xs, ys = prof.curve_samples(n=64)
        assert xs.shape == (64,) and ys.shape == (64,)
        assert xs[0] == 0.0 and xs[-1] == 100.0


class TestLookup:
    def test_forward_query_matches_knots(self):
        prof = seeded_profile()
        assert prof.delay_for_window(50) == pytest.approx(0.08, rel=0.01)

    def test_inverse_query_is_fig5_horizontal_line(self):
        prof = seeded_profile()
        w = prof.window_for_delay(0.08)
        assert w == pytest.approx(50.0, abs=1.0)

    def test_higher_target_gives_larger_window(self):
        prof = seeded_profile()
        assert (prof.window_for_delay(0.15)
                > prof.window_for_delay(0.05)
                > prof.window_for_delay(0.025))

    def test_target_below_floor_returns_zero_window(self):
        prof = seeded_profile()
        assert prof.window_for_delay(0.001) == pytest.approx(0.0, abs=0.5)

    def test_target_above_profile_extrapolates(self):
        prof = seeded_profile()
        w = prof.window_for_delay(0.5)
        assert w > 100.0

    def test_snapshot_is_a_copy(self):
        prof = seeded_profile()
        snap = prof.snapshot()
        snap[999] = 1.0
        assert 999 not in dict(prof.knots())

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.021, 0.19))
    def test_property_roundtrip_window_delay(self, target):
        """f(f^{-1}(d)) <= d for monotone profiles (never overshoot)."""
        prof = seeded_profile()
        w = prof.window_for_delay(target)
        if w > 0:
            assert prof.delay_for_window(w) <= target * 1.05

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 500),
                              st.floats(0.01, 1.0)),
                    min_size=2, max_size=40,
                    unique_by=lambda p: p[0]))
    def test_property_interpolation_never_crashes(self, points):
        prof = DelayProfiler()
        for window, delay in points:
            prof.add_sample(window, delay)
        if prof.interpolate():
            lo = min(w for w, _ in points)
            hi = max(w for w, _ in points)
            for w in np.linspace(lo, hi, 17):
                assert np.isfinite(prof.delay_for_window(float(w)))
