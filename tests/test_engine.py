"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim import PeriodicTimer, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, seen.append, "nested"))
        sim.run()
        assert seen == ["nested"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_is_inclusive(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, seen.append, 2)
        sim.run(until=2.0)
        assert seen == [1, 2]

    def test_run_until_excludes_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, seen.append, 3)
        sim.run(until=2.0)
        assert seen == []
        assert sim.now == 2.0
        sim.run()
        assert seen == [3]

    def test_now_advances_to_until_when_heap_drains(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, seen.append, 2)
        sim.run()
        assert seen == [(1, None)] or seen[0] is not None
        assert len(seen) == 1

    def test_max_events_limits_execution(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(i + 1.0, seen.append, i)
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_step_executes_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "x")
        assert sim.step() is True
        assert seen == ["x"]
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i + 1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert not event.active

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending() == 1


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=2.0)
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_fire_now_starts_immediately(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start(fire_now=True)
        sim.run(until=1.5)
        assert ticks == [0.0, 1.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(1.2, timer.stop)
        sim.run(until=3.0)
        assert ticks == [0.5, 1.0]

    def test_stop_from_within_callback(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: (ticks.append(sim.now),
                                                 timer.stop()))
        timer.start()
        sim.run(until=5.0)
        assert len(ticks) == 1

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)


class TestFastPathScheduling:
    """call_later/call_at: tuple-only scheduling for never-cancelled work."""

    def test_call_later_fires_like_schedule(self):
        sim = Simulator()
        order = []
        sim.call_later(2.0, order.append, "b")
        sim.call_later(1.0, order.append, "a")
        assert sim.call_later(0.5, order.append, "z") is None
        sim.run()
        assert order == ["z", "a", "b"]

    def test_fifo_tie_break_is_shared_with_schedule(self):
        # Both APIs draw from the same sequence counter, so interleaving
        # them at the same timestamp preserves submission order exactly.
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "s1")
        sim.call_later(1.0, order.append, "f1")
        sim.schedule(1.0, order.append, "s2")
        sim.call_at(1.0, order.append, "f2")
        sim.run()
        assert order == ["s1", "f1", "s2", "f2"]

    def test_call_later_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_later(-0.1, lambda: None)

    def test_call_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_counts_in_events_processed_and_pending(self):
        sim = Simulator()
        for i in range(10):
            sim.call_later(i * 0.1, lambda: None)
        assert sim.pending() == 10
        sim.run()
        assert sim.events_processed == 10
        assert sim.pending() == 0


class TestCorpseCompaction:
    """Cancelled events must not accumulate in the heap unboundedly."""

    def test_cancel_heavy_workload_keeps_heap_bounded(self):
        # RTO-timer churn: every tick arms a timer and cancels the
        # previous one, so all but one scheduled event becomes a corpse.
        sim = Simulator()
        state = {"rto": None, "ticks": 0}

        def tick():
            if state["rto"] is not None:
                state["rto"].cancel()
            state["rto"] = sim.schedule(60.0, lambda: None)
            state["ticks"] += 1
            if state["ticks"] < 5000:
                sim.call_later(0.001, tick)

        sim.call_later(0.0, tick)
        sim.run(until=30.0)
        assert state["ticks"] == 5000
        # Without compaction the heap would hold ~5000 corpses; with it,
        # corpses can never exceed live entries plus the sweep threshold.
        assert len(sim._heap) <= 2 * sim.pending() + 64
        assert sim.pending() == 1  # the last armed RTO timer

    def test_pending_is_exact_under_cancellation(self):
        sim = Simulator()
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(200)]
        for event in events[::2]:
            event.cancel()
        assert sim.pending() == 100
        for event in events:  # double-cancel must not double-count
            event.cancel()
        assert sim.pending() == 0

    def test_cancel_after_fire_does_not_corrupt_accounting(self):
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        fired.cancel()  # already popped: must not touch the corpse count
        assert sim.pending() == 1
        sim.run()
        assert sim.events_processed == 2

    def test_peek_time_evicts_head_corpses(self):
        sim = Simulator()
        doomed = [sim.schedule(1.0 + i * 0.01, lambda: None) for i in range(10)]
        sim.schedule(5.0, lambda: None)
        for event in doomed:
            event.cancel()
        assert sim.peek_time() == 5.0
        assert sim.pending() == 1

    def test_peek_time_sees_fast_path_entries(self):
        sim = Simulator()
        sim.call_later(3.0, lambda: None)
        assert sim.peek_time() == 3.0

    def test_compaction_preserves_firing_order(self):
        sim = Simulator()
        order = []
        keep, doom = [], []
        for i in range(300):
            keep.append(sim.schedule(10.0 + i, order.append, i))
            doom.append(sim.schedule(5.0 + i * 0.01, order.append, -1))
        for event in doom:
            event.cancel()  # triggers in-place compaction mid-stream
        sim.run()
        assert order == list(range(300))
        assert sim.events_processed == 300
