"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim import PeriodicTimer, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, seen.append, "nested"))
        sim.run()
        assert seen == ["nested"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_is_inclusive(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, seen.append, 2)
        sim.run(until=2.0)
        assert seen == [1, 2]

    def test_run_until_excludes_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.0, seen.append, 3)
        sim.run(until=2.0)
        assert seen == []
        assert sim.now == 2.0
        sim.run()
        assert seen == [3]

    def test_now_advances_to_until_when_heap_drains(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, seen.append, 2)
        sim.run()
        assert seen == [(1, None)] or seen[0] is not None
        assert len(seen) == 1

    def test_max_events_limits_execution(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(i + 1.0, seen.append, i)
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_step_executes_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "x")
        assert sim.step() is True
        assert seen == ["x"]
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i + 1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert not event.active

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        event = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending() == 1


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: ticks.append(sim.now))
        timer.start()
        sim.run(until=2.0)
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_fire_now_starts_immediately(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        timer.start(fire_now=True)
        sim.run(until=1.5)
        assert ticks == [0.0, 1.0]

    def test_stop_halts_firing(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: ticks.append(sim.now))
        timer.start()
        sim.schedule(1.2, timer.stop)
        sim.run(until=3.0)
        assert ticks == [0.5, 1.0]

    def test_stop_from_within_callback(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 0.5, lambda: (ticks.append(sim.now),
                                                 timer.stop()))
        timer.start()
        sim.run(until=5.0)
        assert len(ticks) == 1

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None)
