"""Tests for the channel-model statistical validation."""

import numpy as np
import pytest

from repro.cellular import (
    SCENARIO_NAMES,
    ChannelValidation,
    compare_technologies,
    generate_scenario_trace,
    validate_trace,
)


class TestValidateTrace:
    def test_rejects_short_traces(self):
        with pytest.raises(ValueError):
            validate_trace(np.linspace(0, 1, 10))

    def test_smooth_trace_fails_burstiness_checks(self):
        """A perfectly-paced CBR trace must NOT look like a cellular
        channel — the validator distinguishes the two."""
        smooth = np.arange(1, 20_000) * 0.002   # 1 packet every 2 ms
        validation = validate_trace(smooth)
        checks = validation.checks()
        assert not checks["bursty_sizes"]
        assert not checks["heavy_tail_sizes"]
        assert not checks["interarrivals_vary_widely"]
        assert not checks["fluctuates_at_100ms"]

    def test_synthetic_3g_passes_all_checks(self):
        trace = generate_scenario_trace("city_stationary", duration=60.0,
                                        technology="3g",
                                        mean_rate_bps=10e6, seed=3)
        validation = validate_trace(trace)
        checks = validation.checks(target_rate_bps=10e6)
        failed = [name for name, ok in checks.items() if not ok]
        assert not failed, failed

    def test_synthetic_lte_passes_all_checks(self):
        trace = generate_scenario_trace("campus_pedestrian", duration=60.0,
                                        technology="lte",
                                        mean_rate_bps=15e6, seed=4)
        validation = validate_trace(trace)
        assert validation.all_ok(target_rate_bps=15e6)

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_every_scenario_exhibits_channel_character(self, scenario):
        """All seven §5.3 scenarios must show the §3 phenomena."""
        trace = generate_scenario_trace(scenario, duration=45.0,
                                        technology="3g",
                                        mean_rate_bps=8e6, seed=6)
        validation = validate_trace(trace)
        checks = validation.checks()   # no rate check: outages skew means
        core = ("bursty_sizes", "short_windows_more_variable",
                "fluctuates_at_100ms")
        assert all(checks[name] for name in core), checks

    def test_mobility_raises_second_scale_variability(self):
        stationary = validate_trace(generate_scenario_trace(
            "campus_stationary", duration=60.0, seed=8))
        highway = validate_trace(generate_scenario_trace(
            "highway_driving", duration=60.0, seed=8))
        assert highway.second_scale_cv > stationary.second_scale_cv


class TestCompareTechnologies:
    def test_ordering_holds_across_seeds(self):
        for seed in (1, 2, 3):
            t3g = generate_scenario_trace("city_stationary", duration=45.0,
                                          technology="3g",
                                          mean_rate_bps=10e6, seed=seed)
            lte = generate_scenario_trace("city_stationary", duration=45.0,
                                          technology="lte",
                                          mean_rate_bps=10e6, seed=seed)
            ordering = compare_technologies(t3g, lte)
            assert all(ordering.values()), (seed, ordering)
