"""Format layer of the trace corpus: round-trips, detection, hardening.

The hypothesis properties assert the subsystem's core contract: any
canonical ms trace written in any supported format reads back exactly,
through any pair of formats.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular import TraceFormatError, load_trace, save_trace
from repro.traces import (
    FORMATS,
    as_milliseconds,
    as_seconds,
    convert,
    detect_format,
    read_trace_ms,
    write_trace_ms,
)

EXT = {"mahimahi": ".pps", "seconds": ".sec", "csv": ".csv"}

#: Sorted, non-negative integer-ms traces (repeats allowed — mahimahi
#: delivery-opportunity convention).
ms_traces = st.lists(st.integers(min_value=0, max_value=100_000),
                     min_size=1, max_size=200).map(
    lambda xs: np.asarray(sorted(xs), dtype=np.int64))


class TestRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(times_ms=ms_traces, fmt=st.sampled_from(FORMATS))
    def test_write_read_identity(self, times_ms, fmt, tmp_path_factory):
        path = tmp_path_factory.mktemp("fmt") / f"trace{EXT[fmt]}"
        write_trace_ms(path, times_ms, fmt)
        np.testing.assert_array_equal(read_trace_ms(path, fmt), times_ms)
        # Auto-detection must agree with the declared format.
        assert detect_format(path) == fmt
        np.testing.assert_array_equal(read_trace_ms(path), times_ms)

    @settings(max_examples=30, deadline=None)
    @given(times_ms=ms_traces,
           src_fmt=st.sampled_from(FORMATS),
           dst_fmt=st.sampled_from(FORMATS))
    def test_convert_any_pair_lossless(self, times_ms, src_fmt, dst_fmt,
                                       tmp_path_factory):
        root = tmp_path_factory.mktemp("conv")
        src = root / f"src{EXT[src_fmt]}"
        dst = root / f"dst{EXT[dst_fmt]}"
        write_trace_ms(src, times_ms, src_fmt)
        count = convert(src, dst, from_fmt=src_fmt, to_fmt=dst_fmt)
        assert count == times_ms.size
        np.testing.assert_array_equal(read_trace_ms(dst, dst_fmt), times_ms)

    @settings(max_examples=50, deadline=None)
    @given(times_ms=ms_traces)
    def test_seconds_domain_is_exact(self, times_ms):
        """ms -> seconds -> ms must be the identity (the seconds writer
        emits exact ms-precision decimals for the same reason)."""
        np.testing.assert_array_equal(
            as_milliseconds(as_seconds(times_ms)), times_ms)

    def test_native_trace_io_interoperates(self, tmp_path):
        """cellular.save_trace output is a valid mahimahi corpus file."""
        path = tmp_path / "native.pps"
        times_s = np.array([0.001, 0.002, 0.002, 0.050])
        save_trace(path, times_s)
        assert detect_format(path) == "mahimahi"
        np.testing.assert_array_equal(read_trace_ms(path),
                                      [1, 2, 2, 50])
        np.testing.assert_allclose(load_trace(path), times_s)


class TestDetection:
    def test_extension_hints(self, tmp_path):
        for ext, fmt in ((".pps", "mahimahi"), (".up", "mahimahi"),
                         (".down", "mahimahi"), (".csv", "csv"),
                         (".sec", "seconds")):
            path = tmp_path / f"t{ext}"
            path.write_text("1\n")
            assert detect_format(path) == fmt

    def test_content_sniffing(self, tmp_path):
        cases = (("10\n20\n", "mahimahi"),
                 ("0.010\n0.020\n", "seconds"),
                 ("time_ms,packets\n10,2\n", "csv"),
                 ("# comment\n\n0.5\n", "seconds"),
                 ("", "mahimahi"))
        for body, expected in cases:
            path = tmp_path / "t.trace"
            path.write_text(body)
            assert detect_format(path) == expected, body

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "t.pps"
        path.write_text("1\n")
        with pytest.raises(TraceFormatError):
            read_trace_ms(path, fmt="parquet")
        with pytest.raises(TraceFormatError):
            write_trace_ms(path, np.array([1]), fmt="parquet")


class TestHardening:
    """TraceFormatError for every malformed input (satellite 1)."""

    def test_load_trace_rejects_unsorted_file(self, tmp_path):
        """Regression: an unsorted file must raise, not silently produce
        a TraceLink that walks backwards."""
        path = tmp_path / "unsorted.pps"
        path.write_text("20\n10\n30\n")
        with pytest.raises(TraceFormatError, match="not sorted"):
            load_trace(path)

    @pytest.mark.parametrize("body,match", [
        ("nan\n", "bad trace line 1"),
        ("1.5\n", "bad trace line 1"),
        ("10\nbogus\n", "bad trace line 2"),
        ("-5\n", "non-negative"),
    ])
    def test_load_trace_rejects_malformed(self, tmp_path, body, match):
        path = tmp_path / "bad.pps"
        path.write_text(body)
        with pytest.raises(TraceFormatError, match=match):
            load_trace(path)

    def test_load_trace_error_is_valueerror(self, tmp_path):
        """Existing ``except ValueError`` call sites keep working."""
        path = tmp_path / "bad.pps"
        path.write_text("x\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_save_trace_rejects_bad_arrays(self, tmp_path):
        path = tmp_path / "out.pps"
        with pytest.raises(TraceFormatError, match="NaN"):
            save_trace(path, np.array([0.1, np.nan]))
        with pytest.raises(TraceFormatError, match="not sorted"):
            save_trace(path, np.array([0.2, 0.1]))
        with pytest.raises(TraceFormatError, match="non-negative"):
            save_trace(path, np.array([-0.1, 0.2]))

    def test_format_readers_reject_malformed(self, tmp_path):
        sec = tmp_path / "bad.sec"
        sec.write_text("0.1\ninf\n")
        with pytest.raises(TraceFormatError):
            read_trace_ms(sec, "seconds")
        csv = tmp_path / "bad.csv"
        csv.write_text("time_ms,packets\n10,2\n5,1\n")
        with pytest.raises(TraceFormatError, match="strictly increasing"):
            read_trace_ms(csv, "csv")
        csv.write_text("time_ms,packets\n10,-1\n")
        with pytest.raises(TraceFormatError, match="negative packet"):
            read_trace_ms(csv, "csv")
