"""Corpus registry: deterministic builds, integrity, provenance, CLI.

The tentpole guarantees under test: ``repro corpus build`` is
bit-identical across runs and across ``--jobs`` values; every trace is
content-addressed and verifiable; regenerable traces survive file loss.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.traces import (
    CORPUS_PRESETS,
    CorpusError,
    SynthSpec,
    build_corpus,
    characterize,
    import_trace,
    load_corpus,
    trace_sha256,
    write_trace_ms,
)

MINI = CORPUS_PRESETS["mini"]


def corpus_fingerprint(root):
    """Every byte that matters: the manifest and all trace files."""
    files = {p.relative_to(root).as_posix(): p.read_bytes()
             for p in sorted(root.rglob("*")) if p.is_file()}
    return files


class TestDeterministicBuild:
    def test_two_builds_bit_identical(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        build_corpus(a, preset="mini")
        build_corpus(b, preset="mini")
        fa, fb = corpus_fingerprint(a), corpus_fingerprint(b)
        assert fa.keys() == fb.keys()
        assert fa == fb

    def test_jobs_independent(self, tmp_path):
        serial, pooled = tmp_path / "serial", tmp_path / "pooled"
        build_corpus(serial, preset="mini", jobs=1)
        build_corpus(pooled, preset="mini", jobs=2)
        assert corpus_fingerprint(serial) == corpus_fingerprint(pooled)

    def test_rebuild_is_noop(self, tmp_path):
        root = tmp_path / "c"
        first = build_corpus(root, preset="mini")
        assert sorted(first.built) == sorted(s.default_name() for s in MINI)
        before = corpus_fingerprint(root)
        second = build_corpus(root, preset="mini")
        assert second.built == []
        assert sorted(second.unchanged) == sorted(first.built)
        assert corpus_fingerprint(root) == before

    def test_force_rebuilds_but_content_stable(self, tmp_path):
        root = tmp_path / "c"
        build_corpus(root, preset="mini")
        before = corpus_fingerprint(root)
        report = build_corpus(root, preset="mini", force=True)
        assert sorted(report.built) == sorted(s.default_name() for s in MINI)
        assert corpus_fingerprint(root) == before

    def test_unknown_preset(self, tmp_path):
        with pytest.raises(CorpusError, match="unknown corpus preset"):
            build_corpus(tmp_path / "c", preset="nope")


class TestIntegrity:
    @pytest.fixture
    def corpus(self, tmp_path):
        return build_corpus(tmp_path / "c", preset="mini").corpus

    def test_verify_ok(self, corpus):
        assert set(corpus.verify().values()) == {"ok"}

    def test_verify_detects_tamper(self, corpus):
        name = corpus.names()[0]
        path = corpus.trace_path(name)
        path.write_text(path.read_text() + "999999\n")
        report = corpus.verify()
        assert report[name].startswith("mismatch")
        with pytest.raises(CorpusError, match="hash"):
            corpus.load_ms(name)

    def test_missing_regenerable_trace_regenerates(self, corpus):
        name = corpus.names()[0]
        expected = corpus.load_ms(name).copy()
        corpus.trace_path(name).unlink()
        assert corpus.verify()[name] == "missing"
        regenerated = corpus.load_ms(name)
        np.testing.assert_array_equal(regenerated, expected)
        assert corpus.verify()[name] == "ok"   # file rewritten on load

    def test_materialize_restores_all(self, corpus):
        for name in corpus.names():
            corpus.trace_path(name).unlink()
        written = corpus.materialize()
        assert sorted(written) == corpus.names()
        assert set(corpus.verify().values()) == {"ok"}

    def test_load_missing_name(self, corpus):
        with pytest.raises(CorpusError, match="no trace named"):
            corpus.load_ms("nonexistent")

    def test_load_corpus_requires_manifest(self, tmp_path):
        with pytest.raises(CorpusError, match="manifest.json not found"):
            load_corpus(tmp_path / "empty")


class TestImportAndProvenance:
    def test_import_any_format(self, tmp_path):
        corpus = build_corpus(tmp_path / "c", preset="mini").corpus
        times_ms = np.array([5, 6, 6, 40], dtype=np.int64)
        src = tmp_path / "capture.csv"
        write_trace_ms(src, times_ms, "csv")
        entry = import_trace(corpus, src)
        assert entry.name == "capture"
        assert entry.source["kind"] == "import"
        assert entry.source["format"] == "csv"
        assert entry.sha256 == trace_sha256(times_ms)
        np.testing.assert_array_equal(corpus.load_ms("capture"), times_ms)
        # An imported trace's file cannot be regenerated from provenance.
        corpus.trace_path("capture").unlink()
        with pytest.raises(CorpusError, match="cannot"):
            corpus.load_ms("capture")

    def test_import_survives_preset_rebuild(self, tmp_path):
        root = tmp_path / "c"
        corpus = build_corpus(root, preset="mini").corpus
        src = tmp_path / "cap.pps"
        write_trace_ms(src, np.array([1, 2, 3], dtype=np.int64))
        import_trace(corpus, src, name="cap")
        report = build_corpus(root, preset="mini")
        assert "cap" in report.corpus.names()   # imports are user data

    def test_duplicate_import_needs_overwrite(self, tmp_path):
        corpus = build_corpus(tmp_path / "c", preset="mini").corpus
        src = tmp_path / "cap.pps"
        write_trace_ms(src, np.array([1, 2], dtype=np.int64))
        import_trace(corpus, src, name="cap")
        with pytest.raises(CorpusError, match="already exists"):
            import_trace(corpus, src, name="cap")
        import_trace(corpus, src, name="cap", overwrite=True)

    def test_stats_recorded_in_manifest(self, tmp_path):
        corpus = build_corpus(tmp_path / "c", preset="mini").corpus
        for name in corpus.names():
            entry = corpus.entry(name)
            expected = characterize(corpus.load_ms(name)).to_dict()
            assert entry.stats == expected
            assert entry.stats["duration_s"] > 0


class TestCorpusCli:
    def test_build_verify_stats_list(self, tmp_path, capsys):
        root = str(tmp_path / "c")
        assert main(["corpus", "build", "--dir", root,
                     "--preset", "mini"]) == 0
        out = capsys.readouterr().out
        assert "built: 2" in out and "unchanged: 0" in out

        assert main(["corpus", "build", "--dir", root,
                     "--preset", "mini"]) == 0
        assert "built: 0  unchanged: 2" in capsys.readouterr().out

        assert main(["corpus", "verify", "--dir", root]) == 0
        assert "mismatched: 0" in capsys.readouterr().out

        assert main(["corpus", "stats", "--dir", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == sorted(s.default_name() for s in MINI)
        for stats in payload.values():
            assert stats["opportunities"] > 0

        assert main(["corpus", "list", "--dir", root]) == 0
        assert "synth" in capsys.readouterr().out

    def test_verify_fails_on_tamper(self, tmp_path, capsys):
        root = tmp_path / "c"
        corpus = build_corpus(root, preset="mini").corpus
        path = corpus.trace_path(corpus.names()[0])
        path.write_text(path.read_text() + "12345\n")
        assert main(["corpus", "verify", "--dir", str(root)]) == 1

    def test_import_and_convert(self, tmp_path, capsys):
        root = str(tmp_path / "c")
        main(["corpus", "build", "--dir", root, "--preset", "mini"])
        src = tmp_path / "cap.sec"
        write_trace_ms(src, np.array([10, 20], dtype=np.int64), "seconds")
        assert main(["corpus", "import", str(src), "--dir", root]) == 0
        assert "imported 'cap'" in capsys.readouterr().out
        dst = tmp_path / "cap.csv"
        assert main(["corpus", "convert", str(src), str(dst)]) == 0
        assert dst.read_text().startswith("time_ms,packets")

    def test_missing_corpus_is_an_error(self, tmp_path, capsys):
        assert main(["corpus", "verify",
                     "--dir", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSynthSpec:
    def test_round_trips_through_manifest_dict(self):
        spec = SynthSpec(regime="driving", technology="lte",
                         duration=12.5, seed=7, mean_rate_bps=20e6)
        assert SynthSpec.from_dict(spec.to_dict()) == spec

    def test_generation_is_seed_deterministic(self):
        spec = SynthSpec(regime="walking", duration=5.0, seed=11)
        np.testing.assert_array_equal(spec.generate_ms(),
                                      spec.generate_ms())

    def test_rejects_unknown_regime(self):
        with pytest.raises(ValueError, match="unknown regime"):
            SynthSpec(regime="teleporting")
