"""Property tests for the scheduler fast path and the slotted packet.

The engine's tuple fast path (``call_later``/``call_at``) and the
cancellable ``schedule``/``schedule_at`` handles share one heap and one
tie-break counter, so any interleaving must behave exactly like a single
pure-heapq event loop.  These tests drive the :class:`Simulator` with
Hypothesis-generated interleavings of scheduling, cancellation and run
segments and compare firing order, ``events_processed``, ``now`` and
``pending()`` against a minimal reference model that knows nothing about
Events, corpses or compaction.

The slotted :class:`Packet` and its acknowledgement freelist get the same
treatment: for arbitrary field values and arbitrary acquire/release
sequences, a pooled ACK must be indistinguishable from a fresh one.
"""

from __future__ import annotations

import heapq
import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import ACK_BYTES, Packet, PacketPool
from repro.netsim.engine import SimulationError, Simulator


# ---------------------------------------------------------------------------
# Reference model: pure heapq, no Event objects, no lazy deletion
# ---------------------------------------------------------------------------
class HeapqReference:
    """The semantics the engine must match, stated as plainly as possible."""

    def __init__(self) -> None:
        self.heap = []  # (time, tiebreak, event_id)
        self.counter = itertools.count()
        self.now = 0.0
        self.processed = 0
        self.fired = []
        self.cancelled = set()
        self.done = set()

    def schedule(self, delay: float, event_id: int) -> None:
        heapq.heappush(self.heap, (self.now + delay, next(self.counter),
                                   event_id))

    def cancel(self, event_id: int) -> None:
        if event_id not in self.done:
            self.cancelled.add(event_id)

    def run(self, until=None) -> None:
        limit = float("inf") if until is None else until
        while self.heap and self.heap[0][0] <= limit:
            time, _, event_id = heapq.heappop(self.heap)
            if event_id in self.cancelled:
                continue
            self.now = time
            self.fired.append(event_id)
            self.done.add(event_id)
            self.processed += 1
        if until is not None and self.now < until:
            self.now = until

    def pending(self) -> int:
        return sum(1 for _, _, eid in self.heap if eid not in self.cancelled)


# Operation alphabet.  Delays/times use a coarse float grid so that equal
# timestamps (the FIFO tie-break case) occur often.
_DELAYS = st.integers(min_value=0, max_value=40).map(lambda k: k * 0.25)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS),
        st.tuples(st.just("schedule_at"), _DELAYS),
        st.tuples(st.just("call_later"), _DELAYS),
        st.tuples(st.just("call_at"), _DELAYS),
        # Cancel the k-th cancellable handle created so far (mod count).
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("run"), _DELAYS),
        st.tuples(st.just("run_all"), st.just(0.0)),
    ),
    min_size=1, max_size=60,
)


class TestSchedulerMatchesHeapqReference:
    @given(ops=_OPS)
    @settings(max_examples=200, deadline=None)
    def test_interleavings_match_reference(self, ops):
        sim = Simulator()
        ref = HeapqReference()
        fired = []
        handles = []  # (event_id, Event) for cancellable entries
        next_id = itertools.count()

        def make_cb(event_id):
            return lambda: fired.append(event_id)

        for kind, value in ops:
            if kind == "schedule":
                event_id = next(next_id)
                handles.append((event_id,
                                sim.schedule(value, make_cb(event_id))))
                ref.schedule(value, event_id)
            elif kind == "schedule_at":
                event_id = next(next_id)
                when = sim.now + value
                handles.append((event_id,
                                sim.schedule_at(when, make_cb(event_id))))
                ref.schedule(value, event_id)
            elif kind == "call_later":
                event_id = next(next_id)
                sim.call_later(value, make_cb(event_id))
                ref.schedule(value, event_id)
            elif kind == "call_at":
                event_id = next(next_id)
                sim.call_at(sim.now + value, make_cb(event_id))
                ref.schedule(value, event_id)
            elif kind == "cancel":
                if handles:
                    event_id, event = handles[value % len(handles)]
                    event.cancel()
                    ref.cancel(event_id)
            elif kind == "run":
                sim.run(until=sim.now + value)
                ref.run(until=ref.now + value)
            else:  # run_all
                sim.run()
                ref.run()

            # The engine must agree with the reference after every step,
            # not just at the end — corpse bookkeeping and compaction
            # must never be observable.
            assert sim.now == ref.now
            assert sim.events_processed == ref.processed
            assert sim.pending() == ref.pending()
            assert fired == ref.fired

        sim.run()
        ref.run()
        assert fired == ref.fired
        assert sim.events_processed == ref.processed
        assert sim.now == ref.now
        assert sim.pending() == 0 and ref.pending() == 0

    @given(delays=st.lists(_DELAYS, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_mixed_apis_share_fifo_order_at_equal_times(self, delays):
        """schedule and call_later pushed at the same timestamp fire in
        push order, regardless of which API each push used."""
        sim = Simulator()
        fired = []
        for i, delay in enumerate(delays):
            if i % 2 == 0:
                sim.schedule(delay, fired.append, (delay, i))
            else:
                sim.call_later(delay, fired.append, (delay, i))
        sim.run()
        assert fired == sorted(fired)  # time-major, push-order minor

    @given(value=st.floats(max_value=-1e-9, allow_nan=False,
                           allow_infinity=False))
    @settings(max_examples=50, deadline=None)
    def test_negative_delay_rejected_on_both_paths(self, value):
        sim = Simulator()
        for method in (sim.schedule, sim.call_later):
            try:
                method(value, lambda: None)
                raise AssertionError("negative delay accepted")
            except SimulationError:
                pass


# ---------------------------------------------------------------------------
# Slotted Packet + acknowledgement freelist
# ---------------------------------------------------------------------------
_DATA_PACKETS = st.builds(
    Packet,
    flow_id=st.integers(min_value=0, max_value=7),
    seq=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=40, max_value=1500),
    sent_time=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    window_at_send=st.floats(min_value=0.0, max_value=500.0,
                             allow_nan=False),
    retransmission=st.booleans(),
)


class TestPooledAckEquivalence:
    @given(data=_DATA_PACKETS,
           now=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
           ack_seq=st.one_of(st.none(), st.integers(min_value=0,
                                                    max_value=10_000)))
    @settings(max_examples=200, deadline=None)
    def test_pooled_ack_equals_fresh_ack(self, data, now, ack_seq):
        fresh = data.make_ack(now, ack_seq=ack_seq)
        pool = PacketPool()
        first = data.make_ack(now, ack_seq=ack_seq, pool=pool)
        assert first == fresh
        # Dirty the packet thoroughly, release, and re-acquire: recycling
        # must scrub every field back to exactly the fresh-ACK values.
        first.payload = {"stale": True}
        first.ecn = True
        first.enqueue_time = 123.0
        first.echo_sent_time = -1.0
        pool.release(first)
        recycled = data.make_ack(now, ack_seq=ack_seq, pool=pool)
        assert recycled is first
        assert recycled == fresh
        assert pool.allocated == 1 and pool.reused == 1

    @given(seqs=st.lists(st.integers(min_value=0, max_value=50),
                         min_size=1, max_size=120),
           max_size=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_freelist_bounded_and_always_clean(self, seqs, max_size):
        pool = PacketPool(max_size=max_size)
        held = []
        for i, seq in enumerate(seqs):
            data = Packet(flow_id=1, seq=seq, sent_time=float(i),
                          window_at_send=float(seq))
            ack = data.make_ack(float(i) + 0.5, pool=pool)
            assert ack == data.make_ack(float(i) + 0.5)  # fresh reference
            assert ack.size == ACK_BYTES and ack.is_ack
            if i % 3 == 0:
                held.append(ack)  # simulate a path that retains the ACK
            else:
                ack.payload = {"dirt": i}
                pool.release(ack)
                assert ack.payload is None
            assert len(pool) <= max_size
        assert pool.allocated + pool.reused == len(seqs)

    def test_packet_is_unhashable_like_the_dataclass_was(self):
        packet = Packet(flow_id=0, seq=1)
        try:
            hash(packet)
            raise AssertionError("Packet must be unhashable")
        except TypeError:
            pass
