"""Tests for flow wiring, demux, dumbbells and traffic sources."""

import pytest

from repro.netsim import (
    Demux,
    DropTailQueue,
    Dumbbell,
    Link,
    OnOffSource,
    Packet,
    SinkReceiver,
    Simulator,
)
from repro.netsim.flow import ReceiverProtocol, SenderProtocol


class EchoSender(SenderProtocol):
    """Minimal sender: one packet per ACK (stop-and-wait)."""

    def start(self):
        super().start()
        self._seq = 0
        self._emit()

    def _emit(self):
        packet = Packet(flow_id=self.flow_id, seq=self._seq,
                        sent_time=self.now)
        self._seq += 1
        self.send(packet)

    def on_ack(self, packet):
        if self.running:
            self._emit()


class TestDemux:
    def test_routes_by_flow_id(self):
        demux = Demux()
        a, b = [], []
        demux.register(0, a.append)
        demux.register(1, b.append)
        demux(Packet(flow_id=0, seq=0))
        demux(Packet(flow_id=1, seq=0))
        demux(Packet(flow_id=1, seq=1))
        assert len(a) == 1 and len(b) == 2

    def test_unroutable_counted(self):
        demux = Demux()
        demux(Packet(flow_id=9, seq=0))
        assert demux.unroutable == 1

    def test_duplicate_registration_rejected(self):
        demux = Demux()
        demux.register(0, lambda p: None)
        with pytest.raises(ValueError):
            demux.register(0, lambda p: None)


class TestDumbbell:
    def test_two_flows_share_bottleneck(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8e6, queue=DropTailQueue())
        bell = Dumbbell(sim, link, default_rtt=0.02)
        pairs = []
        for flow_id in range(2):
            sender = EchoSender(flow_id)
            receiver = ReceiverProtocol(flow_id)
            bell.add_flow(sender, receiver)
            pairs.append((sender, receiver))
        bell.run(5.0)
        for sender, receiver in pairs:
            assert receiver.packets_received > 50

    def test_flow_id_mismatch_rejected(self):
        sim = Simulator()
        bell = Dumbbell(sim, Link(sim, rate_bps=1e6))
        with pytest.raises(ValueError):
            bell.add_flow(EchoSender(0), ReceiverProtocol(1))

    def test_start_at_delays_sender(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8e6, queue=DropTailQueue())
        bell = Dumbbell(sim, link, default_rtt=0.02)
        sender = EchoSender(0)
        receiver = ReceiverProtocol(0)
        bell.add_flow(sender, receiver, start_at=2.0)
        bell.run(1.0)
        assert receiver.packets_received == 0
        bell.run(2.0)
        assert receiver.packets_received > 0

    def test_stop_at_halts_sender(self):
        sim = Simulator()
        link = Link(sim, rate_bps=8e6, queue=DropTailQueue())
        bell = Dumbbell(sim, link, default_rtt=0.02)
        sender = EchoSender(0)
        receiver = ReceiverProtocol(0)
        bell.add_flow(sender, receiver, stop_at=1.0)
        bell.run(5.0)
        assert sender.stop_time == 1.0

    def test_per_flow_rtt_override(self):
        sim = Simulator()
        link = Link(sim, rate_bps=100e6, queue=DropTailQueue())
        bell = Dumbbell(sim, link, default_rtt=0.02)
        fast_rcv = ReceiverProtocol(0)
        slow_rcv = ReceiverProtocol(1)
        bell.add_flow(EchoSender(0), fast_rcv, rtt=0.01)
        bell.add_flow(EchoSender(1), slow_rcv, rtt=0.1)
        bell.run(2.0)
        # Stop-and-wait rate is 1/RTT: 10× RTT gap → ~10× packet gap.
        ratio = fast_rcv.packets_received / max(slow_rcv.packets_received, 1)
        assert 5.0 < ratio < 15.0

    def test_negative_rtt_rejected(self):
        sim = Simulator()
        bell = Dumbbell(sim, Link(sim, rate_bps=1e6))
        with pytest.raises(ValueError):
            bell.add_flow(EchoSender(0), ReceiverProtocol(0), rtt=-0.1)


class TestOnOffSource:
    def test_cbr_rate(self):
        sim = Simulator()
        link = Link(sim, rate_bps=100e6, queue=DropTailQueue())
        source = OnOffSource(0, rate_bps=1e6, packet_size=1250)
        sink = SinkReceiver(0)
        sink.attach(sim, lambda p: None)
        link.dst = sink.on_data
        source.attach(sim, link.send)
        sim.schedule_at(0.0, source.start)
        sim.run(until=10.0)
        # 1 Mbps at 1250 B = 100 packets/s
        assert sink.packets_received == pytest.approx(1000, abs=5)

    def test_on_off_duty_cycle(self):
        sim = Simulator()
        received = []
        source = OnOffSource(0, rate_bps=1e6, on_period=1.0, off_period=1.0,
                             start_on=True)
        source.attach(sim, lambda p: received.append(sim.now))
        sim.schedule_at(0.0, source.start)
        sim.run(until=4.0)
        on_phase = [t for t in received if (t % 2.0) < 1.0]
        off_phase = [t for t in received if (t % 2.0) >= 1.0]
        assert len(off_phase) <= 1   # boundary packet at most
        assert len(on_phase) > 100

    def test_requires_both_periods(self):
        with pytest.raises(ValueError):
            OnOffSource(0, rate_bps=1e6, on_period=1.0)

    def test_acks_ignored(self):
        source = OnOffSource(0, rate_bps=1e6)
        source.on_ack(Packet(flow_id=0, seq=0, is_ack=True))  # no crash


class TestProtocolBases:
    def test_sender_requires_attachment(self):
        sender = EchoSender(0)
        with pytest.raises(RuntimeError):
            sender.send(Packet(flow_id=0, seq=0))
        with pytest.raises(RuntimeError):
            _ = sender.now

    def test_receiver_requires_attachment(self):
        receiver = ReceiverProtocol(0)
        with pytest.raises(RuntimeError):
            receiver.send_ack(Packet(flow_id=0, seq=0, is_ack=True))

    def test_receiver_records_delay(self):
        sim = Simulator()
        receiver = ReceiverProtocol(0)
        receiver.attach(sim, lambda a: None)
        sim.schedule_at(1.0, receiver.on_data,
                        Packet(flow_id=0, seq=0, sent_time=0.6))
        sim.run()
        (t, seq, delay, size) = receiver.deliveries[0]
        assert delay == pytest.approx(0.4)

    def test_record_flag_disables_logging(self):
        sim = Simulator()
        receiver = ReceiverProtocol(0)
        receiver.attach(sim, lambda a: None)
        receiver.record = False
        receiver.on_data(Packet(flow_id=0, seq=0))
        assert receiver.deliveries == []
        assert receiver.packets_received == 1

    def test_sink_receiver_never_acks(self):
        sim = Simulator()
        acks = []
        sink = SinkReceiver(0)
        sink.attach(sim, acks.append)
        sink.on_data(Packet(flow_id=0, seq=0))
        assert acks == []
        assert sink.packets_received == 1
