"""Tests for the fault-injection subsystem and the chaos acceptance matrix.

Covers the declarative spec (events, schedules, presets), the backend
compiler (:class:`FaultInjector` over the discrete-event simulator), the
recovery metric, the fault-injected contention runner, and the chaos
matrix plumbing through the campaign executor.  The live-backend
acceptance test at the bottom drives one schedule through the UDP
loopback emulator and checks the zero-silent-drop accounting.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.experiments.runner import FlowSpec
from repro.faults import (
    FAULT_PRESETS,
    ChaosTask,
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    expand_chaos,
    make_schedule,
    run_chaos_matrix,
    run_chaos_task,
    run_faulted_contention,
)
from repro.faults.chaos import disruption_window
from repro.metrics import recovery_stats
from repro.netsim import Packet, Simulator


def _udp_available() -> bool:
    try:
        s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        s.bind(("127.0.0.1", 0))
        s.close()
        return True
    except OSError:
        return False


needs_udp = pytest.mark.skipif(
    not _udp_available(),
    reason="no localhost UDP sockets available in this sandbox")


# ----------------------------------------------------------------------
# Declarative spec
# ----------------------------------------------------------------------

class TestFaultEvent:
    def test_constructors_set_kind(self):
        assert FaultEvent.outage(1.0, 2.0).kind == "outage"
        assert FaultEvent.burst_loss(1.0, 2.0, 0.3).rate == 0.3
        assert FaultEvent.corruption(1.0, 2.0, 0.2).kind == "corruption"
        assert FaultEvent.duplication(1.0, 2.0, 0.1).kind == "duplication"
        assert FaultEvent.reorder_storm(1.0, 2.0, 0.03).jitter == 0.03
        flap = FaultEvent.link_flap(1.0, 4.0, period=1.0, on_fraction=0.75)
        assert flap.kind == "flap" and flap.on_fraction == 0.75
        assert FaultEvent.clock_jump(3.0, 0.05).offset == 0.05

    def test_validation_rejects_bad_events(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", 0.0, 1.0)
        with pytest.raises(ValueError):
            FaultEvent.outage(-1.0, 2.0)
        with pytest.raises(ValueError):
            FaultEvent("outage", 0.0, 0.0)          # zero duration
        with pytest.raises(ValueError):
            FaultEvent.burst_loss(0.0, 1.0, 0.0)    # rate out of (0, 1]
        with pytest.raises(ValueError):
            FaultEvent.burst_loss(0.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            FaultEvent.reorder_storm(0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            FaultEvent.link_flap(0.0, 1.0, period=2.0)   # period > duration
        with pytest.raises(ValueError):
            FaultEvent.link_flap(0.0, 2.0, period=1.0, on_fraction=1.0)
        with pytest.raises(ValueError):
            FaultEvent.clock_jump(1.0, 0.0)
        with pytest.raises(ValueError):
            FaultEvent("outage", 0.0, 1.0, direction="sideways")

    def test_round_trip(self):
        events = [
            FaultEvent.outage(1.0, 2.0, "up"),
            FaultEvent.burst_loss(0.5, 1.0, 0.25),
            FaultEvent.reorder_storm(2.0, 1.0, 0.01),
            FaultEvent.link_flap(3.0, 2.0, period=0.5, on_fraction=0.6),
            FaultEvent.clock_jump(4.0, -0.02),
        ]
        for event in events:
            assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultSchedule:
    def test_events_sorted_and_round_trip(self):
        sched = FaultSchedule([FaultEvent.outage(5.0, 1.0),
                               FaultEvent.corruption(1.0, 2.0, 0.2)])
        assert [e.start for e in sched] == [1.0, 5.0]
        assert FaultSchedule.from_dict(sched.to_dict()) == sched
        assert len(FaultSchedule()) == 0

    def test_outage_windows_respect_direction(self):
        sched = FaultSchedule([FaultEvent.outage(1.0, 1.0, "down"),
                               FaultEvent.outage(4.0, 1.0, "up"),
                               FaultEvent.outage(7.0, 1.0, "both")])
        assert sched.outage_windows("down") == [(1.0, 2.0), (7.0, 8.0)]
        assert sched.outage_windows("up") == [(4.0, 5.0), (7.0, 8.0)]
        assert sched.last_outage_end("down") == 8.0
        assert FaultSchedule().last_outage_end("down") is None

    def test_flap_expands_into_dark_windows(self):
        # 4 s flap, 1 s period, up for the first 50% of each cycle.
        sched = FaultSchedule([FaultEvent.link_flap(10.0, 4.0, period=1.0,
                                                    on_fraction=0.5)])
        windows = sched.outage_windows("down")
        assert windows == [(10.5, 11.0), (11.5, 12.0),
                           (12.5, 13.0), (13.5, 14.0)]
        # Every window is well-formed even when the episode cuts a cycle.
        ragged = FaultSchedule([FaultEvent.link_flap(0.0, 2.5, period=1.0,
                                                     on_fraction=0.5)])
        assert all(start < end for start, end in
                   ragged.outage_windows("down"))

    def test_clock_jumps(self):
        sched = FaultSchedule([FaultEvent.clock_jump(2.0, 0.05),
                               FaultEvent.clock_jump(4.0, -0.05)])
        assert sched.clock_jumps() == [(2.0, 0.05), (4.0, -0.05)]


class TestPresets:
    def test_every_preset_builds(self):
        for name in FAULT_PRESETS:
            sched = make_schedule(name, 20.0)
            assert isinstance(sched, FaultSchedule)
            # Faults end before the run does, so recovery is observable.
            assert all(e.end <= 20.0 for e in sched)

    def test_chaos_preset_composition(self):
        sched = make_schedule("chaos", 20.0)
        kinds = sorted(e.kind for e in sched)
        assert kinds == ["corruption", "outage", "reorder"]
        start, end = disruption_window(sched)
        dark = sched.outage_windows("both")
        assert (start, end) == (dark[0][0], dark[-1][1])

    def test_unknown_preset_and_bad_duration(self):
        with pytest.raises(ValueError):
            make_schedule("earthquake", 20.0)
        with pytest.raises(ValueError):
            make_schedule("blackout", 0.0)


# ----------------------------------------------------------------------
# The injector compiled onto the simulator clock
# ----------------------------------------------------------------------

def _drive(injector, sim, times, flow_id=0):
    """Send one packet per entry in ``times``; return (arrival_t, seq)."""
    arrivals = []
    injector.dst = lambda p: arrivals.append((sim.now, p.seq))
    for seq, t in enumerate(times):
        sim.schedule_at(t, injector.send, Packet(flow_id=flow_id, seq=seq))
    sim.run()
    return arrivals


class TestFaultInjector:
    def test_requires_seeded_rng(self):
        with pytest.raises(ValueError):
            FaultInjector(Simulator(), FaultSchedule(), rng=None)

    def test_outage_drops_and_blocked(self):
        sim = Simulator()
        sched = FaultSchedule([FaultEvent.outage(1.0, 1.0, "both")])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(0))
        arrivals = _drive(inj, sim, [0.5, 1.5, 2.5])
        assert [seq for _, seq in arrivals] == [0, 2]
        assert inj.stats.blackout_drops == 1 and inj.stats.forwarded == 2
        assert not inj.blocked(now=0.5) and inj.blocked(now=1.5)

    def test_up_direction_ignores_data_path_faults(self):
        sim = Simulator()
        sched = FaultSchedule([FaultEvent.burst_loss(0.0, 10.0, 1.0),
                               FaultEvent.corruption(0.0, 10.0, 1.0),
                               FaultEvent.outage(5.0, 1.0, "down")])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(0),
                            direction="up")
        arrivals = _drive(inj, sim, [1.0, 5.5])
        # Loss/corruption are data-path faults; the down-only outage does
        # not darken the uplink either.
        assert len(arrivals) == 2
        assert inj.stats.dropped == 0

    def test_burst_loss_rate_one_drops_everything(self):
        sim = Simulator()
        sched = FaultSchedule([FaultEvent.burst_loss(1.0, 1.0, 1.0)])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(0))
        arrivals = _drive(inj, sim, [0.5, 1.2, 1.8, 2.5])
        assert [seq for _, seq in arrivals] == [0, 3]
        assert inj.stats.burst_losses == 2

    def test_packet_corruption_is_counted_drop_in_sim(self):
        sim = Simulator()
        sched = FaultSchedule([FaultEvent.corruption(0.0, 1.0, 1.0)])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(0))
        arrivals = _drive(inj, sim, [0.5])
        assert arrivals == [] and inj.stats.corrupted == 1

    def test_byte_corruption_mode_forwards_packets(self):
        # Live mode: corruption applies to encoded bytes via mangle(),
        # never to the packet path.
        sim = Simulator()
        sched = FaultSchedule([FaultEvent.corruption(0.0, 1.0, 1.0)])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(0),
                            byte_corruption=True)
        arrivals = _drive(inj, sim, [0.5])
        assert len(arrivals) == 1 and inj.stats.corrupted == 0

    def test_duplication(self):
        sim = Simulator()
        sched = FaultSchedule([FaultEvent.duplication(0.0, 1.0, 1.0)])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(0))
        arrivals = _drive(inj, sim, [0.1, 0.2])
        assert [seq for _, seq in arrivals] == [0, 0, 1, 1]
        assert inj.stats.duplicated == 2 and inj.stats.forwarded == 2

    def test_reorder_storm_delay_is_bounded(self):
        sim = Simulator()
        jitter = 0.02
        sched = FaultSchedule([FaultEvent.reorder_storm(0.0, 10.0, jitter)])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(1),
                            base_delay=0.01)
        times = [i * 0.001 for i in range(50)]
        arrivals = _drive(inj, sim, times)
        assert sorted(seq for _, seq in arrivals) == list(range(50))
        for (arrival, seq) in arrivals:
            held = arrival - times[seq] - 0.01
            assert -1e-9 <= held <= jitter + 1e-9
        # Actual overtaking happened.
        assert [seq for _, seq in arrivals] != list(range(50))
        assert inj.stats.reorder_delays == 50

    def test_clock_jump_shifts_delay_and_clamps(self):
        sim = Simulator()
        sched = FaultSchedule([FaultEvent.clock_jump(1.0, 0.05),
                               FaultEvent.clock_jump(2.0, -0.5)])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(0),
                            base_delay=0.01)
        arrivals = _drive(inj, sim, [0.5, 1.5, 2.5])
        delays = {seq: t - [0.5, 1.5, 2.5][seq] for t, seq in arrivals}
        assert delays[0] == pytest.approx(0.01)
        assert delays[1] == pytest.approx(0.06)
        assert delays[2] == pytest.approx(0.01)   # clamped, never negative

    def test_callable_like_a_link_destination(self):
        sim = Simulator()
        inj = FaultInjector(sim, FaultSchedule(),
                            rng=np.random.default_rng(0))
        got = []
        inj.dst = got.append
        inj(Packet(flow_id=0, seq=7))   # links invoke dst(packet)
        sim.run()
        assert got[0].seq == 7

    def test_mangle_only_inside_corruption_window(self):
        sim = Simulator()
        sched = FaultSchedule([FaultEvent.corruption(1.0, 1.0, 1.0)])
        inj = FaultInjector(sim, sched, rng=np.random.default_rng(2),
                            byte_corruption=True)
        data = bytes(range(64))
        assert inj.mangle(data) is data          # t=0: window not active
        sim.schedule_at(1.5, lambda: None)
        sim.run()
        for _ in range(20):
            damaged = inj.mangle(data)
            assert damaged != data
            assert len(damaged) <= len(data)
        assert inj.stats.truncated + inj.stats.corrupted == 20
        assert inj.stats.truncated > 0 and inj.stats.corrupted > 0


# ----------------------------------------------------------------------
# Recovery metric
# ----------------------------------------------------------------------

def _deliveries(times, size=1000):
    return [(t, seq, 0.01, size) for seq, t in enumerate(times)]


class TestRecoveryStats:
    def test_no_disruption_healthy_flow(self):
        stats = recovery_stats(_deliveries([0.1, 0.2]), None, None)
        assert stats.recovered and stats.recovery_time == 0.0
        assert not recovery_stats([], None, None).recovered

    def test_recovers_after_blackout(self):
        # Steady 1 pkt / 100 ms, dark over [2, 3), resumes immediately.
        times = ([i * 0.1 for i in range(20)]
                 + [3.0 + i * 0.1 for i in range(20)])
        stats = recovery_stats(_deliveries(times), 2.0, 3.0, deadline=2.0)
        assert stats.recovered
        assert stats.recovery_time == pytest.approx(0.0, abs=0.3)
        assert stats.pre_throughput_bps > 0

    def test_never_recovers(self):
        times = [i * 0.1 for i in range(20)]        # silence after t=2
        stats = recovery_stats(_deliveries(times), 2.0, 3.0, deadline=2.0)
        assert not stats.recovered and stats.recovery_time is None
        assert stats.post_packets == 0

    def test_idle_flow_recovers_on_first_post_delivery(self):
        stats = recovery_stats(_deliveries([4.0]), 2.0, 3.0, deadline=2.0)
        assert stats.pre_throughput_bps == 0.0
        assert stats.recovered and stats.recovery_time == pytest.approx(1.0)

    def test_validation_and_round_trip(self):
        with pytest.raises(ValueError):
            recovery_stats([], 1.0, 2.0, window=0.0)
        with pytest.raises(ValueError):
            recovery_stats([], 1.0, 2.0, fraction=0.0)
        stats = recovery_stats(_deliveries([0.5, 3.5]), 2.0, 3.0)
        from repro.metrics import RecoveryStats
        assert RecoveryStats.from_dict(stats.to_dict()) == stats


# ----------------------------------------------------------------------
# Simulator backend end-to-end
# ----------------------------------------------------------------------

@pytest.mark.chaos
class TestFaultedContention:
    def _run(self, schedule, protocol="verus", duration=10.0, seed=3):
        from repro.cellular import generate_scenario_trace
        trace = generate_scenario_trace("campus_stationary",
                                        duration=duration, seed=seed)
        return run_faulted_contention(trace, [FlowSpec(protocol)], schedule,
                                      duration=duration, warmup=1.0,
                                      seed=seed)

    def test_empty_schedule_is_healthy(self):
        result = self._run(FaultSchedule())
        assert not result.degraded
        assert result.fault_stats["down"]["blackout_drops"] == 0
        assert result.fault_stats["down"]["forwarded"] > 0
        assert result.stats(0).throughput_bps > 0

    def test_blackout_recovery_and_accounting(self):
        sched = make_schedule("blackout", 10.0)
        result = self._run(sched)
        down = result.fault_stats["down"]
        assert down["blackout_drops"] > 0
        assert not result.degraded
        dark_until = sched.last_outage_end("down")
        deliveries = result.receivers[0].deliveries
        assert any(t >= dark_until for t, *_ in deliveries)
        stats = recovery_stats(deliveries, *disruption_window(sched),
                               deadline=3.0)
        assert stats.recovered

    def test_permanent_uplink_outage_flags_degraded(self):
        # The link goes dark almost to the end; with RTO backoff in the
        # minutes by then, nothing is delivered in the last 50 ms.
        sched = FaultSchedule([FaultEvent.outage(1.5, 8.45, "both")])
        result = self._run(sched)
        assert result.degraded
        assert "blackout" in result.degraded_reason
        assert result.summary()["degraded"]


# ----------------------------------------------------------------------
# Chaos matrix
# ----------------------------------------------------------------------

@pytest.mark.chaos
class TestChaosMatrix:
    def test_task_validation_and_round_trip(self):
        task = ChaosTask("verus", "blackout", 10.0, 42)
        assert ChaosTask.from_dict(task.to_dict()) == task
        assert len(task.schedule()) == 1
        with pytest.raises(ValueError):
            ChaosTask("smtp", "blackout", 10.0, 0)
        with pytest.raises(ValueError):
            ChaosTask("verus", "earthquake", 10.0, 0)
        with pytest.raises(ValueError):
            ChaosTask("verus", "blackout", 10.0, 0, backend="cloud")

    def test_key_is_content_addressed(self):
        a = ChaosTask("verus", "blackout", 10.0, 42)
        b = ChaosTask("verus", "blackout", 10.0, 43)
        assert a.key() == ChaosTask.from_dict(a.to_dict()).key()
        assert a.key() != b.key()

    def test_expand_grid(self):
        tasks = expand_chaos(["verus", "cubic"], ["blackout", "none"],
                             seeds=2, duration=10.0)
        assert len(tasks) == 8
        assert len({t.seed for t in tasks}) == 8    # independent streams
        assert {t.warmup for t in tasks} == {1.0}
        with pytest.raises(ValueError):
            expand_chaos([], ["blackout"])
        with pytest.raises(ValueError):
            expand_chaos(["verus"], ["blackout"], seeds=0)

    def test_single_cell_verdict_payload(self):
        task = ChaosTask("verus", "blackout", 10.0, 5)
        out = run_chaos_task(task.to_dict())
        assert out["recovered"] and not out["degraded"]
        assert out["task"] == task.to_dict()
        assert out["fault_stats"]["down"]["blackout_drops"] > 0
        assert out["recovery"][0]["recovery_time"] is not None
        assert out["senders"][0]["retransmissions"] >= 0

    def test_matrix_runs_and_caches(self, tmp_path):
        tasks = expand_chaos(["verus"], ["blackout", "none"], duration=8.0)
        first = run_chaos_matrix(tasks, cache_dir=str(tmp_path))
        assert first.all_ok and first.all_recovered
        assert first.stats.executed == 2
        rows = first.rows()
        assert {r["fault"] for r in rows} == {"blackout", "none"}
        assert all(r["recovered"] == r["cells"] for r in rows)
        # Second pass is served from the content-addressed store.
        again = run_chaos_matrix(tasks, cache_dir=str(tmp_path))
        assert again.stats.cached == 2 and again.stats.executed == 0
        assert again.all_recovered


# ----------------------------------------------------------------------
# Live backend acceptance: same schedule, real datagrams
# ----------------------------------------------------------------------

@pytest.mark.chaos
@pytest.mark.udp
@needs_udp
class TestLiveChaosAcceptance:
    def test_schedule_runs_live_with_full_accounting(self):
        from repro.cellular import generate_scenario_trace
        from repro.live import run_live_session

        # One schedule, both backends: outage + corruption + reordering.
        sched = FaultSchedule([
            FaultEvent.corruption(0.6, 0.8, 0.4),
            FaultEvent.outage(1.6, 0.4, "both"),
            FaultEvent.reorder_storm(2.2, 0.6, 0.01),
        ])
        trace = generate_scenario_trace("campus_stationary",
                                        duration=4.0, seed=11)
        sim_result = run_faulted_contention(trace, [FlowSpec("verus")],
                                            sched, duration=4.0,
                                            warmup=0.5, seed=11)
        assert sim_result.fault_stats["down"]["blackout_drops"] > 0

        live = run_live_session([FlowSpec("verus")], trace=trace,
                                duration=4.0, warmup=0.5, seed=11,
                                fault_schedule=sched)
        # Clean termination within the requested duration.
        assert live.duration <= 4.0 + 1e-6
        emulator = live.live_counters["emulator"]
        receiver = live.live_counters["receiver_host"]
        # Zero silent drops: every datagram the schedule damaged was
        # rejected by the hardened wire format and counted.
        assert emulator["mangled"] > 0
        assert receiver["wire_errors"] == emulator["mangled"]
        assert (receiver["truncated"] + receiver["corrupted"]
                <= receiver["wire_errors"])
        assert live.fault_stats["down"]["truncated"] > 0
        # The blackout healed: deliveries exist after the dark window.
        assert any(t >= 2.0 for t, *_ in live.receivers[0].deliveries)
        assert not live.degraded
