"""Every example script must run end-to-end without errors."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run([sys.executable, str(script)],
                            capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_at_least_three_domain_examples():
    assert len(EXAMPLES) >= 4
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
