"""Conformance subsystem tests: monitors, golden oracle, mutation smoke.

Covers the three oracle layers of ``repro check`` — each monitor's
violation path on synthetic inputs, the clean-on-main property of the
audited scenarios, golden-trace determinism (run-to-run and serial vs
pooled), drift detection, and the requirement that every seeded mutant is
caught by at least one oracle.
"""

import json
from pathlib import Path

import pytest

from repro.check import (
    CHECK_PROTOCOLS,
    CheckScenario,
    InvariantReport,
    MonotoneClockMonitor,
    QueueAccountingMonitor,
    TcpLawMonitor,
    VerusLawMonitor,
    audit_conservation,
    build_scenario,
    compare_golden,
    golden_path,
    load_golden,
    render_golden,
    run_audited,
    run_check_task,
    run_conformance,
    run_mutation_smoke,
    write_golden,
)
from repro.check.mutation import MUTANTS
from repro.check.runner import run_tasks
from repro.cli import main
from repro.core import VerusConfig, VerusSender
from repro.netsim import DropTailQueue, Simulator
from repro.netsim.packet import Packet
from repro.tcp import CubicSender

GOLDEN_DIR = Path(__file__).parent / "golden"


# ---------------------------------------------------------------------------
# Invariant report
# ---------------------------------------------------------------------------
class TestInvariantReport:
    def test_clean_report(self):
        report = InvariantReport()
        report.count("x", 3)
        assert report.ok
        assert report.total_checks() == 3
        assert "ok" in report.summary()

    def test_violations_and_summary(self):
        report = InvariantReport()
        report.violate("cons", 1.5, "lost a packet")
        assert not report.ok
        assert report.monitors_violated() == ["cons"]
        assert "lost a packet" in report.summary()

    def test_violation_cap(self):
        report = InvariantReport(max_violations=2)
        for i in range(5):
            report.violate("m", float(i), "boom")
        assert len(report.violations) == 2
        assert report.truncated == 3
        assert not report.ok

    def test_round_trip(self):
        report = InvariantReport()
        report.count("a")
        report.violate("a", 0.1, "msg", flow_id=2)
        clone = InvariantReport.from_dict(report.to_dict())
        assert clone.checks == report.checks
        assert clone.violations[0].flow_id == 2
        assert clone.ok == report.ok


# ---------------------------------------------------------------------------
# Monitors on synthetic inputs
# ---------------------------------------------------------------------------
class TestMonotoneClockMonitor:
    def test_accepts_monotone(self):
        report = InvariantReport()
        monitor = MonotoneClockMonitor(report)
        for t in (0.0, 0.5, 0.5, 1.0):
            monitor(t)
        assert report.ok
        assert report.checks["monotone-clock"] == 4

    def test_flags_regression(self):
        report = InvariantReport()
        monitor = MonotoneClockMonitor(report)
        monitor(1.0)
        monitor(0.5)
        assert not report.ok
        assert report.violations[0].monitor == "monotone-clock"

    def test_attaches_to_simulator(self):
        sim = Simulator()
        report = InvariantReport()
        monitor = MonotoneClockMonitor(report)
        sim.add_monitor(monitor)
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert report.checks["monotone-clock"] == 2
        assert report.ok
        sim.remove_monitor(monitor)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert report.checks["monotone-clock"] == 2  # detached


class TestVerusLawMonitor:
    def _sender(self):
        sender = VerusSender(0, VerusConfig())
        return sender

    def test_loss_decrease_ok(self):
        report = InvariantReport()
        monitor = VerusLawMonitor(report)
        monitor.on_loss(self._sender(), time=1.0, w_loss=40.0, w_after=20.0,
                        kind="gap")
        assert report.ok

    def test_loss_decrease_violated(self):
        report = InvariantReport()
        monitor = VerusLawMonitor(report)
        monitor.on_loss(self._sender(), time=1.0, w_loss=40.0, w_after=40.0,
                        kind="gap")
        assert "loss-decrease" in report.monitors_violated()

    def test_small_window_floor_is_tolerated(self):
        # eq. 6 floors at min_window: a loss at W=1 legitimately keeps W=1.
        report = InvariantReport()
        monitor = VerusLawMonitor(report)
        monitor.on_loss(self._sender(), time=1.0, w_loss=1.0, w_after=1.0,
                        kind="rto")
        assert report.ok

    def test_setpoint_below_floor_violated(self):
        report = InvariantReport()
        monitor = VerusLawMonitor(report)
        monitor.on_setpoint(self._sender(), time=1.0, d_est=0.010,
                            d_min=0.020, d_max=0.030, window=5.0)
        assert "dest-bounds" in report.monitors_violated()

    def test_setpoint_nan_violated(self):
        report = InvariantReport()
        monitor = VerusLawMonitor(report)
        monitor.on_setpoint(self._sender(), time=1.0, d_est=float("nan"),
                            d_min=0.020, d_max=0.030, window=5.0)
        assert not report.ok

    def test_epoch_window_bounds(self):
        report = InvariantReport()
        monitor = VerusLawMonitor(report)
        monitor.on_epoch(self._sender(), time=1.0, window=-3.0, d_est=0.02,
                         mode="normal", inflight=4, pending_rtx=0)
        assert "window-bounds" in report.monitors_violated()

    def test_epoch_rtx_accounting(self):
        report = InvariantReport()
        monitor = VerusLawMonitor(report)
        monitor.on_epoch(self._sender(), time=1.0, window=5.0, d_est=0.02,
                         mode="normal", inflight=2, pending_rtx=3)
        assert "inflight-accounting" in report.monitors_violated()


class TestTcpLawMonitor:
    def test_decrease_ok(self):
        report = InvariantReport()
        monitor = TcpLawMonitor(report)
        sender = CubicSender(0)
        monitor.on_loss(sender, time=1.0, w_loss=30.0, w_after=21.0,
                        kind="fast_retransmit")
        monitor.on_loss(sender, time=2.0, w_loss=3.0, w_after=2.0, kind="rto")
        assert report.ok

    def test_no_decrease_violated(self):
        report = InvariantReport()
        monitor = TcpLawMonitor(report)
        monitor.on_loss(CubicSender(0), time=1.0, w_loss=30.0, w_after=30.0,
                        kind="fast_retransmit")
        assert "loss-decrease" in report.monitors_violated()

    def test_window_positive(self):
        report = InvariantReport()
        monitor = TcpLawMonitor(report)
        monitor.on_window(CubicSender(0), time=1.0, window=0.0,
                          ssthresh=10.0, flight=0)
        assert not report.ok

    def test_ssthresh_floor(self):
        report = InvariantReport()
        monitor = TcpLawMonitor(report)
        monitor.on_window(CubicSender(0), time=1.0, window=4.0,
                          ssthresh=1.0, flight=2)
        assert "window-bounds" in report.monitors_violated()


class TestQueueAccountingMonitor:
    def test_consistent_queue_passes(self):
        queue = DropTailQueue()
        queue.push(Packet(flow_id=0, seq=0, size=100, sent_time=0.0), 0.0)
        report = InvariantReport()
        QueueAccountingMonitor(report, queue).audit(0.0)
        assert report.ok

    def test_corrupted_gauge_flagged(self):
        queue = DropTailQueue()
        queue.push(Packet(flow_id=0, seq=0, size=100, sent_time=0.0), 0.0)
        queue._bytes += 50   # simulate an accounting bug
        report = InvariantReport()
        QueueAccountingMonitor(report, queue).audit(0.0)
        assert "queue-accounting" in report.monitors_violated()


class TestConservationAudit:
    BALANCED = {"sent_data": 100, "received_data": 90, "acks_out": 90,
                "acks_in": 90, "link_delivered": 90, "queue_dropped": 7,
                "stochastic_losses": 3, "queue_len": 0}

    def test_balanced_ledger(self):
        report = InvariantReport()
        audit_conservation(report, dict(self.BALANCED), time=10.0)
        assert report.ok

    def test_leak_flagged(self):
        counts = dict(self.BALANCED)
        counts["link_delivered"] = 89
        counts["received_data"] = 89
        report = InvariantReport()
        audit_conservation(report, counts, time=10.0)
        assert "conservation" in report.monitors_violated()

    def test_ack_loss_flagged(self):
        counts = dict(self.BALANCED)
        counts["acks_in"] = 80
        report = InvariantReport()
        audit_conservation(report, counts, time=10.0)
        assert not report.ok


# ---------------------------------------------------------------------------
# Observer / monitor seams on live protocol objects
# ---------------------------------------------------------------------------
class _Recorder:
    """Duck-typed observer that records every event it understands."""

    def __init__(self):
        self.events = []

    def on_epoch(self, sender, **fields):
        self.events.append(("on_epoch", fields))

    def on_setpoint(self, sender, **fields):
        self.events.append(("on_setpoint", fields))

    def on_loss(self, sender, **fields):
        self.events.append(("on_loss", fields))

    def on_window(self, sender, **fields):
        self.events.append(("on_window", fields))


class TestObserverSeam:
    def test_verus_emits_epoch_and_setpoint_events(self):
        run = run_audited(build_scenario("verus", duration=2.0, drain=1.0))
        # The attached law monitor counted control-law events, proving the
        # sender dispatched them through the observer seam.
        assert run.report.checks.get("dest-bounds", 0) > 0
        assert run.report.checks.get("window-bounds", 0) > 0

    def test_notify_dispatches_only_implemented_handlers(self):
        sender = VerusSender(0)
        recorder = _Recorder()
        sender.observers.append(recorder)
        sender.notify("on_loss", time=1.0, w_loss=4.0, w_after=2.0,
                      kind="gap")
        sender.notify("on_unknown_event", time=1.0)
        assert recorder.events == [
            ("on_loss", {"time": 1.0, "w_loss": 4.0, "w_after": 2.0,
                         "kind": "gap"})]

    def test_tcp_emits_window_events(self):
        scenario = build_scenario("cubic", duration=2.0, drain=1.0)
        run = run_audited(scenario)
        assert run.report.checks.get("window-bounds", 0) > 0
        assert run.report.checks.get("loss-decrease", 0) > 0


# ---------------------------------------------------------------------------
# Audited scenarios: clean on main
# ---------------------------------------------------------------------------
class TestAuditedScenarios:
    @pytest.mark.parametrize("protocol", CHECK_PROTOCOLS)
    def test_clean_and_exercised(self, protocol):
        run = run_audited(build_scenario(protocol))
        assert run.report.ok, run.report.summary()
        # The scenario must exercise the oracles, not merely pass them.
        assert run.report.checks.get("monotone-clock", 0) > 1000
        assert run.report.checks.get("queue-accounting", 0) > 10
        assert run.report.checks.get("loss-decrease", 0) > 0
        assert run.counts["sent_data"] > 100
        assert (run.counts["queue_dropped"]
                + run.counts["stochastic_losses"]) > 0
        assert run.counts["queue_len"] == 0
        assert len(run.rows) == 80

    def test_scenario_key_ignores_version(self):
        a = build_scenario("verus")
        b = CheckScenario.from_dict(a.to_dict())
        assert a.key() == b.key()
        c = build_scenario("verus", seed=8)
        assert c.key() != a.key()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_scenario("sprout")


# ---------------------------------------------------------------------------
# Golden oracle
# ---------------------------------------------------------------------------
class TestGoldenOracle:
    def test_blessed_traces_exist_and_match_main(self):
        """The committed goldens must match a fresh run bit-for-bit."""
        for protocol in CHECK_PROTOCOLS:
            scenario = build_scenario(protocol)
            run = run_audited(scenario)
            disk = golden_path(GOLDEN_DIR, protocol)
            assert disk.exists(), f"missing golden for {protocol}"
            assert render_golden(scenario, run.rows) == disk.read_text()
            assert compare_golden(load_golden(disk), scenario, run.rows) == []

    def test_bit_identical_across_consecutive_runs(self):
        scenario = build_scenario("verus", duration=2.0, drain=1.0)
        first = render_golden(scenario, run_audited(scenario).rows)
        second = render_golden(scenario, run_audited(scenario).rows)
        assert first == second

    def test_bit_identical_serial_vs_pooled(self):
        """--jobs 1 and --jobs N must produce the same golden rows."""
        payloads = [build_scenario(p, duration=2.0, drain=1.0).to_dict()
                    for p in ("verus", "cubic")]
        serial = run_tasks(payloads, run_check_task, jobs=1)
        pooled = run_tasks(payloads, run_check_task, jobs=2)
        assert serial.all_ok and pooled.all_ok
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert a.result["rows"] == b.result["rows"]
            assert a.result["counts"] == b.result["counts"]

    def test_drift_detected(self, tmp_path):
        scenario = build_scenario("verus", duration=2.0, drain=1.0)
        run = run_audited(scenario)
        path = write_golden(tmp_path / "verus.json", scenario, run.rows)
        rows = [list(r) for r in run.rows]
        rows[10][1] *= 2.0   # window drifted far outside the band
        drift = compare_golden(load_golden(path), scenario, rows)
        assert drift and "window" in drift[0]

    def test_within_band_passes(self, tmp_path):
        scenario = build_scenario("verus", duration=2.0, drain=1.0)
        run = run_audited(scenario)
        path = write_golden(tmp_path / "verus.json", scenario, run.rows)
        rows = [[r[0], r[1] * 1.01, r[2], r[3]] for r in run.rows]
        assert compare_golden(load_golden(path), scenario, rows) == []

    def test_scenario_change_reported_as_rebless(self, tmp_path):
        scenario = build_scenario("verus", duration=2.0, drain=1.0)
        run = run_audited(scenario)
        path = write_golden(tmp_path / "verus.json", scenario, run.rows)
        changed = build_scenario("verus", duration=2.0, drain=1.0, seed=99)
        drift = compare_golden(load_golden(path), changed, run.rows)
        assert drift and "re-bless" in drift[0]

    def test_missing_golden_reported(self, tmp_path):
        scenario = build_scenario("verus")
        drift = compare_golden(None, scenario, [])
        assert drift and "--bless" in drift[0]

    def test_golden_file_is_canonical_json(self):
        for protocol in CHECK_PROTOCOLS:
            text = golden_path(GOLDEN_DIR, protocol).read_text()
            payload = json.loads(text)
            canonical = json.dumps(payload, sort_keys=True,
                                   separators=(",", ":")) + "\n"
            assert text == canonical


# ---------------------------------------------------------------------------
# Mutation smoke: every seeded defect must be caught
# ---------------------------------------------------------------------------
class TestMutationSmoke:
    def test_every_mutant_caught(self):
        results = run_mutation_smoke(golden_dir=GOLDEN_DIR)
        assert len(results) == len(MUTANTS)
        for result in results:
            assert result.caught, (
                f"mutant {result.name} evaded every oracle")

    def test_patches_are_restored(self):
        from repro.core.loss_handler import LossHandler
        before = LossHandler.on_loss
        run_mutation_smoke(mutants=[MUTANTS[0]], golden_dir=GOLDEN_DIR)
        assert LossHandler.on_loss is before

    def test_clean_code_not_flagged(self):
        """Sanity: without a mutant, the same pipeline reports clean."""
        scenario = build_scenario("verus")
        run = run_audited(scenario)
        assert run.report.ok
        blessed = load_golden(golden_path(GOLDEN_DIR, "verus"))
        assert compare_golden(blessed, scenario, run.rows) == []


# ---------------------------------------------------------------------------
# Runner + CLI
# ---------------------------------------------------------------------------
class TestConformanceRunner:
    def test_run_conformance_clean(self):
        result = run_conformance(protocols=["verus"], golden_dir=GOLDEN_DIR,
                                 with_differential=False,
                                 with_mutation=False)
        assert result.ok
        assert result.rows[0].status == "ok"
        assert result.rows[0].golden_status == "ok"

    def test_bless_writes_files(self, tmp_path):
        result = run_conformance(protocols=["cubic"], golden_dir=tmp_path,
                                 bless=True, with_differential=False,
                                 with_mutation=False)
        assert result.ok
        assert (tmp_path / "cubic.json").exists()
        # A subsequent diff run against the fresh bless passes.
        again = run_conformance(protocols=["cubic"], golden_dir=tmp_path,
                                with_differential=False, with_mutation=False)
        assert again.ok

    def test_missing_golden_fails(self, tmp_path):
        result = run_conformance(protocols=["vegas"], golden_dir=tmp_path,
                                 with_differential=False,
                                 with_mutation=False)
        assert not result.ok
        assert result.rows[0].golden_status == "drift"

    def test_cli_check_passes_on_main(self, capsys):
        code = main(["check", "--no-live", "--no-mutation"])
        out = capsys.readouterr().out
        assert code == 0
        assert "conformance: OK" in out

    def test_cli_check_bless(self, tmp_path, capsys):
        code = main(["check", "--no-live", "--no-mutation", "--bless",
                     "--golden-dir", str(tmp_path), "--protocol", "verus"])
        assert code == 0
        assert (tmp_path / "verus.json").exists()
        assert "blessed" in capsys.readouterr().out
