"""Tests for the Sprout baseline (belief, forecaster, endpoints)."""

import numpy as np
import pytest

from repro.metrics import flow_stats
from repro.netsim import DirectPath, DropTailQueue, Link, Simulator, TraceLink
from repro.sprout import (
    RateBelief,
    SproutForecaster,
    SproutReceiver,
    SproutSender,
    TICK_SECONDS,
)


class TestRateBelief:
    def test_starts_uniform(self):
        belief = RateBelief(bins=64)
        assert np.allclose(belief.prob, 1.0 / 64)

    def test_observation_concentrates_near_count(self):
        belief = RateBelief()
        for _ in range(50):
            belief.evolve()
            belief.observe(20)
        assert belief.mean() == pytest.approx(20.0, rel=0.25)

    def test_zero_observations_collapse_to_low_rate(self):
        belief = RateBelief()
        for _ in range(50):
            belief.evolve()
            belief.observe(0)
        assert belief.mean() < 1.0

    def test_censored_observation_only_raises_belief(self):
        belief = RateBelief()
        for _ in range(30):
            belief.evolve()
            belief.observe(10)
        mean_before = belief.mean()
        belief.observe(3, censored=True)   # "at least 3": no news downward
        assert belief.mean() >= mean_before * 0.8

    def test_censored_zero_is_noop(self):
        belief = RateBelief()
        prob_before = belief.prob.copy()
        belief.observe(0, censored=True)
        assert np.allclose(belief.prob, prob_before)

    def test_evolution_widens_distribution(self):
        belief = RateBelief()
        for _ in range(20):
            belief.evolve()
            belief.observe(10)
        q_lo_before = belief.quantile(0.05)
        for _ in range(20):
            belief.evolve()                # no observations
        assert belief.quantile(0.05) <= q_lo_before

    def test_quantiles_ordered(self):
        belief = RateBelief()
        belief.observe(15)
        assert (belief.quantile(0.05) <= belief.quantile(0.5)
                <= belief.quantile(0.95))

    def test_probabilities_normalised(self):
        belief = RateBelief()
        for k in (5, 0, 50, 2):
            belief.evolve()
            belief.observe(k)
            assert belief.prob.sum() == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateBelief(min_rate=0.0)
        with pytest.raises(ValueError):
            RateBelief(bins=2)
        with pytest.raises(ValueError):
            RateBelief().observe(-1)
        with pytest.raises(ValueError):
            RateBelief().quantile(0.0)


class TestForecaster:
    def test_budget_grows_with_observed_rate(self):
        slow = SproutForecaster(rate_cap_bps=None)
        fast = SproutForecaster(rate_cap_bps=None)
        for _ in range(40):
            slow.on_tick(2)
            fast.on_tick(40)
        assert fast.cautious_budget() > slow.cautious_budget()

    def test_rate_cap_limits_budget(self):
        """The paper's §7: the Sprout implementation caps at 18 Mbps."""
        capped = SproutForecaster(rate_cap_bps=18e6)
        free = SproutForecaster(rate_cap_bps=None)
        for _ in range(60):
            capped.on_tick(200)   # 200 pkts / 20 ms = 112 Mbps offered
            free.on_tick(200)
        cap_packets = 18e6 * TICK_SECONDS / (8 * 1400) * 5  # 5-tick horizon
        assert capped.cautious_budget() <= cap_packets * 1.01
        assert free.cautious_budget() > capped.cautious_budget()

    def test_budget_is_cautious_below_mean(self):
        forecaster = SproutForecaster(rate_cap_bps=None)
        for _ in range(60):
            forecaster.on_tick(30)
        horizon = forecaster.target_delay / forecaster.tick
        mean_budget = forecaster.belief.mean() * horizon
        assert forecaster.cautious_budget() < mean_budget

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SproutForecaster(tick=0.0)


class TestForecastEdgeCases:
    """Degenerate inputs: empty history, all-zero ticks, belief resets."""

    def test_budget_with_empty_history_is_finite_and_positive(self):
        forecaster = SproutForecaster(rate_cap_bps=None)
        budget = forecaster.cautious_budget()
        assert forecaster.ticks_processed == 0
        assert np.isfinite(budget) and budget > 0

    def test_all_zero_ticks_collapse_budget_to_the_rate_floor(self):
        forecaster = SproutForecaster(rate_cap_bps=None)
        for _ in range(60):
            budget = forecaster.on_tick(0)
            assert np.isfinite(budget) and budget >= 0
        horizon = round(forecaster.target_delay / forecaster.tick)
        floor = forecaster.belief.rates[0]
        # Belief pinned at the bottom of the grid: the whole horizon's
        # budget is within a few bins of min_rate per tick.
        assert forecaster.cautious_budget() < 2.0 * floor * horizon
        assert forecaster.belief.quantile(0.05) < 2.0 * floor

    def test_zero_rate_cap_zeroes_the_budget(self):
        forecaster = SproutForecaster(rate_cap_bps=0.0)
        for _ in range(10):
            forecaster.on_tick(20)
        assert forecaster.cautious_budget() == 0.0

    def test_censored_zero_tick_still_advances_the_clock(self):
        forecaster = SproutForecaster(rate_cap_bps=None)
        before = forecaster.ticks_processed
        budget = forecaster.on_tick(0, censored=True)
        assert forecaster.ticks_processed == before + 1
        assert np.isfinite(budget)

    def test_observation_outside_support_resets_belief_flat(self):
        belief = RateBelief()
        for _ in range(50):
            belief.evolve()
            belief.observe(0)
        # "At least 5000" has ~zero likelihood everywhere on the grid;
        # rather than dividing by zero, the belief restarts uniform.
        belief.observe(5000, censored=True)
        assert np.allclose(belief.prob, 1.0 / belief.prob.size)
        assert belief.prob.sum() == pytest.approx(1.0)

    def test_horizon_never_below_one_tick(self):
        forecaster = SproutForecaster(tick=0.4, target_delay=0.1,
                                      rate_cap_bps=None)
        forecaster.on_tick(10)
        single = forecaster.cautious_budget()
        assert np.isfinite(single) and single > 0
        # One-tick horizon: budget bounded by the largest rate on the grid.
        assert single <= forecaster.belief.rates[-1]


def run_sprout(rate_bps=10e6, rtt=0.05, duration=30.0):
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps, queue=DropTailQueue())
    sender, receiver = SproutSender(0), SproutReceiver(0)
    path = DirectPath(sim, link, sender, receiver, rtt=rtt)
    path.run(duration)
    return sender, receiver


class TestEndToEnd:
    def test_reasonable_utilization_on_fixed_link(self):
        _, receiver = run_sprout()
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.7 * 10e6

    def test_low_delay_signature(self):
        """Sprout's defining property: delay near the propagation floor."""
        _, receiver = run_sprout()
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.mean_delay < 0.06   # floor is 25 ms one-way

    def test_lower_delay_than_verus(self):
        from repro.core import VerusConfig, VerusReceiver, VerusSender
        _, sprout_rcv = run_sprout()
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
        verus_snd = VerusSender(0, VerusConfig())
        verus_rcv = VerusReceiver(0)
        DirectPath(sim, link, verus_snd, verus_rcv, rtt=0.05).run(30.0)
        sprout = flow_stats(sprout_rcv.deliveries, start=10.0, end=30.0)
        verus = flow_stats(verus_rcv.deliveries, start=10.0, end=30.0)
        assert sprout.mean_delay < verus.mean_delay

    def test_cap_hurts_on_fast_link(self):
        """Fig 11a's mechanism: on a 100 Mbps link the 18 Mbps cap binds."""
        sim = Simulator()
        link = Link(sim, rate_bps=100e6, queue=DropTailQueue())
        sender = SproutSender(0)
        receiver = SproutReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.02)
        path.run(30.0)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps < 25e6

    def test_adapts_to_rate_drop(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
        sender, receiver = SproutSender(0), SproutReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.05)
        sim.schedule_at(15.0, lambda: setattr(link, "rate_bps", 1e6))
        path.run(30.0)
        tail = flow_stats(receiver.deliveries, start=20.0, end=30.0)
        assert tail.throughput_bps < 1.5e6
        assert tail.mean_delay < 0.5

    def test_works_on_cellular_trace(self):
        from repro.cellular import generate_scenario_trace
        trace = generate_scenario_trace("campus_stationary", duration=30.0,
                                        technology="3g", seed=5)
        sim = Simulator()
        link = TraceLink(sim, trace, delay=0.01)
        sender, receiver = SproutSender(0), SproutReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.02)
        path.run(30.0)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.3 * link.average_rate_bps()
        assert stats.mean_delay < 0.3


class TestBeliefProperties:
    """Property tests on the Bayesian rate belief."""

    def test_probabilities_stay_normalised_under_random_ops(self):
        import numpy as np
        from hypothesis import given, settings
        rng = np.random.default_rng(0)
        belief = RateBelief()
        for _ in range(300):
            belief.evolve()
            belief.observe(int(rng.integers(0, 60)),
                           censored=bool(rng.random() < 0.5))
            assert abs(belief.prob.sum() - 1.0) < 1e-9
            assert np.all(belief.prob >= 0)

    def test_mean_between_min_and_max_rate(self):
        belief = RateBelief(min_rate=0.1, max_rate=100.0)
        for k in (0, 5, 200, 1):
            belief.evolve()
            belief.observe(k)
            assert 0.1 <= belief.mean() <= 100.0

    def test_censored_never_lowers_quantile_much(self):
        """A censored (lower-bound) observation must not pull the belief
        down: the 50th percentile may only move up or stay."""
        belief = RateBelief()
        for _ in range(30):
            belief.evolve()
            belief.observe(10)
        median_before = belief.quantile(0.5)
        belief.observe(25, censored=True)
        assert belief.quantile(0.5) >= median_before * 0.99


# ----------------------------------------------------------------------
# Bit-identical equivalence against the pre-vectorization forecaster
# ----------------------------------------------------------------------
class _ReferenceForecaster:
    """The forecaster exactly as written before the batched-horizon
    rewrite: per-step ``np.convolve`` + ``np.cumsum`` + ``searchsorted``,
    no likelihood caches, no horizon buffers.  Kept verbatim so any
    float-level drift in the optimised path fails ``==`` below."""

    def __init__(self, min_rate=0.05, max_rate=300.0, bins=192,
                 evolve_sigma=0.18, tick=TICK_SECONDS, target_delay=0.100,
                 quantile=0.05, rate_cap_bps=None, packet_bytes=1400):
        import math
        self.log_rates = np.linspace(math.log(min_rate),
                                     math.log(max_rate), bins)
        self.rates = np.exp(self.log_rates)
        self.prob = np.full(bins, 1.0 / bins)
        step = self.log_rates[1] - self.log_rates[0]
        half_width = max(1, int(math.ceil(3 * evolve_sigma / step)))
        offsets = np.arange(-half_width, half_width + 1)
        kernel = np.exp(-0.5 * (offsets * step / evolve_sigma) ** 2)
        self._kernel = kernel / kernel.sum()
        self.tick = tick
        self.target_delay = target_delay
        self.quantile = quantile
        self.rate_cap_bps = rate_cap_bps
        self.packet_bytes = packet_bytes

    def evolve(self):
        self.prob = np.convolve(self.prob, self._kernel, mode="same")
        total = self.prob.sum()
        if total <= 0:
            self.prob = np.full_like(self.prob, 1.0 / self.prob.size)
        else:
            self.prob /= total

    def observe(self, packets, censored=False):
        import math
        if censored:
            if packets == 0:
                return
            from scipy.special import gammainc
            likelihood = gammainc(packets, self.rates)
        else:
            log_lik = (packets * self.log_rates - self.rates
                       - math.lgamma(packets + 1))
            log_lik -= log_lik.max()
            likelihood = np.exp(log_lik)
        posterior = self.prob * likelihood
        total = posterior.sum()
        if total <= 0:
            self.prob = np.full_like(self.prob, 1.0 / self.prob.size)
        else:
            self.prob = posterior / total

    def _apply_cap(self, rate):
        if self.rate_cap_bps is None:
            return rate
        cap = self.rate_cap_bps * self.tick / (8.0 * self.packet_bytes)
        return min(rate, cap)

    def on_tick(self, packets, censored=False):
        self.evolve()
        self.observe(packets, censored=censored)
        return self.cautious_budget()

    def cautious_budget(self):
        horizon_ticks = max(1, int(round(self.target_delay / self.tick)))
        budget = 0.0
        look = self.prob.copy()
        kernel = self._kernel
        rates = self.rates
        for _ in range(horizon_ticks):
            look = np.convolve(look, kernel, mode="same")
            s = look.sum()
            if s > 0:
                look /= s
            cdf = np.cumsum(look)
            idx = int(np.searchsorted(cdf, self.quantile))
            rate = float(rates[min(idx, rates.size - 1)])
            budget += self._apply_cap(rate)
        return budget


class TestForecasterEquivalence:
    """The vectorized forecaster must be *bit-identical* to the original
    per-step implementation — its budgets feed the perf-equivalence
    goldens, so == (not allclose) is the contract."""

    @pytest.mark.parametrize("rate_cap_bps", [None, 18e6])
    def test_seeded_stream_budgets_bit_identical(self, rate_cap_bps):
        new = SproutForecaster(rate_cap_bps=rate_cap_bps)
        ref = _ReferenceForecaster(rate_cap_bps=rate_cap_bps)
        # Same grid construction, so same support arrays to the bit.
        assert np.array_equal(new.belief.rates, ref.rates)
        assert np.array_equal(new.belief._kernel, ref._kernel)
        rng = np.random.default_rng(0)
        for _ in range(300):
            packets = int(rng.integers(0, 41))
            censored = bool(rng.random() < 0.3)
            got = new.on_tick(packets, censored=censored)
            want = ref.on_tick(packets, censored=censored)
            assert got == want
            assert np.array_equal(new.belief.prob, ref.prob)

    def test_interleaved_belief_ops_keep_equivalence(self):
        """Extra evolve/observe calls between budgets exercise the
        evolve-memo revision guard: a memo seeded by one budget must not
        be served after the belief has moved on."""
        new = SproutForecaster(rate_cap_bps=18e6)
        ref = _ReferenceForecaster(rate_cap_bps=18e6)
        rng = np.random.default_rng(7)
        for step in range(150):
            packets = int(rng.integers(0, 41))
            assert new.on_tick(packets) == ref.on_tick(packets)
            if step % 3 == 0:
                # Double observation without an intervening evolve.
                new.belief.observe(packets + 1)
                ref.observe(packets + 1)
            if step % 7 == 0:
                new.belief.evolve()
                ref.evolve()
            assert np.array_equal(new.belief.prob, ref.prob)

    def test_flat_reset_path_matches(self):
        """An observation far outside the belief's support zeroes the
        posterior; both implementations must take the same flat-reset
        branch (and the censored tail cache must store the zero row)."""
        new = SproutForecaster()
        ref = _ReferenceForecaster()
        for _ in range(40):
            assert new.on_tick(2) == ref.on_tick(2)
        # P(Poisson(lambda) >= 5000) underflows to 0 across the grid.
        assert new.on_tick(5000, censored=True) == \
            ref.on_tick(5000, censored=True)
        assert np.array_equal(new.belief.prob, ref.prob)
        # Recovery from the reset stays locked as well (cache reuse).
        for _ in range(20):
            assert new.on_tick(2) == ref.on_tick(2)
        assert np.array_equal(new.belief.prob, ref.prob)

    def test_repeated_counts_hit_likelihood_cache(self):
        """Same packet count twice must reuse the cached likelihood row
        and still produce identical posteriors (cached row unmutated)."""
        new = SproutForecaster()
        ref = _ReferenceForecaster()
        for packets in [9, 9, 9, 4, 9, 4, 4]:
            assert new.on_tick(packets) == ref.on_tick(packets)
        assert 9 in new.belief._lik_cache and 4 in new.belief._lik_cache
        for packets in [6, 6, 6]:
            assert new.on_tick(packets, censored=True) == \
                ref.on_tick(packets, censored=True)
        assert 6 in new.belief._tail_cache
        assert np.array_equal(new.belief.prob, ref.prob)
