"""Integration tests for the full Verus sender on simulated paths."""

import numpy as np
import pytest

from repro.core import NORMAL, RECOVERY, SLOW_START, VerusConfig, VerusReceiver, VerusSender
from repro.metrics import flow_stats
from repro.netsim import DirectPath, DropTailQueue, Link, Simulator, TraceLink


def run_verus(rate_bps=10e6, rtt=0.05, duration=20.0, queue_bytes=None,
              loss_rate=0.0, config=None, seed=0):
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps,
                queue=DropTailQueue(capacity_bytes=queue_bytes),
                loss_rate=loss_rate, rng=np.random.default_rng(seed))
    sender = VerusSender(0, config if config is not None else VerusConfig())
    receiver = VerusReceiver(0)
    path = DirectPath(sim, link, sender, receiver, rtt=rtt)
    path.run(duration)
    return sender, receiver


class TestSlowStart:
    def test_starts_in_slow_start(self):
        sender = VerusSender(0)
        assert sender.mode == SLOW_START

    def test_exits_slow_start(self):
        sender, _ = run_verus(duration=10.0)
        assert sender.mode != SLOW_START
        assert sender.slow_start_exits in ("loss", "delay")

    def test_delay_exit_on_deep_buffer(self):
        """Unbounded buffer and no loss: the N × D_min condition fires."""
        sender, _ = run_verus(queue_bytes=None, duration=10.0)
        assert sender.slow_start_exits == "delay"
        assert sender.losses_detected == 0

    def test_loss_exit_on_shallow_buffer(self):
        """A 30 KB buffer at 10 Mbps overflows long before 15 × D_min."""
        sender, _ = run_verus(queue_bytes=30_000, duration=10.0)
        assert sender.slow_start_exits == "loss"

    def test_profile_built_at_exit(self):
        sender, _ = run_verus(duration=10.0)
        assert sender.profiler.ready
        assert len(sender.profiler) >= 2


class TestSteadyState:
    def test_high_utilization_on_fixed_link(self):
        sender, receiver = run_verus(duration=30.0)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.85 * 10e6

    def test_delay_settles_near_r_times_dmin(self):
        """R = 2 should hold steady-state RTT around 2 × propagation."""
        config = VerusConfig(r=2.0)
        sender, receiver = run_verus(duration=30.0, config=config)
        stats = flow_stats(receiver.deliveries, start=15.0, end=30.0)
        # one-way delay = prop/2 + queueing; with R=2 total RTT ≈ 100 ms,
        # so one-way stays well under 100 ms but above the 25 ms floor.
        assert 0.025 < stats.mean_delay < 0.1

    def test_higher_r_gives_higher_delay(self):
        _, rcv_lo = run_verus(duration=30.0, config=VerusConfig(r=2.0))
        _, rcv_hi = run_verus(duration=30.0, config=VerusConfig(r=6.0))
        lo = flow_stats(rcv_lo.deliveries, start=15.0, end=30.0)
        hi = flow_stats(rcv_hi.deliveries, start=15.0, end=30.0)
        assert hi.mean_delay > lo.mean_delay

    def test_no_losses_on_unbounded_buffer(self):
        sender, _ = run_verus(duration=30.0)
        assert sender.losses_detected == 0
        assert sender.timeouts == 0

    def test_epoch_diagnostics_recorded_when_enabled(self):
        config = VerusConfig(record_diagnostics=True)
        sender, _ = run_verus(duration=5.0, config=config)
        assert len(sender.diagnostics) > 500      # ~200 epochs/second
        row = sender.diagnostics[-1]
        assert row.mode in (SLOW_START, NORMAL, RECOVERY)
        assert row.window >= 0

    def test_diagnostics_off_by_default(self):
        sender, _ = run_verus(duration=5.0)
        assert sender.diagnostics == []


class TestLossHandling:
    def test_recovers_from_stochastic_loss(self):
        sender, receiver = run_verus(duration=30.0, loss_rate=0.005, seed=3)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert sender.losses_detected > 0
        assert stats.throughput_bps > 0.5 * 10e6

    def test_lost_packets_are_retransmitted_and_delivered(self):
        sender, receiver = run_verus(duration=30.0, loss_rate=0.01, seed=4)
        assert sender.retransmissions > 0
        # Delivered sequence set should have few holes (only abandoned ones).
        seqs = {s for (_, s, _, _) in receiver.deliveries}
        hi = max(seqs)
        missing = hi + 1 - len(seqs)
        assert missing <= sender.abandoned + len(sender._inflight) + 1

    def test_window_collapses_on_loss_episode(self):
        config = VerusConfig(record_diagnostics=True)
        sender, _ = run_verus(duration=20.0, queue_bytes=100_000,
                              config=config)
        windows = [row.window for row in sender.diagnostics]
        assert min(windows) < max(windows) / 2

    def test_survives_total_blackout(self):
        """A mid-run 3-second outage must not deadlock the sender."""
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.05)
        sim.schedule_at(8.0, lambda: setattr(link, "loss_rate", 1.0 - 1e-12))
        sim.schedule_at(11.0, lambda: setattr(link, "loss_rate", 0.0))
        path.run(25.0)
        tail = flow_stats(receiver.deliveries, start=15.0, end=25.0)
        assert tail.throughput_bps > 0.5 * 10e6
        assert sender.timeouts > 0


class TestTraceDriven:
    def test_tracks_bursty_cellular_link(self):
        from repro.cellular import generate_scenario_trace
        trace = generate_scenario_trace("campus_stationary", duration=30.0,
                                        technology="3g", seed=2)
        sim = Simulator()
        link = TraceLink(sim, trace, delay=0.01)
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.02)
        path.run(30.0)
        stats = flow_stats(receiver.deliveries, start=5.0, end=30.0)
        offered = link.average_rate_bps()
        assert stats.throughput_bps > 0.5 * offered
        assert stats.mean_delay < 0.5


class TestLifecycle:
    def test_stop_halts_transmission(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
        sender = VerusSender(0)
        receiver = VerusReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.05)
        sim.schedule_at(5.0, sender.stop)
        path.run(10.0)
        sent_at_stop = sender.packets_sent
        sim.run(until=12.0)
        assert sender.packets_sent == sent_at_stop

    def test_deterministic_given_same_seed(self):
        a = run_verus(duration=10.0, loss_rate=0.01, seed=7)
        b = run_verus(duration=10.0, loss_rate=0.01, seed=7)
        assert a[1].bytes_received == b[1].bytes_received

    def test_unattached_sender_raises(self):
        sender = VerusSender(0)
        with pytest.raises(RuntimeError):
            sender.start()


class TestAckAggregation:
    """ACK-compression support (cellular uplinks batch ACK streams)."""

    def test_validation(self):
        with pytest.raises(ValueError):
            VerusReceiver(0, ack_every=0)
        with pytest.raises(ValueError):
            VerusReceiver(0, ack_delay=0.0)

    def test_aggregated_acks_carry_batches(self):
        sim = Simulator()
        acks = []
        receiver = VerusReceiver(0, ack_every=3)
        receiver.attach(sim, acks.append)
        from repro.netsim import Packet
        for seq in range(3):
            receiver.on_data(Packet(flow_id=0, seq=seq, sent_time=0.0))
        assert len(acks) == 1
        assert acks[0].payload["acked"] == [0, 1, 2]

    def test_partial_batch_flushed_by_timer(self):
        sim = Simulator()
        acks = []
        receiver = VerusReceiver(0, ack_every=4, ack_delay=0.01)
        receiver.attach(sim, acks.append)
        from repro.netsim import Packet
        receiver.on_data(Packet(flow_id=0, seq=0, sent_time=0.0))
        sim.run(until=0.05)
        assert len(acks) == 1
        assert acks[0].payload["acked"] == [0]

    def test_throughput_survives_aggregation(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0, ack_every=2)
        DirectPath(sim, link, sender, receiver, rtt=0.05).run(30.0)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.85 * 10e6
        assert sender.losses_detected == 0

    def test_aggregation_coarsens_delay_control(self):
        """Batched feedback degrades the delay signal: every-4 aggregation
        must cost delay relative to per-packet ACKs (the ablation's
        deployment insight)."""
        def run(every):
            sim = Simulator()
            link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
            sender = VerusSender(0, VerusConfig())
            receiver = VerusReceiver(0, ack_every=every)
            DirectPath(sim, link, sender, receiver, rtt=0.05).run(30.0)
            return flow_stats(receiver.deliveries, start=10.0, end=30.0)
        per_packet = run(1)
        batched = run(4)
        assert batched.mean_delay > per_packet.mean_delay
