"""Tests for the live UDP path: wire format, wall clock, channel stepper,
link emulator and the loopback session driver.

The socket-touching tests are marked so sandboxes without network
namespaces skip them instead of erroring.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.cellular import CellularChannelModel, ChannelParams, trace_rate_bps
from repro.live import (
    WIRE_VERSION,
    LiveSessionError,
    WallClock,
    WireFormatError,
    decode_packet,
    encode_packet,
    header_size,
    run_live_session,
)
from repro.netsim import Packet, PeriodicTimer


def _udp_available() -> bool:
    try:
        s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        s.bind(("127.0.0.1", 0))
        s.close()
        return True
    except OSError:
        return False


# ``udp``-marked tests can be (de)selected as a tier with ``-m udp``;
# the skipif guard additionally auto-skips them where localhost sockets
# don't exist, so an unfiltered run stays green in any sandbox.
needs_udp = pytest.mark.skipif(
    not _udp_available(),
    reason="no localhost UDP sockets available in this sandbox")


class TestWireFormat:
    def test_data_roundtrip_preserves_protocol_fields(self):
        packet = Packet(flow_id=3, seq=4711, size=1400, sent_time=1.25,
                        window_at_send=37.5, retransmission=True)
        out = decode_packet(encode_packet(packet))
        assert out.flow_id == 3 and out.seq == 4711
        assert out.size == 1400
        assert out.sent_time == 1.25
        assert out.window_at_send == 37.5
        assert out.retransmission and not out.is_ack

    def test_ack_roundtrip(self):
        data = Packet(flow_id=1, seq=9, sent_time=0.5, window_at_send=4.0)
        ack = data.make_ack(now=0.75)
        out = decode_packet(encode_packet(ack))
        assert out.is_ack and out.ack_seq == 9
        assert out.echo_sent_time == 0.5
        assert out.window_at_send == 4.0
        assert out.size == ack.size

    def test_payload_roundtrip(self):
        packet = Packet(flow_id=0, seq=1, is_ack=True,
                        payload={"acked": [1, 2, 3]})
        out = decode_packet(encode_packet(packet))
        assert out.payload == {"acked": [1, 2, 3]}

    def test_data_datagram_padded_to_declared_size(self):
        packet = Packet(flow_id=0, seq=0, size=1400)
        assert len(encode_packet(packet)) == 1400

    def test_small_ack_not_padded_below_header(self):
        ack = Packet(flow_id=0, seq=0, size=40, is_ack=True)
        datagram = encode_packet(ack)
        assert len(datagram) == header_size()
        assert decode_packet(datagram).size == 40

    def test_rejects_bad_magic_truncation_and_future_version(self):
        good = encode_packet(Packet(flow_id=0, seq=0))
        with pytest.raises(WireFormatError):
            decode_packet(b"XXXX" + good[4:])
        with pytest.raises(WireFormatError):
            decode_packet(good[:header_size() - 1])
        future = bytearray(good)
        future[4] = WIRE_VERSION + 1
        with pytest.raises(WireFormatError):
            decode_packet(bytes(future))


class TestWallClock:
    def test_schedule_and_cancel(self):
        async def scenario():
            clock = WallClock(asyncio.get_running_loop())
            fired = []
            clock.schedule(0.01, fired.append, "a")
            cancelled = clock.schedule(0.01, fired.append, "b")
            cancelled.cancel()
            assert not cancelled.active
            await asyncio.sleep(0.05)
            return fired

        assert asyncio.run(scenario()) == ["a"]

    def test_now_advances_with_wall_time(self):
        async def scenario():
            clock = WallClock(asyncio.get_running_loop())
            t0 = clock.now
            await asyncio.sleep(0.02)
            return clock.now - t0

        elapsed = asyncio.run(scenario())
        assert 0.01 < elapsed < 1.0

    def test_periodic_timer_runs_on_wall_clock(self):
        """PeriodicTimer — the engine Verus's epoch loop is built on —
        must work unchanged against the wall clock."""
        async def scenario():
            clock = WallClock(asyncio.get_running_loop())
            ticks = []
            timer = PeriodicTimer(clock, 0.01, lambda: ticks.append(clock.now))
            timer.start()
            await asyncio.sleep(0.06)
            timer.stop()
            return ticks

        ticks = asyncio.run(scenario())
        assert len(ticks) >= 2
        assert all(b > a for a, b in zip(ticks, ticks[1:]))


class TestChannelStepper:
    def test_chunks_are_sorted_disjoint_and_in_range(self):
        model = CellularChannelModel(ChannelParams(mean_rate_bps=8e6),
                                     rng=np.random.default_rng(3))
        stepper = model.stepper()
        frontier = 0.0
        for _ in range(20):
            chunk = stepper.advance(0.25)
            assert np.all(np.diff(chunk) >= 0)
            if chunk.size:
                assert chunk[0] >= frontier
                assert chunk[-1] < frontier + 0.25
            frontier += 0.25
            assert stepper.now == pytest.approx(frontier)

    def test_stepper_rate_matches_generate(self):
        params = ChannelParams(mean_rate_bps=8e6, technology="3g")
        gen_rate = trace_rate_bps(
            CellularChannelModel(params, np.random.default_rng(5)).generate(30.0))
        stepper = CellularChannelModel(params,
                                       np.random.default_rng(6)).stepper()
        inc = np.concatenate([stepper.advance(0.5) for _ in range(60)])
        step_rate = trace_rate_bps(inc)
        assert step_rate == pytest.approx(gen_rate, rel=0.35)

    def test_rejects_nonpositive_dt(self):
        stepper = CellularChannelModel(ChannelParams()).stepper()
        with pytest.raises(ValueError):
            stepper.advance(0.0)


@pytest.mark.udp
@needs_udp
class TestLiveLoopback:
    def test_verus_vs_cubic_session_delivers(self):
        """Acceptance: a short two-flow live session over localhost UDP
        completes, moves real bytes and yields sane FlowStats."""
        from repro.experiments.runner import FlowSpec

        duration = 3.0
        rng = np.random.default_rng(11)
        model = CellularChannelModel(
            ChannelParams(mean_rate_bps=6e6, technology="3g"), rng=rng)
        trace = model.generate(duration)
        specs = [FlowSpec("verus", options={"r": 2.0}), FlowSpec("cubic")]
        result = run_live_session(specs, trace=trace, duration=duration,
                                  warmup=0.5, seed=11)

        assert result.emulator_stats.data_in > 50
        assert result.emulator_stats.delivered > 50
        for stats in result.all_stats():
            assert stats.packets_received > 20
            assert stats.bytes_received > 20 * 1400
            # Throughput cannot exceed the offered channel by much, and
            # delays must be real positive round-trip-scale numbers.
            assert 0.01 < stats.throughput_mbps < 12.0
            assert 0.001 < stats.mean_delay < 5.0
            assert stats.p95_delay >= stats.median_delay > 0.0
        # The same objects ran the session: live senders report their own
        # transmission counters, proving no forked protocol logic.
        assert all(s.packets_sent > 0 for s in result.senders)

    def test_live_throughput_consistent_with_simulation(self):
        """Sim-vs-live parity: same trace, same protocol, same seed.

        Documented tolerance: live throughput within a factor of three of
        the simulated run (wall-clock timer jitter and Python scheduling
        overhead make the live path strictly noisier; order-of-magnitude
        agreement is the reproduction claim, see docs/ARCHITECTURE.md).
        """
        from repro.experiments.runner import FlowSpec, run_trace_contention

        duration = 3.0
        trace = CellularChannelModel(
            ChannelParams(mean_rate_bps=6e6, technology="3g"),
            rng=np.random.default_rng(13)).generate(duration)
        specs = [FlowSpec("verus", options={"r": 2.0})]
        live = run_live_session(specs, trace=trace, duration=duration,
                                warmup=0.5, seed=13)
        sim = run_trace_contention(trace, specs, duration=duration,
                                   warmup=0.5, seed=13)
        live_tput = live.stats(0).throughput_mbps
        sim_tput = sim.stats(0).throughput_mbps
        assert sim_tput > 0.1
        assert live_tput > sim_tput / 3.0
        assert live_tput < sim_tput * 3.0

    def test_unavailable_trace_and_stepper_rejected(self):
        from repro.experiments.runner import FlowSpec

        with pytest.raises(ValueError):
            run_live_session([FlowSpec("verus")], duration=1.0)

    def test_stepper_driven_session(self):
        """The emulator can draw the channel live instead of replaying."""
        from repro.experiments.runner import FlowSpec

        model = CellularChannelModel(
            ChannelParams(mean_rate_bps=6e6), rng=np.random.default_rng(17))
        result = run_live_session([FlowSpec("verus", options={"r": 2.0})],
                                  stepper=model.stepper(), duration=2.0,
                                  warmup=0.5, seed=17)
        assert result.stats(0).packets_received > 20

    def test_watchdog_teardown_reports_structured_hang_code(self):
        """A permanent outage silences every ACK; the ACK-inactivity
        watchdog must declare the peer dead, tear the session down early,
        and stamp the structured ``degraded_code`` (``"hang"`` in the
        resilience taxonomy) alongside the human-readable reason."""
        from repro.experiments.runner import FlowSpec
        from repro.faults.spec import FaultEvent, FaultSchedule

        duration = 8.0
        trace = CellularChannelModel(
            ChannelParams(mean_rate_bps=6e6, technology="3g"),
            rng=np.random.default_rng(23)).generate(duration)
        # Outage from 0.5 s to far past the session end: never heals.
        sched = FaultSchedule([FaultEvent.outage(0.5, 60.0, "both")])
        result = run_live_session([FlowSpec("verus", options={"r": 2.0})],
                                  trace=trace, duration=duration,
                                  warmup=0.2, seed=23,
                                  fault_schedule=sched, max_silence=0.2)
        assert result.degraded
        assert result.degraded_code == "hang"
        assert "peer presumed dead" in result.degraded_reason
        assert result.summary()["degraded_code"] == "hang"
        # Watchdog-fired teardown, not the duration timer.
        assert result.duration < duration - 1.0
