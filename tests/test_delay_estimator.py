"""Unit tests for the Delay Estimator (eq. 2 and eq. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DelayEstimator


class TestSampling:
    def test_rejects_nonpositive_delay(self):
        est = DelayEstimator()
        with pytest.raises(ValueError):
            est.add_sample(0.0)
        with pytest.raises(ValueError):
            est.add_sample(-1.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            DelayEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            DelayEstimator(alpha=1.5)

    def test_first_epoch_sets_dmax_directly(self):
        est = DelayEstimator(alpha=0.7)
        est.add_sample(0.050)
        est.add_sample(0.080)
        est.end_epoch()
        assert est.d_max == pytest.approx(0.080)

    def test_ewma_smoothing_follows_eq2(self):
        est = DelayEstimator(alpha=0.7)
        est.add_sample(0.100)
        est.end_epoch()                       # D_max = 0.100
        est.add_sample(0.200)
        est.end_epoch()
        # eq. 2: 0.7·0.100 + 0.3·0.200 = 0.130
        assert est.d_max == pytest.approx(0.130)

    def test_delta_d_is_change_in_dmax(self):
        est = DelayEstimator(alpha=0.5)
        est.add_sample(0.100)
        est.end_epoch()
        est.add_sample(0.300)
        delta = est.end_epoch()               # new D_max = 0.200
        assert delta == pytest.approx(0.100)

    def test_empty_epoch_carries_dmax_with_zero_delta(self):
        est = DelayEstimator()
        est.add_sample(0.100)
        est.end_epoch()
        delta = est.end_epoch()               # no samples
        assert delta == 0.0
        assert est.d_max == pytest.approx(0.100)

    def test_epoch_uses_maximum_not_mean(self):
        est = DelayEstimator(alpha=0.5)
        for delay in (0.010, 0.090, 0.020):
            est.add_sample(delay)
        est.end_epoch()
        assert est.d_max == pytest.approx(0.090)

    def test_reset_epoch_drops_pending(self):
        est = DelayEstimator()
        est.add_sample(0.5)
        est.reset_epoch()
        assert est.pending_samples == 0


class TestDmin:
    def test_tracks_minimum(self):
        est = DelayEstimator()
        for delay in (0.080, 0.030, 0.120):
            est.add_sample(delay, now=0.0)
        assert est.d_min == pytest.approx(0.030)

    def test_windowed_min_expires_old_samples(self):
        est = DelayEstimator(min_window=10.0)
        est.add_sample(0.020, now=0.0)
        est.add_sample(0.100, now=20.0)       # 0.020 bucket far outside window
        assert est.d_min == pytest.approx(0.100)
        assert est.lifetime_min == pytest.approx(0.020)

    def test_windowed_min_keeps_recent_samples(self):
        est = DelayEstimator(min_window=10.0)
        est.add_sample(0.020, now=0.0)
        est.add_sample(0.100, now=5.0)
        assert est.d_min == pytest.approx(0.020)

    def test_lifetime_mode_never_expires(self):
        est = DelayEstimator(min_window=None)
        est.add_sample(0.020, now=0.0)
        est.add_sample(0.100, now=1e6)
        assert est.d_min == pytest.approx(0.020)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            DelayEstimator(min_window=0.0)

    def test_max_min_ratio(self):
        est = DelayEstimator(alpha=1.0)
        est.add_sample(0.050, now=0.0)
        est.add_sample(0.150, now=0.0)
        est.end_epoch()
        assert est.max_min_ratio() == pytest.approx(3.0)

    def test_ratio_defaults_to_one_without_estimates(self):
        assert DelayEstimator().max_min_ratio() == 1.0


class TestSrtt:
    def test_first_sample_initialises(self):
        est = DelayEstimator()
        est.add_sample(0.2)
        assert est.rtt() == pytest.approx(0.2)

    def test_ewma_moves_toward_samples(self):
        est = DelayEstimator()
        est.add_sample(0.1)
        for _ in range(100):
            est.add_sample(0.3)
        assert 0.25 < est.rtt() < 0.3

    def test_fallback_before_samples(self):
        assert DelayEstimator().rtt(fallback=0.123) == 0.123


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.001, 10.0), min_size=1, max_size=50))
    def test_property_dmax_bounded_by_sample_range(self, delays):
        """After any sample sequence, D_max stays within [min, max]."""
        est = DelayEstimator(alpha=0.6)
        for i, delay in enumerate(delays):
            est.add_sample(delay, now=float(i) * 0.001)
            if i % 3 == 2:
                est.end_epoch()
        est.end_epoch()
        assert min(delays) - 1e-12 <= est.d_max <= max(delays) + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(0.001, 10.0), min_size=1, max_size=50))
    def test_property_dmin_is_window_minimum(self, delays):
        est = DelayEstimator(min_window=1000.0)
        for delay in delays:
            est.add_sample(delay, now=0.5)
        assert est.d_min == pytest.approx(min(delays))

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.01, 0.99))
    def test_property_alpha_one_freezes_dmax(self, _ignored):
        """alpha = 1 keeps D_max at its first value (eq. 2 edge case)."""
        est = DelayEstimator(alpha=1.0)
        est.add_sample(0.1)
        est.end_epoch()
        est.add_sample(5.0)
        est.end_epoch()
        assert est.d_max == pytest.approx(0.1)
