"""Failure-injection tests: reordering, jitter and duplication.

§5.2: "To deal with packet reordering ... for every missing sequence
number Verus creates a timeout timer of 3*delay.  If the missing packet
arrives before the timer expires, no packet loss is identified."
These tests verify that behaviour, and that every protocol survives
impaired paths without collapsing.
"""

import numpy as np
import pytest

from repro.core import VerusConfig, VerusReceiver, VerusSender
from repro.metrics import flow_stats
from repro.netsim import (
    DelayLine,
    DropTailQueue,
    DuplicatingLink,
    JitterLink,
    Link,
    Packet,
    ReorderingLink,
    Simulator,
)
from repro.sprout import SproutReceiver, SproutSender
from repro.tcp import CubicSender, TcpReceiver


def run_impaired(sender, receiver, impairment_factory, rate_bps=10e6,
                 rtt=0.05, duration=30.0):
    """Dumbbell with the impairment inserted after the bottleneck."""
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps, queue=DropTailQueue())
    impairment = impairment_factory(sim)
    impairment.dst = receiver.on_data
    link.dst = impairment.send
    forward = DelayLine(sim, rtt / 2.0, dst=link.send)
    reverse = DelayLine(sim, rtt / 2.0, dst=sender.on_ack)
    sender.attach(sim, forward.send)
    receiver.attach(sim, reverse.send)
    sim.schedule_at(0.0, sender.start)
    sim.run(until=duration)
    return sim


class TestImpairmentPrimitives:
    def test_jitter_link_reorders(self):
        sim = Simulator()
        arrivals = []
        link = JitterLink(sim, base_delay=0.01, jitter=0.02,
                          dst=lambda p: arrivals.append(p.seq),
                          rng=np.random.default_rng(1))
        for seq in range(50):
            sim.schedule_at(seq * 0.001, link.send,
                            Packet(flow_id=0, seq=seq))
        sim.run()
        assert sorted(arrivals) == list(range(50))
        assert arrivals != sorted(arrivals)   # actual reordering occurred

    def test_reordering_link_swaps_every_nth(self):
        sim = Simulator()
        arrivals = []
        link = ReorderingLink(sim, delay=0.01, every_n=3, hold_time=0.005,
                              dst=lambda p: arrivals.append(p.seq))
        for seq in range(9):
            sim.schedule_at(seq * 0.001, link.send,
                            Packet(flow_id=0, seq=seq))
        sim.run()
        assert link.reordered == 3
        assert sorted(arrivals) == list(range(9))
        assert arrivals != list(range(9))

    def test_duplicating_link_duplicates(self):
        sim = Simulator()
        arrivals = []
        link = DuplicatingLink(sim, delay=0.001, every_n=2,
                               dst=lambda p: arrivals.append(p.seq))
        for seq in range(4):
            link.send(Packet(flow_id=0, seq=seq))
        sim.run()
        assert len(arrivals) == 6   # 4 + 2 duplicates
        assert link.duplicated == 2

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            JitterLink(sim, base_delay=-1.0, jitter=0.0)
        with pytest.raises(ValueError):
            ReorderingLink(sim, delay=0.0, every_n=1)
        with pytest.raises(ValueError):
            DuplicatingLink(sim, delay=0.0, every_n=0)


class TestVerusUnderReordering:
    def test_mild_reordering_is_not_loss(self):
        """Held-back packets arriving within 3×delay must not trigger
        spurious multiplicative decreases."""
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: ReorderingLink(sim, delay=0.0, every_n=20,
                                                hold_time=0.003))
        assert sender.losses_detected == 0
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.8 * 10e6

    def test_pathological_reordering_survived(self):
        """Holding packets past 3×delay *does* look like loss; Verus must
        still retain usable throughput."""
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: JitterLink(sim, base_delay=0.0,
                                            jitter=0.06,
                                            rng=np.random.default_rng(3)))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.3 * 10e6

    def test_duplicate_acks_harmless(self):
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: DuplicatingLink(sim, delay=0.0, every_n=5))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.7 * 10e6


class TestTcpUnderImpairment:
    def test_cubic_survives_reordering(self):
        sender = CubicSender(0)
        receiver = TcpReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: ReorderingLink(sim, delay=0.0, every_n=50,
                                                hold_time=0.002))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.4 * 10e6

    def test_cubic_survives_duplication(self):
        sender = CubicSender(0)
        receiver = TcpReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: DuplicatingLink(sim, delay=0.0, every_n=7))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.5 * 10e6


class TestSproutUnderImpairment:
    def test_sprout_survives_jitter(self):
        sender = SproutSender(0)
        receiver = SproutReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: JitterLink(sim, base_delay=0.0,
                                            jitter=0.01,
                                            rng=np.random.default_rng(4)))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.3 * 10e6


class TestLossTimerUnderDuplicationAndStorm:
    """§5.2 loss-timer discipline when duplicates and reordering combine.

    A duplicating link plus a reordering storm is the worst case for the
    3×delay gap timers: held-back packets look missing, then arrive twice.
    Goodput must count each sequence number exactly once — neither the
    link's duplicates nor any spurious retransmission may inflate
    :class:`FlowStats`.
    """

    def _run_chain(self, duration=30.0):
        from repro.faults import FaultEvent, FaultInjector, FaultSchedule

        sim = Simulator()
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
        dup = DuplicatingLink(sim, delay=0.0, every_n=4)
        storm = FaultInjector(
            sim,
            FaultSchedule([FaultEvent.reorder_storm(5.0, 10.0, 0.004)]),
            rng=np.random.default_rng(9))
        link.dst = dup.send
        dup.dst = storm.send
        storm.dst = receiver.on_data
        forward = DelayLine(sim, 0.025, dst=link.send)
        reverse = DelayLine(sim, 0.025, dst=sender.on_ack)
        sender.attach(sim, forward.send)
        receiver.attach(sim, reverse.send)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=duration)
        return sender, receiver, dup, storm

    def test_goodput_counts_each_sequence_once(self):
        sender, receiver, dup, storm = self._run_chain()
        stats = flow_stats(receiver.deliveries)
        seqs = [d[1] for d in receiver.deliveries]
        assert stats.packets_received == len(set(seqs))
        assert stats.packets_received + stats.duplicate_packets == len(seqs)
        # The link really did inject duplicates, and they were tallied
        # out of goodput rather than silently merged into it.
        assert dup.duplicated > 0
        assert stats.duplicate_packets > 0

    def test_storm_delays_within_timer_are_not_losses(self):
        # Storm jitter of 4 ms is far under 3×delay (~150 ms RTT-scale),
        # so the gap timers must reabsorb every late arrival.
        sender, receiver, dup, storm = self._run_chain()
        assert storm.stats.reorder_delays > 0
        assert sender.losses_detected == 0
        assert sender.retransmissions == 0
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.7 * 10e6

    def test_spurious_retransmissions_never_double_count(self):
        # Crank the storm past the 3×delay timers so losses *are*
        # declared and retransmissions race the held originals.
        from repro.faults import FaultEvent, FaultInjector, FaultSchedule

        sim = Simulator()
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
        storm = FaultInjector(
            sim,
            FaultSchedule([FaultEvent.reorder_storm(5.0, 20.0, 0.25)]),
            rng=np.random.default_rng(5))
        link.dst = storm.send
        storm.dst = receiver.on_data
        forward = DelayLine(sim, 0.01, dst=link.send)
        reverse = DelayLine(sim, 0.01, dst=sender.on_ack)
        sender.attach(sim, forward.send)
        receiver.attach(sim, reverse.send)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=30.0)

        assert sender.retransmissions > 0
        stats = flow_stats(receiver.deliveries)
        seqs = [d[1] for d in receiver.deliveries]
        assert stats.packets_received == len(set(seqs))
        assert stats.packets_received + stats.duplicate_packets == len(seqs)
        assert stats.bytes_received == sum(
            {seq: size for _, seq, _, size in receiver.deliveries}.values())
