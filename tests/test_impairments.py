"""Failure-injection tests: reordering, jitter and duplication.

§5.2: "To deal with packet reordering ... for every missing sequence
number Verus creates a timeout timer of 3*delay.  If the missing packet
arrives before the timer expires, no packet loss is identified."
These tests verify that behaviour, and that every protocol survives
impaired paths without collapsing.
"""

import numpy as np
import pytest

from repro.core import VerusConfig, VerusReceiver, VerusSender
from repro.metrics import flow_stats
from repro.netsim import (
    DelayLine,
    DropTailQueue,
    DuplicatingLink,
    JitterLink,
    Link,
    Packet,
    ReorderingLink,
    Simulator,
)
from repro.sprout import SproutReceiver, SproutSender
from repro.tcp import CubicSender, TcpReceiver


def run_impaired(sender, receiver, impairment_factory, rate_bps=10e6,
                 rtt=0.05, duration=30.0):
    """Dumbbell with the impairment inserted after the bottleneck."""
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps, queue=DropTailQueue())
    impairment = impairment_factory(sim)
    impairment.dst = receiver.on_data
    link.dst = impairment.send
    forward = DelayLine(sim, rtt / 2.0, dst=link.send)
    reverse = DelayLine(sim, rtt / 2.0, dst=sender.on_ack)
    sender.attach(sim, forward.send)
    receiver.attach(sim, reverse.send)
    sim.schedule_at(0.0, sender.start)
    sim.run(until=duration)
    return sim


class TestImpairmentPrimitives:
    def test_jitter_link_reorders(self):
        sim = Simulator()
        arrivals = []
        link = JitterLink(sim, base_delay=0.01, jitter=0.02,
                          dst=lambda p: arrivals.append(p.seq),
                          rng=np.random.default_rng(1))
        for seq in range(50):
            sim.schedule_at(seq * 0.001, link.send,
                            Packet(flow_id=0, seq=seq))
        sim.run()
        assert sorted(arrivals) == list(range(50))
        assert arrivals != sorted(arrivals)   # actual reordering occurred

    def test_reordering_link_swaps_every_nth(self):
        sim = Simulator()
        arrivals = []
        link = ReorderingLink(sim, delay=0.01, every_n=3, hold_time=0.005,
                              dst=lambda p: arrivals.append(p.seq))
        for seq in range(9):
            sim.schedule_at(seq * 0.001, link.send,
                            Packet(flow_id=0, seq=seq))
        sim.run()
        assert link.reordered == 3
        assert sorted(arrivals) == list(range(9))
        assert arrivals != list(range(9))

    def test_duplicating_link_duplicates(self):
        sim = Simulator()
        arrivals = []
        link = DuplicatingLink(sim, delay=0.001, every_n=2,
                               dst=lambda p: arrivals.append(p.seq))
        for seq in range(4):
            link.send(Packet(flow_id=0, seq=seq))
        sim.run()
        assert len(arrivals) == 6   # 4 + 2 duplicates
        assert link.duplicated == 2

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            JitterLink(sim, base_delay=-1.0, jitter=0.0)
        with pytest.raises(ValueError):
            ReorderingLink(sim, delay=0.0, every_n=1)
        with pytest.raises(ValueError):
            DuplicatingLink(sim, delay=0.0, every_n=0)


class TestVerusUnderReordering:
    def test_mild_reordering_is_not_loss(self):
        """Held-back packets arriving within 3×delay must not trigger
        spurious multiplicative decreases."""
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: ReorderingLink(sim, delay=0.0, every_n=20,
                                                hold_time=0.003))
        assert sender.losses_detected == 0
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.8 * 10e6

    def test_pathological_reordering_survived(self):
        """Holding packets past 3×delay *does* look like loss; Verus must
        still retain usable throughput."""
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: JitterLink(sim, base_delay=0.0,
                                            jitter=0.06,
                                            rng=np.random.default_rng(3)))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.3 * 10e6

    def test_duplicate_acks_harmless(self):
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: DuplicatingLink(sim, delay=0.0, every_n=5))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.7 * 10e6


class TestTcpUnderImpairment:
    def test_cubic_survives_reordering(self):
        sender = CubicSender(0)
        receiver = TcpReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: ReorderingLink(sim, delay=0.0, every_n=50,
                                                hold_time=0.002))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.4 * 10e6

    def test_cubic_survives_duplication(self):
        sender = CubicSender(0)
        receiver = TcpReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: DuplicatingLink(sim, delay=0.0, every_n=7))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.5 * 10e6


class TestSproutUnderImpairment:
    def test_sprout_survives_jitter(self):
        sender = SproutSender(0)
        receiver = SproutReceiver(0)
        run_impaired(sender, receiver,
                     lambda sim: JitterLink(sim, base_delay=0.0,
                                            jitter=0.01,
                                            rng=np.random.default_rng(4)))
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.3 * 10e6
