"""Byte-identical equivalence pins for the hot-path performance work.

The performance PR's contract is that every optimisation is
*behaviourally invisible*: same RNG draws, same float arithmetic, same
event ordering, therefore byte-identical results.  This module pins that
contract two ways:

1. A seed-pinned experiment matrix — {verus, sprout, cubic} senders over
   three synthetic cellular traces, each with and without an injected
   fault schedule — whose canonical-JSON ``ExperimentResult.summary()``
   payloads are committed under ``tests/golden/perf_equivalence/`` and
   compared **byte for byte** on every run.  Any change to the scheduler,
   packet freelist, trace-link replay schedule, interpolation caches or
   ACK hot path that perturbs behaviour shows up as a snapshot diff.

2. The ``repro check`` oracle — the audited scenarios' committed golden
   traces (window/set-point/delay timelines at zero tolerance-violation
   budget) must still compare clean, proving the optimised code produces
   the same control-law trajectories the goldens were blessed from.

Re-blessing (only after an *intentional* behaviour change)::

    REPRO_BLESS=1 PYTHONPATH=src python -m pytest tests/test_perf_equivalence.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cellular import generate_scenario_trace
from repro.check import (
    CHECK_PROTOCOLS,
    build_scenario,
    compare_golden,
    default_golden_dir,
    golden_path,
    load_golden,
    run_audited,
)
from repro.experiments import FlowSpec, run_trace_contention
from repro.faults import FaultEvent, FaultSchedule
from repro.faults.sim import run_faulted_contention

GOLDEN_DIR = Path(__file__).parent / "golden" / "perf_equivalence"
BLESS = os.environ.get("REPRO_BLESS") == "1"

PROTOCOLS = ("verus", "sprout", "cubic")
TRACES = ("city_stationary", "campus_pedestrian", "city_driving")
DURATION = 6.0
WARMUP = 1.0

#: Deterministic fault schedule for the faulted half of the matrix: a
#: short downlink blackout followed by a lossy burst, both well inside
#: the run so recovery is part of the pinned trajectory.
FAULTS = FaultSchedule([
    FaultEvent.outage(2.0, 0.4, direction="down"),
    FaultEvent.burst_loss(3.5, 0.6, rate=0.25),
])

MATRIX = [(protocol, trace, faulted)
          for protocol in PROTOCOLS
          for trace in TRACES
          for faulted in (False, True)]


def _case_id(protocol: str, trace: str, faulted: bool) -> str:
    return f"{protocol}-{trace}-{'faults' if faulted else 'clean'}"


def _run_case(protocol: str, trace_name: str, faulted: bool) -> dict:
    # Seeds are pinned per cell so every run of the matrix replays the
    # exact same trace, queue RNG and fault draws.
    seed = 100 + 7 * PROTOCOLS.index(protocol) + TRACES.index(trace_name)
    trace = generate_scenario_trace(trace_name, duration=DURATION,
                                    technology="3g", seed=seed)
    options = {"r": 2.0} if protocol == "verus" else {}
    specs = [FlowSpec(protocol=protocol, options=options)]
    if faulted:
        result = run_faulted_contention(trace, specs, FAULTS,
                                        duration=DURATION, warmup=WARMUP,
                                        seed=seed)
    else:
        result = run_trace_contention(trace, specs, duration=DURATION,
                                      warmup=WARMUP, seed=seed)
    return result.summary()


def _canonical(payload: dict) -> bytes:
    """Canonical JSON: sorted keys, no whitespace, trailing newline.
    Byte-stable because summary() emits only plain floats/ints/strings
    and Python's float repr is exact shortest round-trip."""
    return (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("ascii")


@pytest.mark.parametrize(
    "protocol,trace,faulted", MATRIX,
    ids=[_case_id(*case) for case in MATRIX])
def test_summary_matches_committed_snapshot(protocol, trace, faulted):
    payload = _canonical(_run_case(protocol, trace, faulted))
    snapshot = GOLDEN_DIR / f"{_case_id(protocol, trace, faulted)}.json"
    if BLESS:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        snapshot.write_bytes(payload)
        return
    assert snapshot.exists(), (
        f"missing snapshot {snapshot.name}; bless with REPRO_BLESS=1")
    committed = snapshot.read_bytes()
    assert payload == committed, (
        f"{snapshot.name}: summary() drifted from the committed snapshot "
        "— a supposedly behaviour-preserving change altered results. "
        "Diff the JSON, find the divergence, and only re-bless if the "
        "change is intentional.")


def test_matrix_is_deterministic_within_process():
    """Two back-to-back runs of the same cell are byte-identical — the
    snapshot comparison above is meaningful only if the harness itself
    is deterministic."""
    first = _canonical(_run_case("verus", "city_stationary", True))
    second = _canonical(_run_case("verus", "city_stationary", True))
    assert first == second


@pytest.mark.parametrize("protocol", CHECK_PROTOCOLS)
def test_check_goldens_still_compare_clean(protocol):
    """The repro-check oracle: audited scenario timelines must match the
    committed golden traces with zero violations beyond the blessed
    tolerance bands (MAX_BAD_FRACTION is 0.0)."""
    scenario = build_scenario(protocol)
    run = run_audited(scenario)
    golden = load_golden(golden_path(default_golden_dir(), protocol))
    assert golden is not None
    assert compare_golden(golden, scenario, run.rows) == []
    assert run.report.monitors_violated() == []
