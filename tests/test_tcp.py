"""Tests for the TCP baselines (NewReno, Cubic, Vegas)."""

import numpy as np
import pytest

from repro.metrics import flow_stats
from repro.netsim import DirectPath, DropTailQueue, Link, Packet, Simulator
from repro.tcp import (
    DUPACK_THRESHOLD,
    CubicSender,
    NewRenoSender,
    TcpReceiver,
    TcpSender,
    VegasSender,
)


def run_tcp(cls, rate_bps=10e6, rtt=0.05, duration=20.0,
            queue_bytes=250_000, loss_rate=0.0, seed=0, **kwargs):
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps,
                queue=DropTailQueue(capacity_bytes=queue_bytes),
                loss_rate=loss_rate, rng=np.random.default_rng(seed))
    sender = cls(0, **kwargs)
    receiver = TcpReceiver(0)
    path = DirectPath(sim, link, sender, receiver, rtt=rtt)
    path.run(duration)
    return sender, receiver


ALL_VARIANTS = [NewRenoSender, CubicSender, VegasSender]


class TestReceiver:
    def test_cumulative_ack_advances_in_order(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(0)
        receiver.attach(sim, acks.append)
        for seq in range(3):
            receiver.on_data(Packet(flow_id=0, seq=seq))
        assert [a.ack_seq for a in acks] == [1, 2, 3]

    def test_out_of_order_held_back(self):
        sim = Simulator()
        acks = []
        receiver = TcpReceiver(0)
        receiver.attach(sim, acks.append)
        receiver.on_data(Packet(flow_id=0, seq=0))
        receiver.on_data(Packet(flow_id=0, seq=2))   # hole at 1
        assert [a.ack_seq for a in acks] == [1, 1]   # duplicate ACK
        receiver.on_data(Packet(flow_id=0, seq=1))
        assert acks[-1].ack_seq == 3                 # hole filled

    def test_duplicate_data_not_recorded_twice(self):
        sim = Simulator()
        receiver = TcpReceiver(0)
        receiver.attach(sim, lambda a: None)
        receiver.on_data(Packet(flow_id=0, seq=0))
        receiver.on_data(Packet(flow_id=0, seq=0))
        assert receiver.packets_received == 1


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_fills_fixed_link(self, cls):
        _, receiver = run_tcp(cls, duration=30.0)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.8 * 10e6

    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_in_order_delivery_of_everything_sent(self, cls):
        _, receiver = run_tcp(cls, duration=10.0, loss_rate=0.01, seed=3)
        seqs = sorted(s for (_, s, _, _) in receiver.deliveries)
        # Cumulative progress: next_expected must cover the recorded seqs.
        assert receiver.next_expected >= max(seqs)

    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_recovers_from_stochastic_loss(self, cls):
        sender, receiver = run_tcp(cls, duration=30.0, loss_rate=0.002,
                                   seed=1)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 2e6
        assert sender.retransmissions > 0

    @pytest.mark.parametrize("cls", ALL_VARIANTS)
    def test_deterministic_with_seed(self, cls):
        a = run_tcp(cls, duration=10.0, loss_rate=0.01, seed=9)
        b = run_tcp(cls, duration=10.0, loss_rate=0.01, seed=9)
        assert a[1].bytes_received == b[1].bytes_received

    @pytest.mark.parametrize("cls,floor", [
        (NewRenoSender, 8), (CubicSender, 8),
        (VegasSender, 4),   # Vegas doubles only every other RTT
    ])
    def test_slow_start_grows_initially(self, cls, floor):
        sim = Simulator()
        link = Link(sim, rate_bps=100e6, queue=DropTailQueue())
        sender = cls(0)
        receiver = TcpReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.1)
        path.run(0.35)   # ~3 RTTs
        assert sender.cwnd >= floor


class TestNewReno:
    def test_loss_halves_window(self):
        sender = NewRenoSender(0)
        sender.cwnd = 100.0
        sender.snd_nxt = 100
        sender.snd_una = 0
        assert sender.ssthresh_on_loss() == pytest.approx(50.0)

    def test_loss_never_raises_window_above_half_cwnd(self):
        # Regression (found by soak triage): after an RTO collapse the
        # in-network backlog can dwarf cwnd, and plain FlightSize/2
        # would *raise* the window on the next fast retransmit.
        sender = NewRenoSender(0)
        sender.cwnd = 8.0
        sender.snd_nxt = 300
        sender.snd_una = 0
        assert sender.ssthresh_on_loss() == pytest.approx(4.0)

    def test_ca_additive_increase(self):
        sender = NewRenoSender(0)
        sender.cwnd = 10.0
        sender.ssthresh = 5.0
        sender.ca_increment(1)
        assert sender.cwnd == pytest.approx(10.1)

    def test_fast_retransmit_on_three_dupacks(self):
        sender, _ = run_tcp(NewRenoSender, duration=20.0,
                            queue_bytes=60_000)
        assert sender.fast_retransmits > 0

    def test_bufferbloat_on_deep_buffer(self):
        """Loss-based TCP fills a deep buffer: delay far above the floor."""
        _, receiver = run_tcp(NewRenoSender, duration=30.0,
                              queue_bytes=500_000)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.mean_delay > 0.1   # ≥ 2× the 50 ms RTT floor


class TestCubic:
    def test_beta_decrease(self):
        sender = CubicSender(0)
        sender.cwnd = 100.0
        assert sender.ssthresh_on_loss() == pytest.approx(70.0)

    def test_fast_convergence_deflates_wmax(self):
        sender = CubicSender(0, fast_convergence=True)
        sender.w_max = 100.0
        sender.cwnd = 80.0                    # loss before regaining w_max
        sender.on_loss_event()
        assert sender.w_max == pytest.approx(80.0 * 1.7 / 2.0)

    def test_no_fast_convergence_keeps_cwnd(self):
        sender = CubicSender(0, fast_convergence=False)
        sender.w_max = 100.0
        sender.cwnd = 80.0
        sender.on_loss_event()
        assert sender.w_max == 80.0

    def test_hystart_exits_slow_start_before_loss(self):
        sender, _ = run_tcp(CubicSender, duration=5.0, queue_bytes=2_000_000)
        # With HyStart the enormous buffer should not be filled by slow start.
        assert sender.timeouts == 0
        assert sender.ssthresh < 1e9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CubicSender(0, c=0.0)
        with pytest.raises(ValueError):
            CubicSender(0, beta=1.0)

    def test_cubic_growth_accelerates_away_from_wmax(self):
        """Past the plateau, cubic growth speeds up over time."""
        sender, _ = run_tcp(CubicSender, duration=40.0, queue_bytes=400_000)
        assert sender.fast_retransmits >= 1   # sawtooth formed


class TestVegas:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VegasSender(0, alpha=5.0, beta=4.0)

    def test_lower_standing_queue_than_cubic(self):
        """Vegas's base-RTT mis-estimation leaves a standing queue, but it
        still sits far below loss-driven Cubic's bufferbloat (the paper's
        Fig 8 shows Vegas delay below Cubic on the same channel)."""
        _, vegas_rcv = run_tcp(VegasSender, duration=60.0,
                               queue_bytes=2_000_000)
        _, cubic_rcv = run_tcp(CubicSender, duration=60.0,
                               queue_bytes=400_000)
        vegas = flow_stats(vegas_rcv.deliveries, start=40.0, end=60.0)
        cubic = flow_stats(cubic_rcv.deliveries, start=40.0, end=60.0)
        assert vegas.mean_delay < 0.3
        assert vegas.mean_delay < cubic.mean_delay * 1.5

    def test_base_rtt_tracks_minimum(self):
        sender, _ = run_tcp(VegasSender, duration=10.0)
        assert sender.base_rtt == pytest.approx(0.05, rel=0.1)

    def test_no_losses_on_deep_buffer(self):
        sender, _ = run_tcp(VegasSender, duration=30.0,
                            queue_bytes=2_000_000)
        assert sender.fast_retransmits == 0
        assert sender.timeouts == 0


class TestSackRecovery:
    def test_sack_repairs_burst_loss_quickly(self):
        """A burst of drops is repaired without an RTO."""
        sender, receiver = run_tcp(CubicSender, duration=20.0,
                                   queue_bytes=60_000)
        assert sender.timeouts <= 1

    def test_newreno_mode_still_works(self):
        sender, receiver = run_tcp(NewRenoSender, duration=30.0,
                                   queue_bytes=250_000, sack=False)
        stats = flow_stats(receiver.deliveries, start=10.0, end=30.0)
        assert stats.throughput_bps > 0.6 * 10e6

    def test_rto_recovers_from_total_loss(self):
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue(),
                    rng=np.random.default_rng(0))
        sender = CubicSender(0)
        receiver = TcpReceiver(0)
        path = DirectPath(sim, link, sender, receiver, rtt=0.05)
        sim.schedule_at(5.0, lambda: setattr(link, "loss_rate", 1.0 - 1e-12))
        sim.schedule_at(8.0, lambda: setattr(link, "loss_rate", 0.0))
        path.run(20.0)
        stats = flow_stats(receiver.deliveries, start=12.0, end=20.0)
        assert sender.timeouts > 0
        assert stats.throughput_bps > 2e6

    def test_rto_armed_after_flight_emptying_ack_refills_window(self):
        """Regression: an ACK that empties the flight disarms the RTO,
        and the window refill inside the same on_ack used to leave the
        fresh burst with no timer — lose that burst and the sender
        deadlocked forever (surfaced by the chaos matrix's corruption
        windows)."""
        sim = Simulator()
        sent = []
        sender = CubicSender(0)
        sender.attach(sim, sent.append)
        sender.start()
        sim.run(until=0.1)
        assert sent

        last = max(p.seq for p in sent)
        ack = Packet(flow_id=0, seq=0, is_ack=True, ack_seq=last + 1,
                     echo_sent_time=sent[-1].sent_time)
        n_before = len(sent)
        sim.schedule_at(0.1, sender.on_ack, ack)
        sim.run(until=0.2)
        # The cumulative ACK cleared everything, then the refill put new
        # segments in the air — they must have a retransmission timer.
        assert len(sent) > n_before
        assert sender.flight() > 0
        assert sender._rto_event is not None and sender._rto_event.active
        # Lose the whole burst (deliver nothing): the RTO must fire.
        timeouts_before = sender.timeouts
        sim.run(until=60.0)
        assert sender.timeouts > timeouts_before
