"""Unit tests for the PCC Allegro sender internals (repro.pcc.sender).

End-to-end behaviour (convergence, adaptation to rate drops, the §2
Verus-vs-PCC comparison) lives in tests/test_extended_baselines.py.  These
tests pin the pieces underneath: monitor-interval bookkeeping, the
STARTING/DECISION/ADJUSTING state machine step functions, rate clamping,
and the acknowledgement plumbing — all at the unit level, without a
network between the sender and its feedback.
"""

import math

import pytest

from repro.netsim.packet import Packet
from repro.pcc import (
    ADJUSTING,
    DECISION,
    STARTING,
    MonitorInterval,
    PccSender,
)


class FakeEvent:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    @property
    def active(self):
        return not self.cancelled


class FakeClock:
    """Minimal Clock: settable time, schedule records without firing."""

    def __init__(self):
        self.now = 0.0
        self.events = []

    def schedule(self, delay, callback, *args):
        event = FakeEvent()
        self.events.append((delay, callback, args, event))
        return event


def make_sender(**kwargs):
    sender = PccSender(0, **kwargs)
    sender.sent_packets = []
    sender.attach(FakeClock(), sender.sent_packets.append)
    return sender


def make_mi(mi_id, utility, direction=0, rate_pps=100.0):
    mi = MonitorInterval(mi_id=mi_id, rate_pps=rate_pps, start=0.0, end=0.1)
    mi.utility = utility
    mi.direction = direction
    return mi


class TestMonitorInterval:
    def test_loss_rate_with_nothing_sent_is_zero(self):
        mi = MonitorInterval(mi_id=1, rate_pps=10.0, start=0.0)
        assert mi.loss_rate() == 0.0

    def test_loss_rate_is_fraction_unacked(self):
        mi = MonitorInterval(mi_id=1, rate_pps=10.0, start=0.0,
                             sent=10, acked=7)
        assert mi.loss_rate() == pytest.approx(0.3)

    def test_loss_rate_clamped_when_acks_exceed_sends(self):
        # Straggler ACKs from a previous MI must not yield negative loss.
        mi = MonitorInterval(mi_id=1, rate_pps=10.0, start=0.0,
                             sent=5, acked=8)
        assert mi.loss_rate() == 0.0

    def test_throughput_from_acked_bytes_over_span(self):
        mi = MonitorInterval(mi_id=1, rate_pps=10.0, start=2.0, end=3.0,
                             sent=10, acked=10)
        assert mi.throughput_mbps(1400) == pytest.approx(10 * 1400 * 8 / 1e6)

    def test_throughput_zero_span_stays_finite(self):
        mi = MonitorInterval(mi_id=1, rate_pps=10.0, start=1.0, end=1.0,
                             sent=1, acked=1)
        assert math.isfinite(mi.throughput_mbps(1400))


class TestLifecycle:
    def test_start_emits_first_packet_and_opens_an_mi(self):
        sender = make_sender(initial_rate_pps=50.0)
        sender.start()
        assert sender.state == STARTING
        assert len(sender.sent_packets) == 1
        mi = sender._current_mi
        assert mi is not None and mi.sent == 1
        assert sender._seq_to_mi[sender.sent_packets[0].seq] == mi.mi_id

    def test_packets_are_paced_at_the_current_rate(self):
        sender = make_sender(initial_rate_pps=50.0)
        sender.start()
        spacing = [delay for delay, callback, _, _ in sender.sim.events
                   if callback == sender._emit]
        assert spacing == [pytest.approx(1.0 / 50.0)]

    def test_stop_cancels_pacing_and_mi_timers(self):
        sender = make_sender()
        sender.start()
        sender.stop()
        assert sender._send_event.cancelled
        assert sender._mi_event.cancelled
        assert not sender.running

    def test_begin_mi_clamps_rate_to_bounds(self):
        sender = make_sender(min_rate_pps=5.0, max_rate_pps=1000.0)
        sender.running = True
        sender._begin_mi(1e9, direction=0)
        assert sender.rate_pps == 1000.0
        sender._begin_mi(0.001, direction=0)
        assert sender.rate_pps == 5.0


class TestStartingPhase:
    def test_rising_utility_doubles_the_rate(self):
        sender = make_sender(initial_rate_pps=100.0)
        sender._starting_step(make_mi(1, utility=1.0))
        assert sender.rate_pps == pytest.approx(200.0)
        assert sender.state == STARTING
        sender._starting_step(make_mi(2, utility=2.0))
        assert sender.rate_pps == pytest.approx(400.0)

    def test_doubling_saturates_at_max_rate(self):
        sender = make_sender(initial_rate_pps=100.0, max_rate_pps=150.0)
        sender._starting_step(make_mi(1, utility=1.0))
        assert sender.rate_pps == 150.0

    def test_utility_drop_halves_and_enters_decision(self):
        sender = make_sender(initial_rate_pps=100.0)
        sender._starting_step(make_mi(1, utility=1.0))
        sender._starting_step(make_mi(2, utility=0.5))
        assert sender.state == DECISION
        assert sender.rate_pps == pytest.approx(100.0)     # 200 / 2
        assert sender.base_rate_pps == pytest.approx(100.0)
        assert sorted(sender._decision_queue) == [-1, -1, 1, 1]


class TestDecisionPhase:
    def _in_decision(self, epsilon=0.05):
        sender = make_sender(initial_rate_pps=100.0, epsilon=epsilon)
        sender._enter_decision()
        return sender

    def test_fewer_than_four_results_is_inconclusive(self):
        sender = self._in_decision()
        for i, direction in enumerate((1, -1, 1)):
            sender._decision_results.append(
                make_mi(i, utility=float(direction), direction=direction))
            sender._maybe_decide()
        assert sender.state == DECISION
        assert sender.decisions == 0

    def test_both_up_trials_winning_moves_up(self):
        sender = self._in_decision()
        for i, (direction, utility) in enumerate(
                ((1, 2.0), (-1, 1.0), (1, 2.5), (-1, 0.5))):
            sender._decision_results.append(
                make_mi(i, utility=utility, direction=direction))
        sender._maybe_decide()
        assert sender.state == ADJUSTING
        assert sender._adjust_direction == 1
        assert sender.rate_pps == pytest.approx(100.0 * 1.05)
        assert sender.decisions == 1

    def test_both_down_trials_winning_moves_down(self):
        sender = self._in_decision()
        for i, (direction, utility) in enumerate(
                ((1, 0.5), (-1, 2.0), (1, 1.0), (-1, 3.0))):
            sender._decision_results.append(
                make_mi(i, utility=utility, direction=direction))
        sender._maybe_decide()
        assert sender.state == ADJUSTING
        assert sender._adjust_direction == -1
        assert sender.rate_pps == pytest.approx(100.0 * 0.95)

    def test_split_trials_stay_and_retest(self):
        sender = self._in_decision()
        for i, (direction, utility) in enumerate(
                ((1, 2.0), (-1, 1.0), (1, 0.5), (-1, 3.0))):
            sender._decision_results.append(
                make_mi(i, utility=utility, direction=direction))
        sender._maybe_decide()
        assert sender.state == DECISION
        assert sender.decisions == 1
        assert len(sender._decision_queue) == 4   # re-armed for a re-test

    def test_advance_state_machine_probes_queued_directions(self):
        sender = self._in_decision()
        sender.running = True
        queued = list(sender._decision_queue)
        sender._advance_state_machine()
        assert sender._current_mi.direction == queued[0]
        expected = 100.0 * (1.0 + queued[0] * sender.epsilon)
        assert sender.rate_pps == pytest.approx(expected)

    def test_advance_with_empty_queue_probes_base_rate(self):
        sender = self._in_decision()
        sender.running = True
        sender._decision_queue = []
        sender._advance_state_machine()
        assert sender._current_mi.direction == 0
        assert sender.rate_pps == pytest.approx(100.0)


class TestAdjustingPhase:
    def _adjusting(self, direction=1, epsilon=0.05):
        sender = make_sender(initial_rate_pps=100.0, epsilon=epsilon)
        sender.base_rate_pps = 100.0
        sender._start_adjusting(direction)
        return sender

    def test_enter_adjusting_takes_one_epsilon_step(self):
        sender = self._adjusting(+1)
        assert sender.state == ADJUSTING
        assert sender.rate_pps == pytest.approx(105.0)
        assert sender._adjust_steps == 1

    def test_rising_utility_grows_the_step(self):
        sender = self._adjusting(+1)
        sender._adjusting_step(make_mi(1, utility=1.0))
        assert sender.rate_pps == pytest.approx(100.0 * (1 + 0.05 * 2))
        sender._adjusting_step(make_mi(2, utility=2.0))
        assert sender.rate_pps == pytest.approx(100.0 * (1 + 0.05 * 3))

    def test_falling_utility_steps_back_and_reenters_decision(self):
        sender = self._adjusting(+1)
        sender._adjusting_step(make_mi(1, utility=1.0))   # steps -> 2
        sender._adjusting_step(make_mi(2, utility=0.2))   # fall: revert
        assert sender.state == DECISION
        assert sender.rate_pps == pytest.approx(100.0 * (1 + 0.05 * 1))

    def test_downward_step_factor_floors_at_one_tenth(self):
        sender = self._adjusting(-1)
        sender._adjust_steps = 30                         # 1 - 0.05*31 < 0
        sender._adjusting_step(make_mi(1, utility=1.0))
        assert sender.rate_pps == pytest.approx(100.0 * 0.1)
        assert sender.rate_pps > 0

    def test_state_changes_are_recorded_once_per_transition(self):
        sender = self._adjusting(+1)
        sender._set_state(ADJUSTING)                      # no-op repeat
        assert sender.state_changes == [ADJUSTING]


class TestOnAck:
    def _acked_sender(self):
        sender = make_sender()
        sender.start()
        return sender

    def _ack_for(self, sender, seq, sent_time, now):
        data = Packet(flow_id=0, seq=seq, sent_time=sent_time)
        sender.sim.now = now
        return data.make_ack(now)

    def test_first_rtt_sample_seeds_srtt(self):
        sender = self._acked_sender()
        sender.on_ack(self._ack_for(sender, 0, sent_time=0.0, now=0.08))
        assert sender.srtt == pytest.approx(0.08)

    def test_srtt_ewma_update(self):
        sender = self._acked_sender()
        sender.on_ack(self._ack_for(sender, 0, sent_time=0.0, now=0.08))
        sender.on_ack(self._ack_for(sender, 1, sent_time=0.1, now=0.26))
        assert sender.srtt == pytest.approx(0.08 + 0.125 * (0.16 - 0.08))

    def test_ack_credits_the_owning_monitor_interval(self):
        sender = self._acked_sender()
        mi = sender._current_mi
        seq = sender.sent_packets[0].seq
        sender.on_ack(self._ack_for(sender, seq, sent_time=0.0, now=0.05))
        assert mi.acked == 1
        assert seq not in sender._seq_to_mi   # consumed exactly once

    def test_unknown_seq_and_data_packets_are_ignored(self):
        sender = self._acked_sender()
        mi = sender._current_mi
        sender.on_ack(self._ack_for(sender, 999, sent_time=0.0, now=0.05))
        sender.on_ack(Packet(flow_id=0, seq=0, sent_time=0.0))   # not an ACK
        assert mi.acked == 0

    def test_acks_after_stop_are_ignored(self):
        sender = self._acked_sender()
        seq = sender.sent_packets[0].seq
        mi = sender._current_mi
        sender.stop()
        sender.on_ack(self._ack_for(sender, seq, sent_time=0.0, now=0.05))
        assert mi.acked == 0 and sender.srtt is None
