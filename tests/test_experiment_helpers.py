"""Unit tests for experiment helper logic (no simulation required)."""

import numpy as np
import pytest

from repro.experiments.macro import MacroPoint, check_fig8_shape, check_fig9_shape
from repro.experiments.micro import rapid_change_schedule
from repro.experiments.short_flows import verus_competitive_ratio
from repro.experiments.tracedriven import (
    ScatterPoint,
    fig15_delay_ratio,
    fig15_gain,
    summarize_fig10,
)
from repro.experiments.uplink import observations_carry_over


def point(protocol, technology="3g", tput=1.0, delay=100.0):
    return MacroPoint(protocol=protocol, technology=technology,
                      mean_throughput_mbps=tput, mean_delay_ms=delay,
                      runs=1)


class TestFig8Checks:
    def test_paper_shape_passes(self):
        points = [
            point("cubic", tput=1.6, delay=900.0),
            point("verus_r6", tput=1.6, delay=70.0),
            point("sprout", tput=1.4, delay=50.0),
        ]
        checks = check_fig8_shape(points)
        assert all(checks.values())

    def test_detects_delay_violation(self):
        points = [
            point("cubic", tput=1.6, delay=100.0),
            point("verus_r6", tput=1.6, delay=90.0),
        ]
        checks = check_fig8_shape(points)
        assert not checks["3g:verus_delay_much_lower_than_cubic"]

    def test_detects_throughput_collapse(self):
        points = [
            point("cubic", tput=4.0, delay=900.0),
            point("verus_r6", tput=1.0, delay=70.0),
        ]
        checks = check_fig8_shape(points)
        assert not checks["3g:verus_throughput_comparable"]


class TestFig9Checks:
    def test_monotone_r_passes(self):
        points = [
            point("verus_r2", tput=1.0, delay=30.0),
            point("verus_r4", tput=1.3, delay=60.0),
            point("verus_r6", tput=1.5, delay=90.0),
        ]
        assert all(check_fig9_shape(points).values())

    def test_inverted_tradeoff_fails(self):
        points = [
            point("verus_r2", tput=2.0, delay=30.0),
            point("verus_r6", tput=1.0, delay=90.0),
        ]
        checks = check_fig9_shape(points)
        assert not checks["3g:throughput_increases_with_r"]


class TestFig10Summary:
    def test_groups_and_averages(self):
        points = [
            ScatterPoint("s", "verus_r2", 0, 1.0, 10.0),
            ScatterPoint("s", "verus_r2", 1, 3.0, 30.0),
            ScatterPoint("s", "cubic", 0, 2.0, 100.0),
        ]
        rows = summarize_fig10(points)
        verus = next(r for r in rows if r["protocol"] == "verus_r2")
        assert verus["mean_throughput_mbps"] == pytest.approx(2.0)
        assert verus["mean_delay_ms"] == pytest.approx(20.0)
        assert verus["throughput_std"] == pytest.approx(1.0)


class TestFig15Ratios:
    ROWS = [
        {"scenario": "a", "profile": "updating",
         "mean_throughput_mbps": 1.0, "mean_delay_ms": 30.0},
        {"scenario": "a", "profile": "static",
         "mean_throughput_mbps": 1.5, "mean_delay_ms": 60.0},
        {"scenario": "b", "profile": "updating",
         "mean_throughput_mbps": 2.0, "mean_delay_ms": 25.0},
        {"scenario": "b", "profile": "static",
         "mean_throughput_mbps": 2.0, "mean_delay_ms": 50.0},
    ]

    def test_delay_ratio_geometric_mean(self):
        assert fig15_delay_ratio(self.ROWS) == pytest.approx(0.5)

    def test_throughput_ratio(self):
        expected = np.sqrt((1.0 / 1.5) * 1.0)
        assert fig15_gain(self.ROWS) == pytest.approx(expected)

    def test_empty_rows_nan(self):
        assert np.isnan(fig15_gain([]))


class TestShortFlowRatio:
    def test_geometric_mean(self):
        rows = [
            {"size_kb": 50, "verus_fct_s": 2.0, "cubic_fct_s": 1.0},
            {"size_kb": 500, "verus_fct_s": 1.0, "cubic_fct_s": 2.0},
        ]
        assert verus_competitive_ratio(rows) == pytest.approx(1.0)

    def test_missing_values_skipped(self):
        rows = [{"size_kb": 50, "verus_fct_s": float("nan"),
                 "cubic_fct_s": 1.0}]
        assert np.isnan(verus_competitive_ratio(rows))


class TestUplinkChecks:
    def test_carry_over_logic(self):
        rows = [
            {"protocol": "verus", "mean_throughput_mbps": 0.6,
             "mean_delay_ms": 40.0},
            {"protocol": "cubic", "mean_throughput_mbps": 1.0,
             "mean_delay_ms": 300.0},
        ]
        checks = observations_carry_over(rows)
        assert all(checks.values())

    def test_detects_failure(self):
        rows = [
            {"protocol": "verus", "mean_throughput_mbps": 0.1,
             "mean_delay_ms": 290.0},
            {"protocol": "cubic", "mean_throughput_mbps": 1.0,
             "mean_delay_ms": 300.0},
        ]
        checks = observations_carry_over(rows)
        assert not any(checks.values())


class TestRapidSchedule:
    def test_ranges_respected(self):
        schedule = rapid_change_schedule(60.0, 2e6, 20e6, seed=1)
        for phase in schedule.phases:
            assert 2e6 <= phase.rate_bps <= 20e6
            assert 0.005 <= phase.delay <= 0.050
            assert 0.0 <= phase.loss_rate <= 0.01
        assert schedule.total_duration() == pytest.approx(60.0)

    def test_five_second_periods(self):
        schedule = rapid_change_schedule(60.0, 2e6, 20e6, seed=1)
        assert all(p.duration == pytest.approx(5.0)
                   for p in schedule.phases)
