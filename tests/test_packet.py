"""Tests for the packet representation."""

import pytest

from repro.netsim import ACK_BYTES, MTU_BYTES, Packet


class TestPacket:
    def test_defaults(self):
        packet = Packet(flow_id=1, seq=7)
        assert packet.size == MTU_BYTES
        assert not packet.is_ack
        assert packet.payload is None

    def test_make_ack_echoes_metadata(self):
        data = Packet(flow_id=2, seq=10, sent_time=1.5, window_at_send=42.0)
        ack = data.make_ack(now=2.0)
        assert ack.is_ack
        assert ack.flow_id == 2
        assert ack.seq == 10               # trigger sequence (SACK info)
        assert ack.ack_seq == 10           # per-packet acknowledgement
        assert ack.echo_sent_time == 1.5
        assert ack.window_at_send == 42.0
        assert ack.sent_time == 2.0
        assert ack.size == ACK_BYTES

    def test_make_ack_cumulative_override(self):
        data = Packet(flow_id=0, seq=10)
        ack = data.make_ack(now=1.0, ack_seq=11)
        assert ack.ack_seq == 11
        assert ack.seq == 10

    def test_make_ack_propagates_retransmission_flag(self):
        data = Packet(flow_id=0, seq=3, retransmission=True)
        assert data.make_ack(now=0.0).retransmission

    def test_mtu_matches_paper(self):
        """§5.3: 'UDP packets with an MTU size of 1400 bytes'."""
        assert MTU_BYTES == 1400
