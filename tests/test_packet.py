"""Tests for the packet representation."""

import pytest

from repro.netsim import ACK_BYTES, MTU_BYTES, Packet, PacketPool


class TestPacket:
    def test_defaults(self):
        packet = Packet(flow_id=1, seq=7)
        assert packet.size == MTU_BYTES
        assert not packet.is_ack
        assert packet.payload is None

    def test_make_ack_echoes_metadata(self):
        data = Packet(flow_id=2, seq=10, sent_time=1.5, window_at_send=42.0)
        ack = data.make_ack(now=2.0)
        assert ack.is_ack
        assert ack.flow_id == 2
        assert ack.seq == 10               # trigger sequence (SACK info)
        assert ack.ack_seq == 10           # per-packet acknowledgement
        assert ack.echo_sent_time == 1.5
        assert ack.window_at_send == 42.0
        assert ack.sent_time == 2.0
        assert ack.size == ACK_BYTES

    def test_make_ack_cumulative_override(self):
        data = Packet(flow_id=0, seq=10)
        ack = data.make_ack(now=1.0, ack_seq=11)
        assert ack.ack_seq == 11
        assert ack.seq == 10

    def test_make_ack_propagates_retransmission_flag(self):
        data = Packet(flow_id=0, seq=3, retransmission=True)
        assert data.make_ack(now=0.0).retransmission

    def test_mtu_matches_paper(self):
        """§5.3: 'UDP packets with an MTU size of 1400 bytes'."""
        assert MTU_BYTES == 1400


class TestSlottedPacket:
    def test_slots_no_dict(self):
        packet = Packet(flow_id=0, seq=1)
        with pytest.raises(AttributeError):
            packet.not_a_field = 1
        assert not hasattr(packet, "__dict__")

    def test_equality_compares_all_fields(self):
        a = Packet(flow_id=1, seq=2, sent_time=3.0)
        b = Packet(flow_id=1, seq=2, sent_time=3.0)
        c = Packet(flow_id=1, seq=2, sent_time=4.0)
        assert a == b
        assert a != c
        assert a != "not a packet"

    def test_unhashable_like_the_old_dataclass(self):
        with pytest.raises(TypeError):
            hash(Packet(flow_id=0, seq=0))


class TestPacketPool:
    def test_pooled_ack_matches_fresh_ack(self):
        pool = PacketPool()
        data = Packet(flow_id=3, seq=9, sent_time=1.5, window_at_send=12.0,
                      retransmission=True)
        fresh = data.make_ack(2.0)
        pooled = data.make_ack(2.0, pool=pool)
        assert pooled == fresh
        assert pool.allocated == 1

    def test_recycled_ack_is_fully_reassigned(self):
        pool = PacketPool()
        first = Packet(flow_id=1, seq=5, sent_time=0.5,
                       window_at_send=7.0).make_ack(1.0, pool=pool)
        first.payload = {"stale": True}
        first.ecn = True
        pool.release(first)
        data = Packet(flow_id=2, seq=6, sent_time=2.5, window_at_send=3.0)
        recycled = data.make_ack(3.0, pool=pool)
        assert recycled is first  # actually reused
        assert recycled == data.make_ack(3.0)  # but indistinguishable
        assert recycled.payload is None and recycled.ecn is False
        assert pool.reused == 1

    def test_release_is_bounded(self):
        pool = PacketPool(max_size=2)
        packets = [Packet(flow_id=0, seq=i) for i in range(5)]
        for packet in packets:
            pool.release(packet)
        assert len(pool) == 2

    def test_release_drops_payload_reference(self):
        pool = PacketPool()
        packet = Packet(flow_id=0, seq=0, payload={"acked": [1, 2]})
        pool.release(packet)
        assert packet.payload is None
