"""Tests for the campaign engine: grid expansion, the content-addressed
store, aggregation, and the end-to-end determinism/caching guarantees."""

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    ResultStore,
    TaskSpec,
    aggregate_campaign,
    mean_ci,
    rows_as_json,
    run_campaign,
    run_simulation_task,
)


def tiny_spec(**overrides) -> CampaignSpec:
    defaults = dict(scenarios=["campus_pedestrian"],
                    protocols=["verus", "cubic"], flow_counts=[2],
                    seeds=2, duration=3.0, base_seed=11)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestTaskSpec:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            TaskSpec(scenario="city_driving", protocol="quic", flows=1,
                     duration=5.0, seed=1)

    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            TaskSpec(scenario="the_moon", protocol="verus", flows=1,
                     duration=5.0, seed=1)

    def test_label_defaults_to_protocol(self):
        task = TaskSpec(scenario="city_driving", protocol="cubic", flows=1,
                        duration=5.0, seed=1)
        assert task.label == "cubic"

    def test_dict_round_trip(self):
        task = TaskSpec(scenario="city_driving", protocol="verus", flows=3,
                        duration=5.0, seed=42, label="verus_r2",
                        options={"r": 2.0, "epoch": 0.005})
        assert TaskSpec.from_dict(task.to_dict()) == task

    def test_key_is_stable_and_content_sensitive(self):
        task = TaskSpec(scenario="city_driving", protocol="verus", flows=3,
                        duration=5.0, seed=42, options={"r": 2.0})
        same = TaskSpec.from_dict(task.to_dict())
        assert task.key() == same.key()
        other = TaskSpec(scenario="city_driving", protocol="verus", flows=3,
                         duration=5.0, seed=43, options={"r": 2.0})
        assert task.key() != other.key()

    def test_option_order_does_not_change_key(self):
        a = TaskSpec(scenario="city_driving", protocol="verus", flows=1,
                     duration=5.0, seed=1, options={"r": 2.0, "epoch": 0.01})
        b = TaskSpec(scenario="city_driving", protocol="verus", flows=1,
                     duration=5.0, seed=1, options={"epoch": 0.01, "r": 2.0})
        assert a.key() == b.key()


class TestCampaignSpec:
    def test_expansion_size(self):
        spec = CampaignSpec(scenarios=["campus_pedestrian", "city_driving"],
                            protocols=["verus", "cubic"], flow_counts=[1, 3],
                            seeds=3)
        tasks = spec.expand()
        assert len(tasks) == spec.size() == 2 * 2 * 2 * 3

    def test_seeds_are_deterministic_and_distinct(self):
        tasks_a = tiny_spec().expand()
        tasks_b = tiny_spec().expand()
        assert [t.seed for t in tasks_a] == [t.seed for t in tasks_b]
        assert len({t.seed for t in tasks_a}) == len(tasks_a)

    def test_base_seed_changes_all_task_seeds(self):
        seeds_a = {t.seed for t in tiny_spec(base_seed=1).expand()}
        seeds_b = {t.seed for t in tiny_spec(base_seed=2).expand()}
        assert seeds_a.isdisjoint(seeds_b)

    def test_verus_gets_default_r(self):
        task = next(t for t in tiny_spec().expand() if t.protocol == "verus")
        assert task.options_dict()["r"] == 2.0

    def test_override_variants_get_labels(self):
        spec = tiny_spec(protocols=["verus"],
                         overrides=[{"epoch": 0.005}, {"epoch": 0.05}],
                         override_labels=["e5", "e50"])
        labels = {t.label for t in spec.expand()}
        assert labels == {"verus_e5", "verus_e50"}

    def test_override_labels_length_checked(self):
        with pytest.raises(ValueError):
            tiny_spec(overrides=[{}, {"r": 4.0}], override_labels=["only"])

    def test_short_duration_gets_adaptive_warmup(self):
        task = tiny_spec(duration=4.0).expand()[0]
        assert task.warmup == pytest.approx(0.8)
        long = tiny_spec(duration=60.0).expand()[0]
        assert long.warmup == 5.0


class TestResultStore:
    def test_round_trip_and_accounting(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        assert store.get("ab" * 32) is None
        assert store.misses == 1
        path = store.put("ab" * 32, {"scenario": "x"}, {"value": 3})
        assert path.is_file()
        record = store.get("ab" * 32)
        assert record["result"] == {"value": 3}
        assert record["task"] == {"scenario": "x"}
        assert store.stats() == {"hits": 1, "misses": 1, "writes": 1}
        assert ("ab" * 32) in store
        assert len(store) == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("cd" * 32, {}, {"v": 1})
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ef" * 32
        store.put(key, {}, {"v": 1})
        store._path(key).write_text("{not json")
        assert store.get(key) is None

    def test_format_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "01" * 32
        store.put(key, {}, {"v": 1})
        record = json.loads(store._path(key).read_text())
        record["store_format"] = 999
        store._path(key).write_text(json.dumps(record))
        assert store.get(key) is None

    def test_index_ledger_appended(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("23" * 32, {"scenario": "a", "protocol": "verus"}, {})
        store.put("45" * 32, {"scenario": "b", "protocol": "cubic"}, {})
        lines = (tmp_path / "index.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["scenario"] == "b"


class TestAggregation:
    def test_mean_ci_single_observation(self):
        mean, half = mean_ci([3.0])
        assert mean == 3.0 and half == 0.0

    def test_mean_ci_known_values(self):
        mean, half = mean_ci([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert half == pytest.approx(1.96 * np.std([1, 2, 3], ddof=1)
                                     / np.sqrt(3))

    def test_failures_reported_not_dropped(self):
        tasks = tiny_spec(protocols=["verus"], seeds=2).expand()
        ok_summary = run_simulation_task(tasks[0].to_dict())
        from repro.campaign import TaskOutcome
        outcomes = [
            TaskOutcome(index=0, status="ok", result=ok_summary),
            TaskOutcome(index=1, status="failed", error="boom"),
        ]
        rows = aggregate_campaign(tasks, outcomes)
        assert len(rows) == 1
        assert rows[0]["seeds"] == 2
        assert rows[0]["failures"] == 1
        assert rows[0]["mean_throughput_mbps"] > 0


class TestCampaignEndToEnd:
    """The acceptance guarantees: parallel == serial byte-for-byte, and a
    repeated run is pure cache hits with zero re-execution."""

    def test_parallel_matches_serial_and_resume_is_all_hits(self, tmp_path):
        spec = tiny_spec()
        serial_store = ResultStore(tmp_path / "serial")
        serial = run_campaign(spec, jobs=1, store=serial_store)
        assert serial.all_ok
        assert serial.stats.executed == spec.size()

        parallel_store = ResultStore(tmp_path / "parallel")
        parallel = run_campaign(spec, jobs=4, store=parallel_store)
        assert parallel.all_ok
        serial_rows = rows_as_json(
            aggregate_campaign(serial.tasks, serial.outcomes))
        parallel_rows = rows_as_json(
            aggregate_campaign(parallel.tasks, parallel.outcomes))
        assert serial_rows == parallel_rows   # byte-identical artefact

        resumed = run_campaign(spec, jobs=4, store=serial_store)
        assert resumed.stats.executed == 0
        assert resumed.stats.cached == spec.size()
        assert serial_store.hits == spec.size()
        resumed_rows = rows_as_json(
            aggregate_campaign(resumed.tasks, resumed.outcomes))
        assert resumed_rows == serial_rows

    def test_fresh_ignores_cache(self, tmp_path):
        spec = tiny_spec(protocols=["cubic"], seeds=1)
        store = ResultStore(tmp_path)
        run_campaign(spec, store=store)
        rerun = run_campaign(spec, store=store, resume=False)
        assert rerun.stats.cached == 0
        assert rerun.stats.executed == spec.size()
