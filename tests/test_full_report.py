"""Tests for the one-shot reproduction report generator."""

import pytest

from repro.experiments.full_report import ITEMS, generate_report


class TestGenerateReport:
    def test_unknown_item_rejected(self):
        with pytest.raises(ValueError):
            generate_report(items=["fig99"])

    def test_single_item_report_structure(self):
        text = generate_report(duration=20.0, items=["fig4"])
        assert text.startswith("# Verus reproduction report")
        assert "| fig4 |" in text
        assert "## fig4" in text
        assert "Shape checks passed" in text

    def test_report_marks_pass_fail(self):
        text = generate_report(duration=30.0, items=["fig4"])
        assert "✓" in text or "✗" in text

    def test_registry_nonempty_and_callable(self):
        assert len(ITEMS) >= 8
        for fn in ITEMS.values():
            assert callable(fn)

    def test_two_item_report_counts(self):
        text = generate_report(duration=20.0, items=["fig4", "fig3"])
        header = [l for l in text.splitlines()
                  if l.startswith("Shape checks passed")][0]
        assert "/2" in header

    def test_parallel_jobs_match_serial(self):
        serial = generate_report(duration=20.0, items=["fig4", "fig3"])
        parallel = generate_report(duration=20.0, items=["fig4", "fig3"],
                                   jobs=2)
        # runtimes differ between runs; compare everything else
        def strip_runtime(text):
            return [l.rsplit("|", 2)[0] for l in text.splitlines()]
        assert strip_runtime(serial) == strip_runtime(parallel)


class TestFailurePath:
    def test_crashed_item_becomes_error_row(self, monkeypatch):
        def kaboom(duration):
            raise RuntimeError("figure exploded")
        monkeypatch.setitem(ITEMS, "fig4", kaboom)
        text = generate_report(duration=5.0, items=["fig4", "fig3"])
        assert "ERROR: RuntimeError('figure exploded')" in text
        # the crash did not abort the report: fig3 still reported
        assert "## fig3" in text
        header = [l for l in text.splitlines()
                  if l.startswith("Shape checks passed")][0]
        assert "/2" in header
