"""Tests for the one-shot reproduction report generator."""

import pytest

from repro.experiments.full_report import ITEMS, generate_report


class TestGenerateReport:
    def test_unknown_item_rejected(self):
        with pytest.raises(ValueError):
            generate_report(items=["fig99"])

    def test_single_item_report_structure(self):
        text = generate_report(duration=20.0, items=["fig4"])
        assert text.startswith("# Verus reproduction report")
        assert "| fig4 |" in text
        assert "## fig4" in text
        assert "Shape checks passed" in text

    def test_report_marks_pass_fail(self):
        text = generate_report(duration=30.0, items=["fig4"])
        assert "✓" in text or "✗" in text

    def test_registry_nonempty_and_callable(self):
        assert len(ITEMS) >= 8
        for fn in ITEMS.values():
            assert callable(fn)

    def test_two_item_report_counts(self):
        text = generate_report(duration=20.0, items=["fig4", "fig3"])
        header = [l for l in text.splitlines()
                  if l.startswith("Shape checks passed")][0]
        assert "/2" in header
