"""Tests for the packet-event tracing tap."""

import pytest

from repro.core import VerusConfig, VerusReceiver, VerusSender
from repro.netsim import (
    DelayLine,
    DropTailQueue,
    FlowTracer,
    Link,
    Packet,
    PacketTap,
    Simulator,
)


class TestPacketTap:
    def test_records_and_forwards(self):
        received = []
        tap = PacketTap("x", dst=received.append)
        tap(Packet(flow_id=0, seq=1, sent_time=0.5))
        assert len(received) == 1
        assert tap.records[0].seq == 1
        assert tap.records[0].point == "x"

    def test_uses_clock_when_given(self):
        tap = PacketTap("x", clock=lambda: 42.0)
        tap(Packet(flow_id=0, seq=0))
        assert tap.records[0].time == 42.0

    def test_max_records_bounds_memory(self):
        tap = PacketTap("x", max_records=2)
        for seq in range(5):
            tap(Packet(flow_id=0, seq=seq))
        assert len(tap.records) == 2
        assert tap.dropped_records == 3

    def test_counts_by_kind(self):
        tap = PacketTap("x")
        tap(Packet(flow_id=0, seq=0))
        tap(Packet(flow_id=0, seq=0, is_ack=True))
        assert tap.count() == 2
        assert tap.count(is_ack=True) == 1
        assert tap.count(is_ack=False) == 1

    def test_needs_point_name(self):
        with pytest.raises(ValueError):
            PacketTap("")

    def test_clock_fallback_is_monotone(self):
        """Regression: without a clock, ACK/retransmission events must not
        travel back in time in the exported timeline.

        An ACK's ``sent_time`` is its creation time at the receiver and a
        retransmission's ``sent_time`` is refreshed at resend; stamping
        records with raw ``sent_time`` used to misorder them relative to
        events observed earlier at the same tap.
        """
        tap = PacketTap("x")
        tap(Packet(flow_id=0, seq=0, sent_time=5.0))
        # ACK created earlier than the previously observed event.
        tap(Packet(flow_id=0, seq=1, sent_time=2.0, is_ack=True))
        tap(Packet(flow_id=0, seq=2, sent_time=3.0, retransmission=True))
        times = [r.time for r in tap.records]
        assert times == sorted(times)
        assert times[0] == 5.0 and times[1] >= 5.0 and times[2] >= times[1]

    def test_record_line_format(self):
        tap = PacketTap("sender-out", clock=lambda: 0.00123)
        tap(Packet(flow_id=3, seq=9, size=1400, retransmission=True))
        line = tap.records[0].line()
        assert "sender-out" in line
        assert "flow=3" in line and "seq=9" in line and "RTX" in line


class TestFlowTracer:
    def test_duplicate_point_rejected(self):
        tracer = FlowTracer()
        tracer.tap("a")
        with pytest.raises(ValueError):
            tracer.tap("a")

    def test_hop_delay_over_a_link(self):
        sim = Simulator()
        tracer = FlowTracer()
        sink = []
        exit_tap = tracer.tap("rx-in", dst=sink.append,
                              clock=lambda: sim.now)
        link = Link(sim, rate_bps=8e6, delay=0.010, dst=exit_tap)
        entry_tap = tracer.tap("tx-out", dst=link.send,
                               clock=lambda: sim.now)
        entry_tap(Packet(flow_id=0, seq=0, size=1000))
        sim.run()
        delay = tracer.hop_delay(0, 0, "tx-out", "rx-in")
        assert delay == pytest.approx(0.011)   # 1 ms serialise + 10 ms prop

    def test_timeline_is_time_ordered(self):
        tracer = FlowTracer()
        a = tracer.tap("a", clock=lambda: 2.0)
        b = tracer.tap("b", clock=lambda: 1.0)
        a(Packet(flow_id=0, seq=5))
        b(Packet(flow_id=0, seq=5))
        times = [r.time for r in tracer.timeline(0, 5)]
        assert times == sorted(times)

    def test_export_roundtrip(self, tmp_path):
        tracer = FlowTracer()
        tap = tracer.tap("a", clock=lambda: 0.001)
        for seq in range(3):
            tap(Packet(flow_id=0, seq=seq))
        out = tmp_path / "trace.txt"
        written = tracer.export(out)
        assert written == 3
        assert len(out.read_text().splitlines()) == 3

    def test_tracer_default_clock_inherited_by_taps(self):
        sim = Simulator()
        tracer = FlowTracer(clock=lambda: sim.now)
        tap = tracer.tap("a")
        sim.now = 7.5
        tap(Packet(flow_id=0, seq=0, sent_time=1.0))
        assert tap.records[0].time == 7.5

    def test_export_jsonl_roundtrip(self, tmp_path):
        import json

        tracer = FlowTracer()
        tap = tracer.tap("a", clock=lambda: 0.25)
        tap(Packet(flow_id=1, seq=4, size=1400))
        tap(Packet(flow_id=1, seq=4, size=40, is_ack=True))
        out = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(out)
        assert written == 2
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert rows[0] == {"time": 0.25, "point": "a", "flow_id": 1,
                           "seq": 4, "size": 1400, "is_ack": False,
                           "retransmission": False}
        assert rows[1]["is_ack"] is True
        # JSONL is time-ordered like the text export.
        assert [r["time"] for r in rows] == sorted(r["time"] for r in rows)

    def test_traces_a_live_verus_flow(self):
        """Taps around a Verus flow expose queueing delay per packet."""
        sim = Simulator()
        tracer = FlowTracer()
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)

        rx_tap = tracer.tap("rx-in", dst=receiver.on_data,
                            clock=lambda: sim.now, max_records=5000)
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue(), dst=rx_tap)
        tx_tap = tracer.tap("tx-out", dst=link.send, clock=lambda: sim.now,
                            max_records=5000)
        forward = DelayLine(sim, 0.025, dst=tx_tap)
        reverse = DelayLine(sim, 0.025, dst=sender.on_ack)
        sender.attach(sim, forward.send)
        receiver.attach(sim, reverse.send)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=5.0)

        assert rx_tap.count(is_ack=False) > 100
        # Every hop delay is at least the 1.12 ms serialisation time.
        for seq in (10, 50, 100):
            delay = tracer.hop_delay(0, seq, "tx-out", "rx-in")
            assert delay is not None
            assert delay >= 1400 * 8 / 10e6 - 1e-9
