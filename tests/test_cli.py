"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, main


class TestParsing:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig1" in out and "table1" in out and "fig15" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "fig1" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_registry_covers_all_paper_items(self):
        expected = {f"fig{i}" for i in (1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12,
                                        13, 14, 15)}
        expected |= {"table1", "sensitivity", "shortflows", "uplink",
                     "landscape"}
        assert set(EXPERIMENTS) == expected


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "verus" in out and "cubic" in out

    def test_trace_generation(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        code = main(["trace", "--scenario", "city_driving",
                     "--duration", "5", "--out", str(out_file)])
        assert code == 0
        from repro.cellular import load_trace
        trace = load_trace(out_file)
        assert trace.size > 100
        assert np.all(np.diff(trace) >= 0)

    def test_run_fig3_prints_table(self, capsys):
        assert main(["run", "fig3", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "Fig 3" in out
        assert "avg_delay_on_ms" in out

    def test_run_fig13_prints_jain(self, capsys):
        assert main(["run", "fig13", "--duration", "30"]) == 0
        assert "Jain index" in capsys.readouterr().out


class TestSweep:
    def test_dry_run_prints_grid(self, capsys):
        code = main(["sweep", "--scenario", "city_driving",
                     "--protocol", "verus", "--protocol", "cubic",
                     "--seeds", "2", "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 tasks" in out
        assert "seed_index" in out
        assert out.count("city_driving") == 4

    def test_sweep_runs_then_resumes_from_cache(self, tmp_path, capsys):
        argv = ["sweep", "--scenario", "campus_pedestrian",
                "--protocol", "cubic", "--duration", "4", "--seeds", "2",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "executed: 2" in first and "cached: 0" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "executed: 0" in second and "cached: 2" in second
        assert "2 hits" in second

    def test_sweep_writes_rows_json(self, tmp_path, capsys):
        import json
        out_file = tmp_path / "rows.json"
        code = main(["sweep", "--scenario", "campus_pedestrian",
                     "--protocol", "cubic", "--duration", "4",
                     "--no-cache", "--out", str(out_file)])
        assert code == 0
        rows = json.loads(out_file.read_text())
        assert rows[0]["protocol"] == "cubic"
        assert rows[0]["mean_throughput_mbps"] > 0

    def test_report_accepts_jobs_flag(self, capsys):
        assert main(["report", "--duration", "10", "--items", "fig4",
                     "--jobs", "2"]) == 0
        assert "# Verus reproduction report" in capsys.readouterr().out


class TestSeedFlag:
    def test_run_seed_reproducible_from_shell(self, capsys):
        assert main(["run", "fig2", "--duration", "20", "--seed", "123"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "fig2", "--duration", "20", "--seed", "123"]) == 0
        assert capsys.readouterr().out == first

    def test_run_seed_changes_channel(self, capsys):
        assert main(["run", "fig2", "--duration", "20", "--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "fig2", "--duration", "20", "--seed", "2"]) == 0
        assert capsys.readouterr().out != first

    def test_quickstart_accepts_seed(self, capsys):
        assert main(["quickstart", "--duration", "10", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert "verus" in first
        assert main(["quickstart", "--duration", "10", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first
