"""White-box tests for VerusSender internals: gap timers, retransmission
queue, floor re-base, RTO backoff, probe gating."""

import numpy as np
import pytest

from repro.core import NORMAL, RECOVERY, SLOW_START, VerusConfig, VerusReceiver, VerusSender
from repro.netsim import DelayLine, DropTailQueue, Link, Packet, Simulator


def wire(sender, receiver, rate_bps=10e6, rtt=0.05, queue_bytes=None,
         loss_rate=0.0, seed=0):
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps,
                queue=DropTailQueue(capacity_bytes=queue_bytes),
                loss_rate=loss_rate, rng=np.random.default_rng(seed))
    link.dst = receiver.on_data
    forward = DelayLine(sim, rtt / 2.0, dst=link.send)
    reverse = DelayLine(sim, rtt / 2.0, dst=sender.on_ack)
    sender.attach(sim, forward.send)
    receiver.attach(sim, reverse.send)
    return sim


class TestGapTimers:
    def test_gap_arms_miss_deadline(self):
        sender = VerusSender(0)
        receiver = VerusReceiver(0)
        sim = wire(sender, receiver)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=2.0)
        # Manufacture a gap: ack seq N+2 while N, N+1 outstanding.
        sender.mode = NORMAL
        base = sender._next_seq
        for _ in range(3):
            sender._transmit_new()
        ack = Packet(flow_id=0, seq=base + 2, is_ack=True, ack_seq=base + 2,
                     sent_time=sim.now)
        sender.on_ack(ack)
        assert sender._inflight[base].miss_deadline is not None
        assert sender._inflight[base + 1].miss_deadline is not None

    def test_expired_deadline_declares_loss(self):
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        sim = wire(sender, receiver)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=2.0)
        base = sender._next_seq
        for _ in range(2):
            sender._transmit_new()
        sender._inflight[base].miss_deadline = sim.now - 0.001
        import heapq
        heapq.heappush(sender._miss_heap, (sim.now - 0.001, base))
        losses_before = sender.losses_detected
        sender._check_missing()
        assert sender.losses_detected == losses_before + 1
        assert base in sender._pending_rtx

    def test_acked_packet_cancels_pending_rtx(self):
        sender = VerusSender(0)
        receiver = VerusReceiver(0)
        sim = wire(sender, receiver)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=2.0)
        base = sender._next_seq
        sender._transmit_new()
        sender._queue_retransmission(base)
        assert base in sender._pending_rtx
        sender.on_ack(Packet(flow_id=0, seq=base, is_ack=True, ack_seq=base,
                             sent_time=sim.now))
        assert base not in sender._pending_rtx


class TestEffectiveInflight:
    def test_pending_rtx_excluded(self):
        sender = VerusSender(0)
        receiver = VerusReceiver(0)
        sim = wire(sender, receiver)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=1.0)
        raw = len(sender._inflight)
        if raw == 0:
            sender._transmit_new()
            raw = 1
        seq = next(iter(sender._inflight))
        sender._queue_retransmission(seq)
        assert sender._effective_inflight() == len(sender._inflight) - 1


class TestFloorRebase:
    def test_rebase_fires_after_pin_duration(self):
        config = VerusConfig(floor_rebase_after=0.05)   # 10 epochs
        sender = VerusSender(0, config)
        receiver = VerusReceiver(0)
        sim = wire(sender, receiver)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=2.0)
        est = sender.delay_estimator
        # Simulate a pinned state: tiny floor, high persistent delay.
        est.rebase_floor(0.001, now=sim.now)
        for _ in range(200):
            est.add_sample(0.5, now=sim.now)
            est.end_epoch()
        floor_before = est.d_min
        sender.mode = NORMAL
        for _ in range(30):
            est.add_sample(0.5, now=sim.now)
            sender._normal_epoch()
        assert est.d_min > floor_before   # the floor was re-based upward

    def test_rebase_disabled_when_configured_off(self):
        config = VerusConfig(floor_rebase_after=None)
        sender = VerusSender(0, config)
        assert sender.config.floor_rebase_after is None

    def test_rebase_floor_validates(self):
        from repro.core import DelayEstimator
        est = DelayEstimator()
        with pytest.raises(ValueError):
            est.rebase_floor(0.0)

    def test_rebase_preserves_lifetime_min(self):
        from repro.core import DelayEstimator
        est = DelayEstimator()
        est.add_sample(0.010, now=0.0)
        est.rebase_floor(0.100, now=1.0)
        assert est.d_min == pytest.approx(0.100)
        assert est.lifetime_min == pytest.approx(0.010)


class TestRtoBackoff:
    def test_backoff_doubles_and_caps(self):
        sender = VerusSender(0)
        receiver = VerusReceiver(0)
        sim = wire(sender, receiver, loss_rate=1.0 - 1e-12, seed=1)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=30.0)
        assert sender.timeouts >= 2
        assert sender._rto_backoff <= 64.0

    def test_ack_resets_backoff(self):
        sender = VerusSender(0)
        receiver = VerusReceiver(0)
        sim = wire(sender, receiver)
        sender._rto_backoff = 16.0
        sim.schedule_at(0.0, sender.start)
        sim.run(until=1.0)
        assert sender._rto_backoff == 1.0


class TestWindowStamps:
    def test_packets_carry_current_window(self):
        sender = VerusSender(0)
        seen = []
        sender.attach(Simulator(), seen.append)
        sender.running = True
        sender.window = 42.0
        sender._transmit_new()
        assert seen[0].window_at_send == 42.0

    def test_retransmission_restamps_window(self):
        sender = VerusSender(0)
        seen = []
        sender.attach(Simulator(), seen.append)
        sender.running = True
        sender.window = 10.0
        sender._transmit_new()
        sender.window = 5.0
        sender._retransmit(seen[0].seq)
        assert seen[1].retransmission
        assert seen[1].window_at_send == 5.0
        assert sender._inflight[seen[0].seq].attempts == 1
