"""Unit tests for link models: fixed, delay-line, variable, trace-driven."""

import numpy as np
import pytest

from repro.netsim import (
    DelayLine,
    DropTailQueue,
    Link,
    LinkPhase,
    LinkSchedule,
    Packet,
    Simulator,
    TraceLink,
    VariableLink,
)


def collect():
    sink = []
    return sink, sink.append


class TestDelayLine:
    def test_delivers_after_delay(self):
        sim = Simulator()
        sink, dst = collect()
        line = DelayLine(sim, 0.25, dst=dst)
        line.send(Packet(flow_id=0, seq=0))
        sim.run()
        assert len(sink) == 1
        assert sim.now == 0.25

    def test_zero_delay_delivers_inline(self):
        sim = Simulator()
        sink, dst = collect()
        DelayLine(sim, 0.0, dst=dst).send(Packet(flow_id=0, seq=0))
        assert len(sink) == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(Simulator(), -1.0)


class TestLink:
    def test_serialization_time(self):
        """1000 B at 8 Mbps = 1 ms per packet, plus 10 ms propagation."""
        sim = Simulator()
        sink, dst = collect()
        link = Link(sim, rate_bps=8e6, delay=0.01, dst=dst)
        for i in range(3):
            link.send(Packet(flow_id=0, seq=i, size=1000))
        sim.run()
        assert len(sink) == 3
        assert sim.now == pytest.approx(0.013)

    def test_throughput_matches_rate(self):
        sim = Simulator()
        sink, dst = collect()
        link = Link(sim, rate_bps=10e6, dst=dst)
        n = 1000
        for i in range(n):
            link.send(Packet(flow_id=0, seq=i, size=1250))
        sim.run()
        # 1000 × 1250 B × 8 = 10 Mbit at 10 Mbps → exactly 1 second
        assert sim.now == pytest.approx(1.0)

    def test_queue_overflow_drops(self):
        sim = Simulator()
        sink, dst = collect()
        link = Link(sim, rate_bps=1e6, dst=dst,
                    queue=DropTailQueue(capacity_bytes=3000))
        for i in range(10):
            link.send(Packet(flow_id=0, seq=i, size=1400))
        sim.run()
        assert len(sink) < 10
        assert link.queue.stats.dropped > 0

    def test_stochastic_loss_rate(self):
        sim = Simulator()
        sink, dst = collect()
        link = Link(sim, rate_bps=100e6, dst=dst, loss_rate=0.5,
                    rng=np.random.default_rng(0))
        n = 2000
        for i in range(n):
            link.send(Packet(flow_id=0, seq=i, size=100))
        sim.run()
        assert 0.4 * n < len(sink) < 0.6 * n
        assert link.stochastic_losses == n - len(sink)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), rate_bps=0.0)

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), rate_bps=1e6, loss_rate=1.0)

    def test_missing_destination_raises(self):
        sim = Simulator()
        link = Link(sim, rate_bps=1e9)
        link.send(Packet(flow_id=0, seq=0, size=10))
        with pytest.raises(RuntimeError):
            sim.run()


class TestLinkSchedule:
    def test_phases_validate(self):
        with pytest.raises(ValueError):
            LinkPhase(duration=0.0, rate_bps=1e6, delay=0.0)
        with pytest.raises(ValueError):
            LinkPhase(duration=1.0, rate_bps=0.0, delay=0.0)
        with pytest.raises(ValueError):
            LinkSchedule([])

    def test_random_walk_covers_duration(self):
        schedule = LinkSchedule.random_walk(
            duration=23.0, period=5.0, rate_range_bps=(1e6, 2e6),
            delay_range=(0.01, 0.02), loss_range=(0.0, 0.0),
            rng=np.random.default_rng(0))
        assert schedule.total_duration() == pytest.approx(23.0)
        assert len(schedule.phases) == 5  # 4 × 5s + 1 × 3s

    def test_random_walk_respects_ranges(self):
        schedule = LinkSchedule.random_walk(
            duration=100.0, period=5.0, rate_range_bps=(2e6, 20e6),
            delay_range=(0.005, 0.05), loss_range=(0.0, 0.01),
            rng=np.random.default_rng(1))
        for phase in schedule.phases:
            assert 2e6 <= phase.rate_bps <= 20e6
            assert 0.005 <= phase.delay <= 0.05
            assert 0.0 <= phase.loss_rate <= 0.01


class TestVariableLink:
    def test_conditions_change_on_schedule(self):
        sim = Simulator()
        schedule = LinkSchedule([
            LinkPhase(duration=1.0, rate_bps=1e6, delay=0.01),
            LinkPhase(duration=1.0, rate_bps=5e6, delay=0.02, loss_rate=0.0),
        ], repeat=False)
        link = VariableLink(sim, schedule, dst=lambda p: None)
        assert link.rate_bps == 1e6
        sim.run(until=1.5)
        assert link.rate_bps == 5e6
        assert link.delay == 0.02

    def test_schedule_repeats(self):
        sim = Simulator()
        schedule = LinkSchedule([
            LinkPhase(duration=1.0, rate_bps=1e6, delay=0.0),
            LinkPhase(duration=1.0, rate_bps=2e6, delay=0.0),
        ], repeat=True)
        link = VariableLink(sim, schedule, dst=lambda p: None)
        sim.run(until=2.5)   # back into phase 0
        assert link.rate_bps == 1e6
        assert link.condition_changes == 2

    def test_faster_phase_speeds_delivery(self):
        sim = Simulator()
        sink, dst = collect()
        schedule = LinkSchedule([
            LinkPhase(duration=10.0, rate_bps=1e6, delay=0.0),
        ])
        link = VariableLink(sim, schedule, dst=dst)
        link.send(Packet(flow_id=0, seq=0, size=12_500))  # 0.1 s at 1 Mbps
        sim.run(until=0.2)
        assert len(sink) == 1


class TestTraceLink:
    def test_delivers_at_trace_instants(self):
        sim = Simulator()
        sink, dst = collect()
        link = TraceLink(sim, [0.010, 0.020, 0.030], dst=dst, loop=False)
        for i in range(3):
            link.send(Packet(flow_id=0, seq=i))
        times = []
        link.dst = lambda p: times.append(sim.now)
        sim.run()
        assert times == pytest.approx([0.010, 0.020, 0.030])

    def test_empty_queue_wastes_opportunity(self):
        sim = Simulator()
        sink, dst = collect()
        link = TraceLink(sim, [0.01, 0.02, 0.03], dst=dst, loop=False)
        sim.run(until=0.015)  # first opportunity passes with nothing queued
        link.send(Packet(flow_id=0, seq=0))
        sim.run()
        assert link.wasted_opportunities >= 1
        assert len(sink) == 1

    def test_loop_replays_trace(self):
        sim = Simulator()
        sink, dst = collect()
        link = TraceLink(sim, [0.01, 0.02], dst=dst, loop=True)
        for i in range(6):
            link.send(Packet(flow_id=0, seq=i))
        sim.run(until=0.1)
        assert len(sink) == 6

    def test_propagation_delay_added(self):
        sim = Simulator()
        times = []
        link = TraceLink(sim, [0.010], delay=0.05, loop=False,
                         dst=lambda p: times.append(sim.now))
        link.send(Packet(flow_id=0, seq=0))
        sim.run()
        assert times == pytest.approx([0.060])

    def test_opportunity_respects_byte_budget(self):
        """A 1400 B opportunity cannot carry a 2000 B packet."""
        sim = Simulator()
        sink, dst = collect()
        link = TraceLink(sim, [0.01, 0.02], dst=dst, loop=False,
                         bytes_per_opportunity=1400)
        link.send(Packet(flow_id=0, seq=0, size=2000))
        sim.run()
        assert len(sink) == 0  # never fits

    def test_small_packets_share_opportunity(self):
        sim = Simulator()
        sink, dst = collect()
        link = TraceLink(sim, [0.01], dst=dst, loop=False,
                         bytes_per_opportunity=1400)
        for i in range(3):
            link.send(Packet(flow_id=0, seq=i, size=400))
        sim.run()
        assert len(sink) == 3  # 1200 B fits in one 1400 B slot

    def test_average_rate(self):
        link = TraceLink(Simulator(), np.arange(1, 101) * 0.001,
                         dst=lambda p: None, bytes_per_opportunity=1400)
        # 100 packets over one replay cycle of 100 ms (t=0 .. last)
        expected = 100 * 1400 * 8 / 0.100
        assert link.average_rate_bps() == pytest.approx(expected)

    def test_loop_seam_has_no_dead_span(self):
        """Regression: a trace cut from mid-capture (large first
        timestamp) must loop as a continuation — the next cycle starts
        gap_s after the last opportunity, not after replaying the
        lead-in.  Previously each loop stalled for ~first-timestamp
        seconds, silently lowering the looped rate."""
        sim = Simulator()
        sink, dst = collect()
        trace = [0.500, 0.510, 0.520]   # 20 ms of activity, 500 ms in
        link = TraceLink(sim, trace, dst=dst, loop=True)
        for i in range(30):
            link.send(Packet(flow_id=0, seq=i))
        # 10 cycles of period 0.021 s: all 30 delivered by 0.5 + 9*0.021
        # + 0.020; the old span (0.52 + 0.5) would deliver only 3.
        sim.run(until=0.8)
        assert len(sink) == 30

    def test_looped_rate_matches_average_rate(self):
        """The measured looped delivery rate equals average_rate_bps
        regardless of the trace's absolute start time."""
        sim = Simulator()
        sink, dst = collect()
        trace = np.array([0.300, 0.310, 0.320, 0.330])
        link = TraceLink(sim, trace, dst=dst, loop=True,
                         bytes_per_opportunity=1400)
        cycles = 50
        for i in range(4 * cycles):
            link.send(Packet(flow_id=0, seq=i, size=1400))
        sim.run(until=trace[0] + cycles * link._loop_period())
        elapsed = sim.now - trace[0]
        measured = len(sink) * 1400 * 8 / elapsed
        assert measured == pytest.approx(link.average_rate_bps(), rel=0.05)

    def test_rejects_unsorted_trace(self):
        with pytest.raises(ValueError):
            TraceLink(Simulator(), [0.02, 0.01])

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            TraceLink(Simulator(), [])

    def test_stochastic_loss(self):
        sim = Simulator()
        sink, dst = collect()
        link = TraceLink(sim, np.arange(1, 1001) * 0.001, dst=dst,
                         loop=False, loss_rate=0.3,
                         rng=np.random.default_rng(5))
        for i in range(1000):
            link.send(Packet(flow_id=0, seq=i))
        sim.run()
        assert 600 < len(sink) < 800
