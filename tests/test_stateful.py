"""Stateful (model-based) property tests with hypothesis.

These drive the core data structures through arbitrary operation
sequences and check their invariants after every step — the kind of
testing that catches interleaving bugs unit tests miss.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import DelayEstimator, DelayProfiler, LossHandler
from repro.netsim import DropTailQueue, Packet, Simulator


class QueueMachine(RuleBasedStateMachine):
    """Drop-tail queue vs a reference deque model."""

    def __init__(self):
        super().__init__()
        self.queue = DropTailQueue(capacity_bytes=10_000)
        self.model = []
        self.seq = 0

    @rule(size=st.integers(40, 3000))
    def push(self, size):
        packet = Packet(flow_id=0, seq=self.seq, size=size)
        self.seq += 1
        accepted = self.queue.push(packet, now=0.0)
        expected = sum(p.size for p in self.model) + size <= 10_000
        assert accepted == expected
        if accepted:
            self.model.append(packet)

    @rule()
    def pop(self):
        packet = self.queue.pop(0.0)
        if not self.model:
            assert packet is None
        else:
            expected = self.model.pop(0)
            assert packet is expected

    @invariant()
    def byte_count_matches_model(self):
        assert self.queue.bytes == sum(p.size for p in self.model)

    @invariant()
    def length_matches_model(self):
        assert len(self.queue) == len(self.model)

    @invariant()
    def conservation(self):
        stats = self.queue.stats
        assert stats.enqueued == stats.dequeued + len(self.queue)


class SimulatorMachine(RuleBasedStateMachine):
    """Event engine: time monotone, every live event fires exactly once."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.fired = []
        self.expected = []
        self.cancelled = 0
        self.counter = 0

    @rule(delay=st.floats(0.0, 10.0))
    def schedule(self, delay):
        tag = self.counter
        self.counter += 1
        self.sim.schedule(delay, self.fired.append, tag)
        self.expected.append(tag)

    @rule(delay=st.floats(0.0, 10.0))
    def schedule_and_cancel(self, delay):
        tag = self.counter
        self.counter += 1
        event = self.sim.schedule(delay, self.fired.append, tag)
        event.cancel()
        self.cancelled += 1

    @rule(horizon=st.floats(0.5, 5.0))
    def run_for(self, horizon):
        before = self.sim.now
        self.sim.run(until=self.sim.now + horizon)
        assert self.sim.now >= before

    def teardown(self):
        self.sim.run()   # drain
        assert sorted(self.fired) == sorted(self.expected)


class ProfilerMachine(RuleBasedStateMachine):
    """Delay profiler: bounded size, positive delays, sane lookups."""

    def __init__(self):
        super().__init__()
        self.profiler = DelayProfiler(max_points=32)
        self.now = 0.0

    @rule(window=st.integers(0, 500), delay=st.floats(0.001, 5.0))
    def add(self, window, delay):
        self.now += 0.01
        self.profiler.add_sample(window, delay, now=self.now)

    @rule()
    def rebuild(self):
        self.profiler.interpolate(d_min=0.001, now=self.now)

    @rule(target_delay=st.floats(0.0005, 10.0))
    @precondition(lambda self: self.profiler.ready)
    def lookup(self, target_delay):
        window = self.profiler.window_for_delay(target_delay)
        assert window >= 0.0
        assert np.isfinite(window)

    @invariant()
    def size_bounded(self):
        assert len(self.profiler) <= 32

    @invariant()
    def knots_positive(self):
        for window, delay in self.profiler.knots():
            assert window >= 0 and delay > 0


class LossHandlerMachine(RuleBasedStateMachine):
    """Loss handler: window bounded below, recovery state consistent."""

    def __init__(self):
        super().__init__()
        self.handler = LossHandler(multiplicative_decrease=0.5,
                                   min_window=1.0)

    @rule(w_loss=st.floats(1.0, 10_000.0))
    def loss(self, w_loss):
        window = self.handler.on_loss(w_loss)
        assert window >= 1.0
        assert self.handler.in_recovery

    @rule(window_at_send=st.floats(0.0, 20_000.0))
    @precondition(lambda self: self.handler.in_recovery)
    def ack(self, window_at_send):
        window = self.handler.on_ack_in_recovery(window_at_send)
        assert window >= 1.0

    @invariant()
    def window_only_in_recovery(self):
        if self.handler.in_recovery:
            assert self.handler.window is not None
        else:
            assert self.handler.window is None

    @invariant()
    def counters_sane(self):
        assert self.handler.recoveries_completed <= self.handler.losses


class EstimatorMachine(RuleBasedStateMachine):
    """Delay estimator: D_min <= D_max window relationships hold."""

    def __init__(self):
        super().__init__()
        self.estimator = DelayEstimator(alpha=0.7, min_window=5.0)
        self.now = 0.0
        self.all_delays = []

    @rule(delay=st.floats(0.001, 10.0), dt=st.floats(0.0, 2.0))
    def sample(self, delay, dt):
        self.now += dt
        self.estimator.add_sample(delay, now=self.now)
        self.all_delays.append(delay)

    @rule()
    def close_epoch(self):
        self.estimator.end_epoch()

    @invariant()
    def lifetime_min_is_global_min(self):
        if self.all_delays:
            assert self.estimator.lifetime_min == min(self.all_delays)

    @invariant()
    def windowed_min_at_least_lifetime(self):
        if self.estimator.d_min is not None:
            assert (self.estimator.d_min
                    >= self.estimator.lifetime_min - 1e-12)

    @invariant()
    def dmax_within_sample_range(self):
        if self.estimator.d_max is not None and self.all_delays:
            assert (min(self.all_delays) - 1e-9
                    <= self.estimator.d_max
                    <= max(self.all_delays) + 1e-9)


TestQueueMachine = QueueMachine.TestCase
TestSimulatorMachine = SimulatorMachine.TestCase
TestProfilerMachine = ProfilerMachine.TestCase
TestLossHandlerMachine = LossHandlerMachine.TestCase
TestEstimatorMachine = EstimatorMachine.TestCase

for case in (TestQueueMachine, TestSimulatorMachine, TestProfilerMachine,
             TestLossHandlerMachine, TestEstimatorMachine):
    case.settings = settings(max_examples=25, stateful_step_count=40,
                             deadline=None)
