"""Failure-mode tests for the campaign executor: timeouts, worker
exceptions, flaky-task retries, worker death, and cache-hit skipping.

Task functions live at module level so ``ProcessPoolExecutor`` can
pickle them into worker processes; flaky/crash behaviour is keyed off
sentinel files because pool workers share no Python state with the
test process.
"""

import os
import time
from pathlib import Path

import pytest

from repro.campaign import ResultStore, run_tasks


def echo_task(payload):
    return payload["value"]


def sleep_task(payload):
    time.sleep(payload["sleep"])
    return "slept"


def boom_task(payload):
    raise ValueError(f"boom:{payload['value']}")


def flaky_task(payload):
    """Fails on the first call, succeeds once the sentinel exists."""
    sentinel = Path(payload["sentinel"])
    if not sentinel.exists():
        sentinel.touch()
        raise RuntimeError("transient failure")
    return "recovered"


def crashy_task(payload):
    """Kills its worker process outright — after a short delay, so
    innocent neighbours finish their (faster) tasks first."""
    if payload.get("crash"):
        time.sleep(0.4)
        os._exit(17)
    time.sleep(0.05)
    return payload["value"]


def counting_task(payload):
    """Appends to a ledger file so executions are observable across
    processes, then returns a JSON-safe result."""
    with open(payload["ledger"], "a") as fh:
        fh.write("x")
    return {"value": payload["value"]}


class TestSerialExecution:
    def test_results_in_input_order(self):
        run = run_tasks([{"value": i} for i in range(5)], echo_task)
        assert [o.result for o in run.outcomes] == list(range(5))
        assert run.all_ok
        assert run.stats.executed == 5

    def test_worker_exception_marks_task_failed(self):
        run = run_tasks([{"value": 1}, {"value": 2}], boom_task, retries=0)
        assert [o.status for o in run.outcomes] == ["failed", "failed"]
        assert "boom:1" in run.outcomes[0].error
        assert run.stats.failed == 2

    def test_failure_does_not_stop_siblings(self):
        run = run_tasks([{"value": 1}], boom_task, retries=0)
        ok = run_tasks([{"value": 7}], echo_task)
        assert not run.outcomes[0].ok
        assert ok.outcomes[0].result == 7

    def test_retry_then_succeed(self, tmp_path):
        payload = {"sentinel": str(tmp_path / "s1")}
        run = run_tasks([payload], flaky_task, retries=1, backoff=0.01)
        assert run.outcomes[0].status == "ok"
        assert run.outcomes[0].result == "recovered"
        assert run.outcomes[0].attempts == 2
        assert run.stats.retries == 1

    def test_retries_exhausted(self, tmp_path):
        run = run_tasks([{"value": 9}], boom_task, retries=2, backoff=0.01)
        assert run.outcomes[0].status == "failed"
        assert run.outcomes[0].attempts == 3
        assert run.stats.retries == 2


class TestPooledExecution:
    def test_results_in_input_order(self):
        run = run_tasks([{"value": i} for i in range(6)], echo_task, jobs=3)
        assert [o.result for o in run.outcomes] == list(range(6))
        assert run.stats.executed == 6

    def test_task_timeout(self):
        run = run_tasks([{"sleep": 5.0}, {"sleep": 0.01}], sleep_task,
                        jobs=2, timeout=0.5)
        by_status = {o.status for o in run.outcomes}
        assert run.outcomes[0].status == "timeout"
        assert run.outcomes[1].status == "ok"
        assert "timed out" in run.outcomes[0].error
        assert run.stats.timeouts == 1
        assert by_status == {"timeout", "ok"}

    def test_worker_exception_is_isolated(self):
        payloads = [{"value": 1}, {"value": 2}, {"value": 3}]
        run = run_tasks(payloads, boom_task, jobs=2, retries=0)
        assert all(o.status == "failed" for o in run.outcomes)
        assert run.stats.failed == 3

    def test_retry_then_succeed_across_processes(self, tmp_path):
        payloads = [{"sentinel": str(tmp_path / f"s{i}")} for i in range(3)]
        run = run_tasks(payloads, flaky_task, jobs=2, retries=1, backoff=0.01)
        assert all(o.status == "ok" for o in run.outcomes)
        assert all(o.attempts == 2 for o in run.outcomes)
        assert run.stats.retries == 3

    def test_worker_death_fails_one_task_not_the_campaign(self):
        payloads = [{"crash": True, "value": 0}] + \
                   [{"value": i} for i in range(1, 4)]
        run = run_tasks(payloads, crashy_task, jobs=2, retries=1,
                        backoff=0.01)
        assert run.outcomes[0].status == "failed"
        assert "died" in run.outcomes[0].error
        assert [o.result for o in run.outcomes[1:]] == [1, 2, 3]
        assert run.stats.pool_restarts >= 1


class TestCaching:
    def test_cache_hit_skips_execution(self, tmp_path):
        ledger = tmp_path / "ledger"
        ledger.touch()
        store = ResultStore(tmp_path / "cache")
        payloads = [{"ledger": str(ledger), "value": i} for i in range(3)]
        keys = [f"{i:02d}" * 32 for i in range(3)]

        first = run_tasks(payloads, counting_task, store=store, keys=keys)
        assert first.stats.executed == 3
        assert ledger.read_text() == "xxx"

        second = run_tasks(payloads, counting_task, store=store, keys=keys)
        assert second.stats.cached == 3
        assert second.stats.executed == 0
        assert ledger.read_text() == "xxx"   # no re-execution
        assert [o.result for o in second.outcomes] == \
               [{"value": i} for i in range(3)]

    def test_failed_tasks_are_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        run = run_tasks([{"value": 1}], boom_task, store=store,
                        keys=["aa" * 32], retries=0)
        assert not run.outcomes[0].ok
        assert len(store) == 0


def stuck_task(payload):
    """Sleeps far past any test deadline unless told otherwise."""
    if payload.get("stuck"):
        time.sleep(30.0)
        return "woke"
    time.sleep(0.05)
    return payload["value"]


def crash_once_task(payload):
    """Kills its worker on the first call only (sentinel file), so the
    rebuilt pool survives and in-flight siblings get a clean retry."""
    sentinel = Path(payload["sentinel"])
    if not sentinel.exists():
        sentinel.touch()
        time.sleep(0.4)
        os._exit(17)
    time.sleep(0.05)
    return payload["value"]


class TestTimeoutAcrossPoolRecovery:
    """Regression: a worker stuck inside a task must still be timed out
    after a BrokenProcessPool rebuild, the pool must resume with the
    surviving pending set, and no cell may be double-counted."""

    def test_stuck_worker_survives_pool_break_and_times_out(self, tmp_path):
        # Task 0 kills its worker (breaking the pool, once) while task 1
        # is stuck inside the other worker; tasks 2-4 are queued behind.
        # The break consumes one attempt from both in-flight tasks, so
        # with one retry the stuck task is *requeued onto the rebuilt
        # pool* — where the wall deadline must still catch it.
        payloads = [{"sentinel": str(tmp_path / "c0"), "value": 0},
                    {"stuck": True, "value": 1}] + \
                   [{"value": i} for i in range(2, 5)]
        run = run_tasks(payloads, _mixed_task, jobs=2, retries=1,
                        timeout=2.0, backoff=0.01)
        by_index = {o.index: o for o in run.outcomes}
        assert by_index[0].status == "ok"
        assert by_index[0].result == 0
        assert by_index[0].attempts == 2
        assert by_index[1].status == "timeout"
        assert by_index[1].attempts == 2
        assert [by_index[i].result for i in range(2, 5)] == [2, 3, 4]
        assert run.stats.pool_restarts >= 1
        assert run.stats.timeouts == 1

        # Exactly one outcome per cell, and the stats ledger balances.
        assert sorted(by_index) == list(range(5))
        stats = run.stats
        assert stats.executed + stats.cached + stats.failed \
            + stats.timeouts == stats.total == 5

    def test_no_double_count_after_repeated_breaks(self):
        # Two crashers with a retry each force several pool rebuilds
        # while echo tasks flow through; the executor's double-finish
        # guard raises if any cell is finished twice.
        payloads = [{"crash": True, "value": 0},
                    {"crash": True, "value": 1}] + \
                   [{"value": i} for i in range(2, 8)]
        run = run_tasks(payloads, crashy_task, jobs=2, retries=1,
                        backoff=0.01)
        by_index = {o.index: o for o in run.outcomes}
        assert sorted(by_index) == list(range(8))
        assert by_index[0].status == "failed"
        assert by_index[1].status == "failed"
        assert [by_index[i].result for i in range(2, 8)] == list(range(2, 8))
        stats = run.stats
        assert stats.executed + stats.failed + stats.timeouts \
            + stats.cached == stats.total == 8


def _mixed_task(payload):
    """Module-level dispatcher so the pool can pickle it."""
    if "sentinel" in payload:
        return crash_once_task(payload)
    return stuck_task(payload)


def pid_stuck_task(payload):
    """Writes its worker pid for the test supervisor, then hangs (or
    completes quickly when not the designated offender)."""
    if payload.get("stuck"):
        with open(payload["pidfile"], "w") as fh:
            fh.write(str(os.getpid()))
        time.sleep(30.0)
        return "woke"
    time.sleep(0.05)
    return payload["value"]


class _PidKillSupervisor:
    """Minimal duck-typed supervisor: SIGKILLs whichever worker wrote
    the pidfile and attributes the kill to ``offender`` — enough to
    exercise the executor's blame-aware chunk-casualty path without the
    full watchdog."""

    def __init__(self, pidfile, offender):
        self.pidfile = pidfile
        self.offender = offender
        self._kills = {}
        self._shot = set()

    def wrap(self, index, attempts, payload):
        return payload

    def poll(self):
        import signal
        try:
            pid = int(open(self.pidfile).read())
        except (OSError, ValueError):
            return
        if pid in self._shot:
            return
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            return
        self._shot.add(pid)
        self._kills[self.offender] = "[hang] shot by test supervisor"

    def take_kills(self):
        kills, self._kills = self._kills, {}
        return kills

    def release(self, index):
        pass


class TestChunkedDispatch:
    """The failure matrix again, with several payloads per future: batch
    transport must not change per-task retry/timeout/blame semantics."""

    @pytest.mark.parametrize("chunk", [2, 3])
    def test_results_in_input_order(self, chunk):
        run = run_tasks([{"value": i} for i in range(7)], echo_task,
                        jobs=2, chunk=chunk)
        assert [o.result for o in run.outcomes] == list(range(7))
        assert run.stats.executed == 7

    def test_member_exception_isolated_within_chunk(self):
        payloads = [{"value": 0}, {"value": 1}, {"value": 2}, {"value": 3}]
        run = run_tasks(payloads, crashy_task, jobs=2, chunk=2, retries=0)
        ok = run_tasks([{"value": 0}, {"value": 1}], boom_task,
                       jobs=2, chunk=2, retries=0)
        assert [o.result for o in run.outcomes] == [0, 1, 2, 3]
        assert all(o.status == "failed" for o in ok.outcomes)
        assert "boom:0" in ok.outcomes[0].error
        assert ok.stats.failed == 2

    def test_retry_then_succeed_inside_chunks(self, tmp_path):
        payloads = [{"sentinel": str(tmp_path / f"s{i}")} for i in range(4)]
        run = run_tasks(payloads, flaky_task, jobs=2, chunk=2,
                        retries=1, backoff=0.01)
        assert all(o.status == "ok" for o in run.outcomes)
        assert all(o.attempts == 2 for o in run.outcomes)
        assert run.stats.retries == 4

    def test_chunk_timeout_splits_to_solo_without_burning_attempts(self):
        # Chunk [0,1]: member 0 sleeps past the chunk deadline
        # (timeout x members = 1.0 s) so both members are requeued
        # *solo* with no attempt burned; the sleeper then times out
        # terminally as a singleton while its innocent chunk-mate
        # completes with attempts == 1.
        payloads = [{"sleep": 2.5}, {"sleep": 0.05},
                    {"sleep": 0.05}, {"sleep": 0.05}]
        run = run_tasks(payloads, sleep_task, jobs=2, chunk=2,
                        timeout=0.5, retries=1, backoff=0.01)
        by_index = {o.index: o for o in run.outcomes}
        assert by_index[0].status == "timeout"
        assert by_index[0].attempts == 1          # split burned nothing
        assert "timed out" in by_index[0].error
        for i in (1, 2, 3):
            assert by_index[i].status == "ok"
            assert by_index[i].result == "slept"
            assert by_index[i].attempts == 1
        assert run.stats.timeouts == 1
        assert run.stats.retries == 0
        stats = run.stats
        assert stats.executed + stats.failed + stats.timeouts \
            + stats.cached == stats.total == 4

    def test_worker_death_fails_chunk_mates_unattributed(self):
        # Without a supervisor the break cannot be blamed, so *every*
        # member in flight — including the crasher's innocent chunk-mate
        # — consumes an attempt; with retries=0 both fail while cells in
        # other chunks complete on the rebuilt pool.
        payloads = [{"crash": True, "value": 0}] + \
                   [{"value": i} for i in range(1, 6)]
        run = run_tasks(payloads, crashy_task, jobs=2, chunk=2,
                        retries=0, backoff=0.01)
        by_index = {o.index: o for o in run.outcomes}
        assert by_index[0].status == "failed"
        assert "died" in by_index[0].error
        assert by_index[1].status == "failed"     # rode with the crasher
        assert [by_index[i].result for i in range(2, 6)] == \
            list(range(2, 6))
        assert run.stats.pool_restarts >= 1
        stats = run.stats
        assert stats.executed + stats.failed + stats.timeouts \
            + stats.cached == stats.total == 6

    def test_one_shot_crasher_chunk_recovers_on_retry(self, tmp_path):
        innocents = []
        for i in range(1, 6):
            sentinel = tmp_path / f"ok{i}"
            sentinel.touch()              # pre-armed: never crashes
            innocents.append({"sentinel": str(sentinel), "value": i})
        payloads = [{"sentinel": str(tmp_path / "c0"), "value": 0}] \
            + innocents
        run = run_tasks(payloads, crash_once_task, jobs=2, chunk=2,
                        retries=1, backoff=0.01)
        by_index = {o.index: o for o in run.outcomes}
        assert [by_index[i].result for i in range(6)] == list(range(6))
        assert by_index[0].attempts == 2
        assert run.stats.retries >= 2             # crasher + chunk-mate
        assert run.stats.pool_restarts >= 1
        stats = run.stats
        assert stats.executed + stats.failed + stats.timeouts \
            + stats.cached == stats.total == 6

    def test_supervisor_kill_blames_only_offending_chunk_member(
            self, tmp_path):
        pidfile = str(tmp_path / "pid")
        supervisor = _PidKillSupervisor(pidfile, offender=0)
        payloads = [{"stuck": True, "pidfile": pidfile, "value": 0}] + \
                   [{"value": i} for i in range(1, 4)]
        run = run_tasks(payloads, pid_stuck_task, jobs=2, chunk=2,
                        retries=1, timeout=30.0, backoff=0.01,
                        supervisor=supervisor)
        by_index = {o.index: o for o in run.outcomes}
        assert by_index[0].status == "failed"
        assert "shot by test supervisor" in by_index[0].error
        assert by_index[0].attempts == 2          # offender burned both
        for i in (1, 2, 3):
            assert by_index[i].status == "ok"
            assert by_index[i].result == i
            assert by_index[i].attempts == 1      # innocents never burned
        assert run.stats.retries == 1             # only the offender's
        assert run.stats.pool_restarts >= 2
