"""Validation of the analytical fluid model against simulation."""

import numpy as np
import pytest

from repro.analysis import VerusFluidModel
from repro.core import VerusConfig, VerusReceiver, VerusSender
from repro.metrics import flow_stats
from repro.netsim import DirectPath, DropTailQueue, Link, Simulator


def simulate(rate_bps, rtt, r, duration=40.0):
    # The fluid model describes the paper-literal lifetime D_min: on a
    # steady saturated link a *windowed* minimum slowly absorbs the
    # standing queue (documented deviation, see EXPERIMENTS.md), which
    # would add a drift term outside the first-order model.
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps, queue=DropTailQueue())
    sender = VerusSender(0, VerusConfig(r=r, dmin_window=None))
    receiver = VerusReceiver(0)
    DirectPath(sim, link, sender, receiver, rtt=rtt).run(duration)
    return sender, flow_stats(receiver.deliveries, start=duration / 2,
                              end=duration)


class TestModelAlgebra:
    def test_equilibrium_scales_with_r(self):
        model2 = VerusFluidModel(r=2.0)
        model6 = VerusFluidModel(r=6.0)
        p2 = model2.predict_fixed_link(10e6, 0.05)
        p6 = model6.predict_fixed_link(10e6, 0.05)
        assert p6.equilibrium_rtt == pytest.approx(3 * p2.equilibrium_rtt)
        assert p6.standing_queue_packets == pytest.approx(
            5 * p2.standing_queue_packets)

    def test_queue_zero_at_r_one_limit(self):
        model = VerusFluidModel(r=1.0001)
        p = model.predict_fixed_link(10e6, 0.05)
        assert p.standing_queue_packets == pytest.approx(0.0, abs=0.1)

    def test_known_numbers(self):
        model = VerusFluidModel(r=2.0)
        p = model.predict_fixed_link(11.2e6, 0.05)   # 1000 pkts/s
        assert p.capacity_pps == pytest.approx(1000.0)
        assert p.equilibrium_rtt == pytest.approx(0.1)
        assert p.equilibrium_window == pytest.approx(100.0)
        assert p.standing_queue_packets == pytest.approx(50.0)

    def test_one_way_delay_composition(self):
        p = VerusFluidModel(r=2.0).predict_fixed_link(10e6, 0.05)
        assert p.one_way_delay() == pytest.approx(0.025 + 0.05)

    def test_required_r(self):
        model = VerusFluidModel()
        assert model.required_r_for_delay(0.05, 0.2) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            model.required_r_for_delay(0.05, 0.04)

    def test_drain_margin_grows_with_r(self):
        lo = VerusFluidModel(r=2.0).drain_margin(10e6, 0.05)
        hi = VerusFluidModel(r=6.0).drain_margin(10e6, 0.05)
        assert hi == pytest.approx(5 * lo)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VerusFluidModel(r=1.0)
        with pytest.raises(ValueError):
            VerusFluidModel().predict_fixed_link(0.0, 0.05)


class TestModelVsSimulation:
    """The model must predict the simulation within first-order accuracy."""

    @pytest.mark.parametrize("r", [2.0, 4.0])
    def test_one_way_delay_prediction(self, r):
        rate, rtt = 10e6, 0.05
        prediction = VerusFluidModel(r=r).predict_fixed_link(rate, rtt)
        _, stats = simulate(rate, rtt, r)
        predicted = prediction.one_way_delay()
        assert stats.mean_delay == pytest.approx(predicted, rel=0.5)

    def test_throughput_prediction(self):
        rate, rtt = 10e6, 0.05
        prediction = VerusFluidModel(r=2.0).predict_fixed_link(rate, rtt)
        _, stats = simulate(rate, rtt, 2.0)
        predicted_bps = prediction.throughput_pps * 1400 * 8
        assert stats.throughput_bps > 0.85 * predicted_bps

    def test_window_prediction(self):
        rate, rtt = 10e6, 0.05
        prediction = VerusFluidModel(r=2.0).predict_fixed_link(rate, rtt)
        sender, _ = simulate(rate, rtt, 2.0)
        assert sender.window == pytest.approx(
            prediction.equilibrium_window, rel=0.6)

    def test_delay_ordering_matches_model_across_r(self):
        """Model says delay is linear in R; simulation must be monotone
        and roughly proportional."""
        delays = {}
        for r in (2.0, 4.0, 6.0):
            _, stats = simulate(10e6, 0.05, r)
            delays[r] = stats.mean_delay
        assert delays[2.0] < delays[4.0] < delays[6.0]
        # One-way queueing delay scales ~(R-1): compare 6 vs 2.
        queueing_2 = delays[2.0] - 0.025
        queueing_6 = delays[6.0] - 0.025
        assert queueing_6 / queueing_2 == pytest.approx(5.0, rel=0.6)
