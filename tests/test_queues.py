"""Unit and property tests for the queue disciplines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import CoDelQueue, DropTailQueue, Packet, REDQueue


def make_packet(seq=0, size=1400):
    return Packet(flow_id=0, seq=seq, size=size)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue()
        for i in range(5):
            assert q.push(make_packet(seq=i), now=0.0)
        assert [q.pop(0.0).seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty_returns_none(self):
        assert DropTailQueue().pop(0.0) is None

    def test_capacity_enforced_in_bytes(self):
        q = DropTailQueue(capacity_bytes=3000)
        assert q.push(make_packet(0, 1400), 0.0)
        assert q.push(make_packet(1, 1400), 0.0)
        assert not q.push(make_packet(2, 1400), 0.0)  # 4200 > 3000
        assert q.stats.dropped == 1

    def test_byte_count_tracks_contents(self):
        q = DropTailQueue()
        q.push(make_packet(0, 1000), 0.0)
        q.push(make_packet(1, 500), 0.0)
        assert q.bytes == 1500
        q.pop(0.0)
        assert q.bytes == 500

    def test_unbounded_by_default(self):
        q = DropTailQueue()
        for i in range(10_000):
            assert q.push(make_packet(i), 0.0)
        assert len(q) == 10_000

    def test_enqueue_time_stamped(self):
        q = DropTailQueue()
        pkt = make_packet()
        q.push(pkt, now=3.25)
        assert pkt.enqueue_time == 3.25

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_bytes=0)

    def test_peek_does_not_remove(self):
        q = DropTailQueue()
        q.push(make_packet(7), 0.0)
        assert q.peek().seq == 7
        assert len(q) == 1

    def test_clear(self):
        q = DropTailQueue()
        q.push(make_packet(), 0.0)
        q.clear()
        assert len(q) == 0 and q.bytes == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(40, 9000), min_size=1, max_size=60))
    def test_property_conservation(self, sizes):
        """enqueued == dequeued + still-queued, in packets and bytes."""
        q = DropTailQueue(capacity_bytes=20_000)
        for i, size in enumerate(sizes):
            q.push(make_packet(i, size), 0.0)
        popped = 0
        while q.pop(0.0) is not None:
            popped += 1
        stats = q.stats
        assert stats.enqueued == popped
        assert stats.enqueued + stats.dropped == len(sizes)
        assert stats.bytes_enqueued == stats.bytes_dequeued


class TestRed:
    def test_paper_config_thresholds(self):
        q = REDQueue.paper_config()
        assert q.min_th == 3_000_000 // 8
        assert q.max_th == 9_000_000 // 8
        assert q.max_p == 0.1

    def test_no_drops_below_min_threshold(self):
        q = REDQueue(min_th_bytes=100_000, max_th_bytes=300_000,
                     rng=np.random.default_rng(1))
        for i in range(50):  # 70 KB < min threshold
            assert q.push(make_packet(i), float(i) * 0.001)
        assert q.stats.dropped == 0

    def test_drops_under_sustained_overload(self):
        q = REDQueue(min_th_bytes=20_000, max_th_bytes=60_000,
                     max_p=0.1, rng=np.random.default_rng(2))
        accepted = 0
        for i in range(2000):
            if q.push(make_packet(i), 0.0):
                accepted += 1
        assert q.stats.dropped > 0
        assert accepted < 2000

    def test_average_tracks_queue_growth(self):
        q = REDQueue(min_th_bytes=50_000, max_th_bytes=150_000,
                     rng=np.random.default_rng(3))
        for i in range(100):
            q.push(make_packet(i), 0.0)
        assert q.avg > 0

    def test_idle_decay_reduces_average(self):
        q = REDQueue(min_th_bytes=10_000, max_th_bytes=50_000,
                     rng=np.random.default_rng(4))
        for i in range(30):
            q.push(make_packet(i), 0.0)
        while q.pop(1.0) is not None:
            pass
        avg_before = q.avg
        q.push(make_packet(99), 10.0)  # long idle gap
        assert q.avg < avg_before

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            REDQueue(min_th_bytes=100, max_th_bytes=100)
        with pytest.raises(ValueError):
            REDQueue(min_th_bytes=100, max_th_bytes=200, max_p=0.0)

    def test_hard_capacity_default(self):
        q = REDQueue(min_th_bytes=1000, max_th_bytes=2000)
        assert q.capacity_bytes == 4000

    def test_deterministic_with_seeded_rng(self):
        def run(seed):
            q = REDQueue(min_th_bytes=10_000, max_th_bytes=30_000,
                         rng=np.random.default_rng(seed))
            return [q.push(make_packet(i), 0.0) for i in range(200)]
        assert run(7) == run(7)


class TestCoDel:
    def test_no_drops_at_low_delay(self):
        q = CoDelQueue(target=0.005, interval=0.1)
        now = 0.0
        for i in range(100):
            q.push(make_packet(i), now)
            pkt = q.pop(now + 0.001)  # 1 ms sojourn < 5 ms target
            assert pkt is not None
            now += 0.002
        assert q.stats.dropped == 0

    def test_drops_after_sustained_high_delay(self):
        q = CoDelQueue(target=0.005, interval=0.05)
        # Fill the queue, then drain slowly so sojourn stays high.
        for i in range(500):
            q.push(make_packet(i), float(i) * 0.0001)
        now = 1.0
        drained = 0
        while True:
            pkt = q.pop(now)
            if pkt is None:
                break
            drained += 1
            now += 0.01
        assert q.stats.dropped > 0
        assert drained + q.stats.dropped == 500

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CoDelQueue(target=0.0)
