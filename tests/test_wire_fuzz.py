"""Fuzz and property tests for the hardened wire format and the
impairment links.

The wire contract after hardening: :func:`decode_packet` either returns
a :class:`Packet` or raises :class:`WireFormatError` (or a subclass) —
never any other exception — no matter what bytes arrive.  The trailing
CRC-32 covers the whole datagram, so *any* single-bit flip and *any*
truncation of a valid datagram is rejected deterministically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live import (
    WireChecksumError,
    WireFormatError,
    WireTruncatedError,
    decode_packet,
    encode_packet,
    header_size,
)
from repro.netsim import Packet, Simulator
from repro.netsim.impairments import (
    DuplicatingLink,
    JitterLink,
    ReorderingLink,
)


def _sample_datagram(payload=None, size=96):
    packet = Packet(flow_id=2, seq=41, size=size, sent_time=1.5,
                    window_at_send=12.0)
    if payload is not None:
        packet.payload = payload
    return encode_packet(packet)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------

class TestWireFuzz:
    @given(st.binary(max_size=256))
    @settings(max_examples=300, deadline=None)
    def test_random_bytes_raise_only_wire_format_error(self, data):
        try:
            decode_packet(data)
        except WireFormatError:
            pass    # the only permitted failure mode

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_random_suffix_on_valid_header_still_contained(self, tail):
        data = _sample_datagram()
        try:
            decode_packet(data + tail)
        except WireFormatError:
            pass

    def test_every_truncation_is_rejected_as_truncated(self):
        data = _sample_datagram(payload={"acked": [1, 2, 3]})
        for cut in range(len(data)):
            with pytest.raises(WireTruncatedError):
                decode_packet(data[:cut])

    def test_every_single_bit_flip_is_rejected(self):
        # Full-datagram CRC-32: no single-bit error can slip through,
        # wherever it lands (header, padding, payload or the CRC itself).
        data = _sample_datagram(payload={"acked": [7]})
        for byte in range(len(data)):
            for bit in range(8):
                mutated = bytearray(data)
                mutated[byte] ^= 1 << bit
                with pytest.raises(WireFormatError):
                    decode_packet(bytes(mutated))

    def test_checksum_error_is_distinguishable(self):
        data = bytearray(_sample_datagram())
        data[-1] ^= 0x40    # flip inside padding: only the CRC notices
        with pytest.raises(WireChecksumError):
            decode_packet(bytes(data))

    @given(flow_id=st.integers(min_value=0, max_value=65535),
           seq=st.integers(min_value=0, max_value=2**40),
           size=st.integers(min_value=1, max_value=1500),
           sent_time=st.floats(min_value=0.0, max_value=1e6,
                               allow_nan=False),
           window=st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, flow_id, seq, size, sent_time,
                                 window):
        packet = Packet(flow_id=flow_id, seq=seq, size=size,
                        sent_time=sent_time, window_at_send=window)
        out = decode_packet(encode_packet(packet))
        assert (out.flow_id, out.seq, out.size) == (flow_id, seq, size)
        assert out.sent_time == sent_time
        assert out.window_at_send == window

    @given(acked=st.lists(st.integers(min_value=0, max_value=2**31),
                          max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_payload_round_trip(self, acked):
        data = _sample_datagram(payload={"acked": acked},
                                size=header_size())
        assert decode_packet(data).payload == {"acked": acked}


# ----------------------------------------------------------------------
# Impairment-link properties
# ----------------------------------------------------------------------

def _feed(link, count, spacing=0.001):
    sim = link.sim
    arrivals = []
    link.dst = lambda p: arrivals.append((sim.now, p.seq))
    for seq in range(count):
        sim.schedule_at(seq * spacing, link.send, Packet(flow_id=0, seq=seq))
    sim.run()
    return arrivals


class TestImpairmentProperties:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           count=st.integers(min_value=1, max_value=60),
           jitter=st.floats(min_value=1e-4, max_value=0.05,
                            allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_jitter_link_conserves_and_bounds_delay(self, seed, count,
                                                    jitter):
        sim = Simulator()
        link = JitterLink(sim, base_delay=0.01, jitter=jitter,
                          rng=np.random.default_rng(seed))
        arrivals = _feed(link, count)
        assert sorted(seq for _, seq in arrivals) == list(range(count))
        for arrival, seq in arrivals:
            extra = arrival - seq * 0.001 - 0.01
            assert -1e-9 <= extra <= jitter + 1e-9

    @given(count=st.integers(min_value=1, max_value=80),
           every_n=st.integers(min_value=2, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_reordering_link_conserves_and_bounds_hold(self, count,
                                                       every_n):
        sim = Simulator()
        link = ReorderingLink(sim, delay=0.01, every_n=every_n,
                              hold_time=0.005)
        arrivals = _feed(link, count)
        assert sorted(seq for _, seq in arrivals) == list(range(count))
        assert link.reordered == count // every_n
        for arrival, seq in arrivals:
            extra = arrival - seq * 0.001 - 0.01
            assert -1e-9 <= extra <= 0.005 + 1e-9

    @given(count=st.integers(min_value=1, max_value=80),
           every_n=st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_duplicating_link_adds_exactly_the_duplicates(self, count,
                                                          every_n):
        sim = Simulator()
        link = DuplicatingLink(sim, delay=0.01, every_n=every_n)
        arrivals = _feed(link, count)
        assert len(arrivals) == count + count // every_n
        assert link.duplicated == count // every_n
        # Every sequence number still arrives at least once.
        assert set(seq for _, seq in arrivals) == set(range(count))
