"""Tests for the cellular channel model, scenarios, bursts, and trace I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular import (
    CellularChannelModel,
    ChannelParams,
    CompetingUser,
    SCENARIO_NAMES,
    detect_bursts,
    generate_scenario_trace,
    load_trace,
    log_pdf,
    mobile_variant,
    operator_presets,
    save_trace,
    scale_trace,
    scenario_params,
    trace_rate_bps,
    concatenate_traces,
)


class TestChannelParams:
    def test_defaults_valid(self):
        params = ChannelParams()
        assert params.mean_packets_per_tti > 0
        assert params.mean_burst_packets > 0

    def test_mean_burst_consistent_with_rate(self):
        params = ChannelParams(mean_rate_bps=11.2e6, serve_prob=0.5,
                               packet_bytes=1400)
        # 11.2 Mbps = 1000 packets/s = 1 packet/TTI; with p=0.5 the mean
        # burst must be 2 packets to average out.
        assert params.mean_packets_per_tti == pytest.approx(1.0)
        assert params.mean_burst_packets == pytest.approx(2.0)

    def test_invalid_technology(self):
        with pytest.raises(ValueError):
            ChannelParams(technology="5g")

    def test_invalid_serve_prob(self):
        with pytest.raises(ValueError):
            ChannelParams(serve_prob=0.0)

    def test_peak_below_mean_rejected(self):
        with pytest.raises(ValueError):
            ChannelParams(mean_rate_bps=100e6, peak_rate_bps=10e6)

    def test_with_rate(self):
        params = ChannelParams().with_rate(5e6)
        assert params.mean_rate_bps == 5e6


class TestGeneration:
    def test_trace_sorted_and_in_range(self):
        model = CellularChannelModel(ChannelParams(),
                                     rng=np.random.default_rng(0))
        trace = model.generate(10.0)
        assert np.all(np.diff(trace) >= 0)
        assert trace[0] >= 0 and trace[-1] <= 10.0

    def test_mean_rate_approximately_hit(self):
        params = ChannelParams(mean_rate_bps=10e6, fading_sigma=0.1,
                               fast_fading_sigma=0.05)
        model = CellularChannelModel(params, rng=np.random.default_rng(1))
        trace = model.generate(60.0)
        rate = trace_rate_bps(trace)
        assert 0.6 * 10e6 < rate < 1.4 * 10e6

    def test_deterministic_per_seed(self):
        def gen(seed):
            model = CellularChannelModel(ChannelParams(),
                                         rng=np.random.default_rng(seed))
            return model.generate(5.0)
        assert np.array_equal(gen(3), gen(3))
        assert not np.array_equal(gen(3), gen(4))

    def test_invalid_duration(self):
        model = CellularChannelModel(ChannelParams())
        with pytest.raises(ValueError):
            model.generate(0.0)

    def test_outages_create_long_gaps(self):
        base = ChannelParams(outage_rate=0.0)
        outage = ChannelParams(outage_rate=0.5, outage_duration=1.0)
        gap = lambda p, s: np.max(np.diff(CellularChannelModel(
            p, rng=np.random.default_rng(s)).generate(60.0)))
        assert gap(outage, 5) > gap(base, 5)

    def test_competing_user_reduces_rate(self):
        params = ChannelParams(mean_rate_bps=20e6)
        alone = CellularChannelModel(params, rng=np.random.default_rng(7))
        contended = CellularChannelModel(params, rng=np.random.default_rng(7))
        competitor = CompetingUser(rate_bps=10e6)
        free = alone.generate(30.0)
        busy = contended.generate(30.0, capacity_bps=20e6,
                                  competitors=[competitor])
        assert busy.size < free.size * 0.8


class TestCompetingUser:
    def test_always_on_by_default(self):
        user = CompetingUser(rate_bps=1e6)
        assert user.demand_at(0.0) == 1e6
        assert user.demand_at(1e9) == 1e6

    def test_on_off_square_wave(self):
        user = CompetingUser.on_off(rate_bps=1e6, period=60.0,
                                    duration=240.0, start_on=False)
        assert user.demand_at(30.0) == 0.0     # first minute off
        assert user.demand_at(90.0) == 1e6     # second minute on
        assert user.demand_at(150.0) == 0.0
        assert user.demand_at(210.0) == 1e6

    def test_start_on_flips_phase(self):
        user = CompetingUser.on_off(rate_bps=1e6, period=60.0,
                                    duration=240.0, start_on=True)
        assert user.demand_at(30.0) == 1e6


class TestScenarios:
    def test_all_seven_paper_scenarios_exist(self):
        assert len(SCENARIO_NAMES) == 7
        for name in SCENARIO_NAMES:
            params = scenario_params(name)
            assert params.mean_rate_bps > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            scenario_params("underwater")

    def test_mobility_increases_fading(self):
        stationary = scenario_params("campus_stationary")
        highway = scenario_params("highway_driving")
        assert highway.fading_sigma > stationary.fading_sigma
        assert highway.outage_rate > stationary.outage_rate

    def test_lte_more_frequent_smaller_bursts_than_3g(self):
        """The Fig 2 observation, as a generated-trace property."""
        t3g = generate_scenario_trace("city_stationary", duration=60.0,
                                      technology="3g", mean_rate_bps=8e6,
                                      seed=0)
        lte = generate_scenario_trace("city_stationary", duration=60.0,
                                      technology="lte", mean_rate_bps=8e6,
                                      seed=0)
        bursts_3g = detect_bursts(t3g)
        bursts_lte = detect_bursts(lte)
        assert bursts_lte.count > bursts_3g.count
        assert (np.mean(bursts_lte.sizes_bytes)
                < np.mean(bursts_3g.sizes_bytes))

    def test_operator_presets_cover_fig2(self):
        presets = operator_presets()
        assert set(presets) == {"du_3g", "etisalat_3g", "du_lte",
                                "etisalat_lte"}

    def test_mobile_variant_changes_class(self):
        base = scenario_params("campus_stationary")
        driving = mobile_variant(base, "driving")
        assert driving.fading_sigma > base.fading_sigma
        with pytest.raises(ValueError):
            mobile_variant(base, "flying")

    def test_default_rates_match_paper(self):
        """§5.3: 5 Mbps downlink on 3G HSPA+, 2.5 Mbps uplink."""
        from repro.cellular import DEFAULT_RATE_BPS, UPLINK_RATE_BPS
        assert DEFAULT_RATE_BPS["3g"] == 5e6
        assert UPLINK_RATE_BPS["3g"] == 2.5e6


class TestBursts:
    def test_single_burst(self):
        times = np.array([0.0, 0.0001, 0.0002])
        stats = detect_bursts(times, gap_threshold=0.001)
        assert stats.count == 1
        assert stats.sizes_bytes[0] == 3 * 1400

    def test_gap_splits_bursts(self):
        times = np.array([0.0, 0.0001, 0.010, 0.0101])
        stats = detect_bursts(times, gap_threshold=0.001)
        assert stats.count == 2
        assert list(stats.sizes_bytes) == [2800.0, 2800.0]
        assert stats.inter_arrivals[0] == pytest.approx(0.010)

    def test_empty_trace(self):
        stats = detect_bursts(np.array([]))
        assert stats.count == 0
        assert stats.summary() == {"bursts": 0}

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            detect_bursts(np.array([0.1, 0.05]))

    def test_log_pdf_integrates_to_one(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(8, 1, size=5000)
        centers, density = log_pdf(values, bins=50)
        edges_width = np.diff(np.logspace(np.log10(values.min()),
                                          np.log10(values.max()), 51))
        assert np.sum(density * edges_width) == pytest.approx(1.0, rel=0.05)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=200))
    def test_property_burst_sizes_conserve_packets(self, raw):
        times = np.sort(np.asarray(raw))
        stats = detect_bursts(times, gap_threshold=0.005)
        assert stats.sizes_bytes.sum() == times.size * 1400


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        trace = np.array([0.001, 0.005, 0.005, 0.020])
        path = tmp_path / "trace.txt"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert np.allclose(loaded, trace)

    def test_millisecond_quantisation(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, np.array([0.0014]))
        assert load_trace(path)[0] == pytest.approx(0.001)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n10\n\n20\n")
        assert np.allclose(load_trace(path), [0.010, 0.020])

    def test_bad_line_raises_with_location(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("10\nnope\n")
        with pytest.raises(ValueError, match="line 2"):
            load_trace(path)

    def test_unsorted_file_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("20\n10\n")
        with pytest.raises(ValueError, match="sorted"):
            load_trace(path)

    def test_concatenate_shifts_to_sequence(self):
        a = np.array([0.0, 1.0])
        b = np.array([5.0, 6.0])
        joined = concatenate_traces(a, b, gap_s=0.5)
        assert np.allclose(joined, [0.0, 1.0, 1.5, 2.5])

    def test_scale_trace(self):
        assert np.allclose(scale_trace(np.array([1.0, 2.0]), 0.5),
                           [0.5, 1.0])
        with pytest.raises(ValueError):
            scale_trace(np.array([1.0]), 0.0)


class TestUplink:
    def test_uplink_defaults_to_uplink_rate(self):
        params = scenario_params("campus_stationary", technology="3g",
                                 direction="uplink")
        assert params.mean_rate_bps == 2.5e6   # §5.3 uplink provisioning

    def test_uplink_sparser_grants(self):
        down = scenario_params("campus_stationary", direction="downlink")
        up = scenario_params("campus_stationary", direction="uplink")
        assert up.serve_prob < down.serve_prob

    def test_uplink_trace_generates(self):
        trace = generate_scenario_trace("city_driving", duration=20.0,
                                        direction="uplink", seed=2)
        assert trace.size > 100
        rate = trace_rate_bps(trace)
        assert 1e6 < rate < 4e6

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            scenario_params("campus_stationary", direction="sideways")
