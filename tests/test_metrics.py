"""Tests for flow statistics and fairness metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    aggregate_stats,
    delay_cdf,
    flow_stats,
    jain_index,
    windowed_delay,
    windowed_jain_index,
    windowed_throughput,
    worst_case_index,
)


def deliveries(times, delay=0.05, size=1400):
    return [(t, i, delay, size) for i, t in enumerate(times)]


class TestFlowStats:
    def test_throughput_from_bytes_and_duration(self):
        rows = deliveries(np.linspace(0.0, 9.999, 1000))
        stats = flow_stats(rows, start=0.0, end=10.0)
        assert stats.throughput_bps == pytest.approx(1000 * 1400 * 8 / 10.0)

    def test_warmup_excluded(self):
        rows = deliveries([1.0, 2.0, 11.0])
        stats = flow_stats(rows, start=10.0, end=12.0)
        assert stats.packets_received == 1

    def test_delay_percentiles(self):
        rows = [(float(i), i, d, 1400)
                for i, d in enumerate(np.linspace(0.01, 0.1, 100))]
        stats = flow_stats(rows, end=100.0)
        assert stats.median_delay == pytest.approx(0.055, abs=0.002)
        assert stats.p95_delay == pytest.approx(0.0955, abs=0.002)
        assert stats.max_delay == pytest.approx(0.1)

    def test_empty_window_gives_nan_delay(self):
        stats = flow_stats([], start=0.0, end=10.0)
        assert stats.throughput_bps == 0.0
        assert np.isnan(stats.mean_delay)

    def test_as_dict_round_numbers(self):
        rows = deliveries([0.5], delay=0.0501)
        d = flow_stats(rows, end=1.0, label="x").as_dict()
        assert d["label"] == "x"
        assert d["mean_delay_ms"] == 50.1

    def test_to_dict_round_trips_through_json(self):
        import json

        from repro.metrics import FlowStats
        rows = deliveries(np.linspace(0.0, 9.9, 500), delay=0.042)
        stats = flow_stats(rows, flow_id=3, label="verus", end=10.0)
        payload = json.loads(json.dumps(stats.to_dict()))
        assert FlowStats.from_dict(payload) == stats

    def test_to_dict_round_trips_nan_delays(self):
        import json

        from repro.metrics import FlowStats
        stats = flow_stats([], start=0.0, end=10.0)
        body = json.dumps(stats.to_dict(), allow_nan=False)  # strict JSON
        restored = FlowStats.from_dict(json.loads(body))
        assert np.isnan(restored.mean_delay)
        assert restored.throughput_bps == 0.0
        assert restored.duration == stats.duration


class TestWindowedSeries:
    def test_throughput_binning(self):
        rows = deliveries([0.1, 0.2, 1.5])
        t, series = windowed_throughput(rows, window=1.0, end=2.0)
        assert len(series) == 2
        assert series[0] == pytest.approx(2 * 1400 * 8 / 1.0)
        assert series[1] == pytest.approx(1 * 1400 * 8 / 1.0)

    def test_empty_deliveries(self):
        t, series = windowed_throughput([], window=1.0)
        assert t.size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            windowed_throughput(deliveries([1.0]), window=0.0)

    def test_delay_aggregates(self):
        rows = [(0.1, 0, 0.02, 1400), (0.2, 1, 0.08, 1400),
                (1.5, 2, 0.05, 1400)]
        _, mean = windowed_delay(rows, 1.0, end=2.0, agg="mean")
        _, mx = windowed_delay(rows, 1.0, end=2.0, agg="max")
        assert mean[0] == pytest.approx(0.05)
        assert mx[0] == pytest.approx(0.08)
        assert mean[1] == pytest.approx(0.05)

    def test_delay_empty_window_is_nan(self):
        rows = [(0.1, 0, 0.02, 1400)]
        _, series = windowed_delay(rows, 1.0, end=3.0)
        assert np.isnan(series[1]) and np.isnan(series[2])

    def test_delay_invalid_agg(self):
        with pytest.raises(ValueError):
            windowed_delay(deliveries([0.1]), 1.0, agg="median")

    def test_cdf_monotone(self):
        rows = deliveries([0.1, 0.2, 0.3], delay=0.05)
        xs, fs = delay_cdf(rows)
        assert fs[-1] == 1.0
        assert np.all(np.diff(fs) >= 0)


class TestJain:
    def test_perfect_fairness(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_worst_case(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert worst_case_index(4) == 0.25

    def test_known_value(self):
        # (1+2+3)²/(3·(1+4+9)) = 36/42
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(36 / 42)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([-1.0, 1.0])

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(0.0, 1e9), min_size=1, max_size=30))
    def test_property_bounds(self, xs):
        """Jain's index always lies in [1/n, 1]."""
        index = jain_index(xs)
        assert 1.0 / len(xs) - 1e-9 <= index <= 1.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.001, 1e6), min_size=2, max_size=10),
           st.floats(0.1, 100.0))
    def test_property_scale_invariant(self, xs, k):
        assert jain_index(xs) == pytest.approx(
            jain_index([x * k for x in xs]), rel=1e-6)


class TestWindowedJain:
    def test_equal_flows_fair(self):
        flows = {0: deliveries(np.arange(0, 10, 0.1)),
                 1: deliveries(np.arange(0, 10, 0.1))}
        assert windowed_jain_index(flows, end=10.0) == pytest.approx(1.0)

    def test_alternating_flows_unfair_per_window(self):
        """Two flows alternating full-second bursts: per-window Jain is
        0.5 even though long-run totals are equal — this is exactly why
        the paper windows the metric."""
        a = deliveries(np.arange(0.0, 1.0, 0.01))
        b = deliveries(np.arange(1.0, 2.0, 0.01))
        result = windowed_jain_index({0: a, 1: b}, window=1.0, end=2.0)
        assert result == pytest.approx(0.5, abs=0.01)

    def test_empty_windows_skipped(self):
        flows = {0: deliveries([0.5]), 1: deliveries([0.4])}
        # windows after t=1 are empty for both and must not dilute
        result = windowed_jain_index(flows, window=1.0, end=10.0)
        assert result == pytest.approx(1.0)

    def test_requires_flows(self):
        with pytest.raises(ValueError):
            windowed_jain_index({})


class TestAggregate:
    def test_aggregates_mean_and_total(self):
        rows_a = deliveries(np.arange(0, 10, 0.01))
        rows_b = deliveries(np.arange(0, 10, 0.02))
        stats = [flow_stats(rows_a, end=10.0), flow_stats(rows_b, end=10.0)]
        agg = aggregate_stats(stats)
        assert agg["flows"] == 2
        assert agg["total_throughput_mbps"] == pytest.approx(
            agg["mean_throughput_mbps"] * 2)

    def test_empty(self):
        assert aggregate_stats([]) == {"flows": 0}
