"""Smoke-level integration tests for every figure/table entry point.

These run each experiment at reduced duration and assert the *shape*
properties the paper reports — the full-fidelity versions live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import channel_study, micro, profile_study, sensitivity
from repro.experiments import tracedriven


class TestFig1:
    def test_burstiness_visible(self):
        result = channel_study.fig1_burst_arrivals(
            duration=30.0, window=(20.0, 20.3))
        assert result.times.size > 10
        # bursty arrivals: mean burst carries more than one packet
        assert result.stats.summary()["mean_size_bytes"] > 1400


class TestFig2:
    def test_four_configurations(self):
        result = channel_study.fig2_burst_pdfs(duration=60.0)
        assert set(result.stats) == {"du_3g", "etisalat_3g", "du_lte",
                                     "etisalat_lte"}

    def test_lte_smaller_more_frequent_bursts(self):
        result = channel_study.fig2_burst_pdfs(duration=60.0)
        for operator in ("du", "etisalat"):
            b3g = result.stats[f"{operator}_3g"]
            lte = result.stats[f"{operator}_lte"]
            assert (np.mean(lte.inter_arrivals)
                    < np.mean(b3g.inter_arrivals))

    def test_pdfs_nonempty(self):
        result = channel_study.fig2_burst_pdfs(duration=60.0)
        for label, (centers, density) in result.size_pdfs.items():
            assert centers.size > 0
            assert np.all(density >= 0)


class TestFig3:
    def test_contention_raises_delay(self):
        result = channel_study.fig3_competing_traffic(duration=120.0)
        for row in result.rows:
            assert row["avg_delay_on_ms"] > row["avg_delay_off_ms"]

    def test_near_saturation_is_worst(self):
        """The 10 Mbps user (combined ≈ capacity) suffers the biggest jump."""
        result = channel_study.fig3_competing_traffic(duration=120.0)
        jumps = [row["avg_delay_on_ms"] - row["avg_delay_off_ms"]
                 for row in result.rows]
        assert jumps[-1] == max(jumps)
        assert jumps[-1] > 4 * max(jumps[0], 1.0)


class TestFig4:
    def test_smaller_windows_more_variable(self):
        result = channel_study.fig4_throughput_windows(duration=60.0)
        cv100 = result.variability(result.window_100ms[1])
        cv20 = result.variability(result.window_20ms[1])
        assert cv20 > cv100 > 0.2

    def test_predictors_do_not_tame_the_channel(self):
        """§3: no simple predictor achieves small relative error."""
        result = channel_study.fig4_throughput_windows(duration=60.0)
        for row in result.predictor_rows:
            if row["series"].startswith("20ms"):
                assert row["rmse_vs_naive"] > 0.4


class TestFig5And7:
    @pytest.fixture(scope="class")
    def study(self):
        return profile_study.run_profile_study(duration=45.0,
                                               cell_rate_bps=15e6)

    def test_profile_is_increasing_overall(self, study):
        prof = study.final_profile
        assert prof.windows.size >= 10
        assert prof.delays_ms[-1] > prof.delays_ms[0]

    def test_snapshots_accumulate(self, study):
        assert len(study.snapshots) >= 5
        assert study.interpolations >= len(study.snapshots)

    def test_profile_steepness_finite(self, study):
        assert np.isfinite(study.final_profile.steepness)


class TestFig10:
    @pytest.mark.slow
    def test_scatter_has_all_protocols(self):
        points = tracedriven.fig10_mobility(
            flows=3, duration=20.0, scenarios=("campus_pedestrian",))
        protocols = {p.protocol for p in points}
        assert protocols == {"cubic", "newreno", "verus_r2", "verus_r4",
                             "verus_r6"}

    @pytest.mark.slow
    def test_verus_r2_much_lower_delay_than_cubic(self):
        points = tracedriven.fig10_mobility(
            flows=5, duration=40.0, scenarios=("campus_pedestrian",))
        rows = tracedriven.summarize_fig10(points)
        by_proto = {r["protocol"]: r for r in rows}
        assert (by_proto["verus_r2"]["mean_delay_ms"]
                < by_proto["cubic"]["mean_delay_ms"] / 2.5)


class TestTable1:
    @pytest.mark.slow
    def test_fairness_in_valid_range(self):
        rows = tracedriven.table1_fairness(
            user_counts=(2, 5), scenarios=("campus_pedestrian",),
            duration=25.0)
        for row in rows:
            for key, value in row.items():
                if key != "users":
                    assert 0.0 < value <= 1.0

    def test_verus_reasonable_at_contention(self):
        rows = tracedriven.table1_fairness(
            user_counts=(5,), scenarios=("campus_pedestrian",),
            duration=30.0)
        assert rows[0]["verus_r2"] > 0.5


@pytest.mark.slow
class TestFig11:
    def test_scenario_ii_verus_at_least_sprout(self):
        # Short smoke duration: a single random schedule can favour either
        # protocol over 2 minutes; the full-length benchmark asserts the
        # strict ordering.  Here we require Verus to stay in contention.
        result = micro.fig11_rapid_change("II", duration=120.0)
        assert (result.stats["verus"]["throughput_bps"]
                >= 0.75 * result.stats["sprout"]["throughput_bps"])

    def test_scenario_i_cap_hurts_sprout(self):
        result = micro.fig11_rapid_change("I", duration=80.0)
        # Average capacity ~55 Mbps; capped Sprout cannot pass ~18.
        assert result.stats["sprout"]["throughput_bps"] < 20e6
        assert (result.stats["verus"]["throughput_bps"]
                > 1.3 * result.stats["sprout"]["throughput_bps"])

    def test_invalid_scenario(self):
        with pytest.raises(ValueError):
            micro.fig11_rapid_change("III")


class TestFig15:
    @pytest.mark.slow
    def test_updating_profile_keeps_delay_low(self):
        rows = tracedriven.fig15_static_profile(
            scenarios=("city_driving", "shopping_mall"), flows=3,
            duration=40.0)
        delay_ratio = tracedriven.fig15_delay_ratio(rows)
        assert delay_ratio < 1.1   # updating never costs delay
        # Delay-efficiency must not regress vs the frozen profile.
        gain = tracedriven.fig15_gain(rows)
        assert gain / delay_ratio > 0.8


class TestSensitivity:
    def test_epoch_sweep_shapes(self):
        rows = sensitivity.sweep_epoch(epochs=(0.005, 0.05), duration=20.0)
        assert len(rows) == 2
        assert all(r["mean_throughput_mbps"] > 0 for r in rows)

    def test_delta_sweep_runs(self):
        rows = sensitivity.sweep_deltas(pairs=((0.001, 0.002),),
                                        duration=15.0)
        assert rows[0]["setting"] == "d1_2ms"

    def test_update_interval_sweep_runs(self):
        rows = sensitivity.sweep_update_interval(intervals=(1.0,),
                                                 duration=15.0)
        assert len(rows) == 1
