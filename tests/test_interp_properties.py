"""Property tests for the interpolation stack (repro.interp).

Two families the Verus window lookup depends on, per the conformance
issue:

* **Inversion round-trip** — on a monotone delay profile, looking up the
  largest window below a target delay and evaluating the profile there
  must land at-or-below the target, and must not undershoot the query
  abscissa by more than the lookup grid's resolution.
* **Degenerate profiles** — flat and two-point profiles must never
  produce NaN, and the window returned by the inverse lookup must never
  fall below the profile domain (so the control law can never be handed
  a negative or undefined window).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interp import (
    InverseLookup,
    LinearInterpolator,
    NaturalCubicSpline,
    PchipInterpolator,
)

INTERPOLATORS = [LinearInterpolator, NaturalCubicSpline, PchipInterpolator]


@st.composite
def monotone_profiles(draw, min_knots=3, max_knots=10):
    """Strictly increasing (x, y) knots shaped like a delay profile."""
    n = draw(st.integers(min_knots, max_knots))
    x0 = draw(st.floats(1.0, 20.0))
    dx = draw(st.lists(st.floats(0.5, 15.0), min_size=n - 1, max_size=n - 1))
    y0 = draw(st.floats(0.01, 0.1))
    dy = draw(st.lists(st.floats(1e-3, 0.05), min_size=n - 1, max_size=n - 1))
    x = x0 + np.concatenate([[0.0], np.cumsum(dx)])
    y = y0 + np.concatenate([[0.0], np.cumsum(dy)])
    return x, y


@st.composite
def flat_profiles(draw):
    """Constant-delay profiles: every window sees the same delay."""
    n = draw(st.integers(2, 8))
    x0 = draw(st.floats(1.0, 20.0))
    dx = draw(st.lists(st.floats(0.5, 15.0), min_size=n - 1, max_size=n - 1))
    level = draw(st.floats(0.001, 1.0))
    x = x0 + np.concatenate([[0.0], np.cumsum(dx)])
    return x, np.full(n, level)


@st.composite
def two_point_profiles(draw):
    """Minimal profiles: two knots, any finite slope (including negative)."""
    x0 = draw(st.floats(1.0, 50.0))
    width = draw(st.floats(0.5, 50.0))
    y0 = draw(st.floats(-1.0, 1.0))
    y1 = draw(st.floats(-1.0, 1.0))
    return np.array([x0, x0 + width]), np.array([y0, y1])


class TestInversionRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(monotone_profiles(), st.floats(0.0, 1.0))
    def test_pchip_round_trip_lands_at_or_below_target(self, profile, t):
        x, y = profile
        f = PchipInterpolator(x, y)
        lookup = InverseLookup(f)
        lo, hi = f.domain
        xq = lo + t * (hi - lo)
        target = float(f(xq))
        w = lookup.largest_below(target)
        # PCHIP preserves monotonicity, so everything left of xq is
        # admissible: the inverse may exceed xq only through flat spans,
        # never undershoot it by more than one lookup-grid cell.
        spacing = (hi - lo) / (lookup.grid_x.size - 1)
        assert w >= xq - spacing - 1e-9
        # Evaluating at the returned window must respect the target up to
        # the linear sub-grid refinement's curvature error.
        tol = 1e-9 + (y[-1] - y[0]) / lookup.grid_x.size
        assert float(f(w)) <= target + tol

    @settings(max_examples=80, deadline=None)
    @given(monotone_profiles(), st.floats(0.0, 1.0))
    def test_linear_round_trip_is_near_exact(self, profile, t):
        x, y = profile
        f = LinearInterpolator(x, y)
        lookup = InverseLookup(f, grid_points=2048)
        lo, hi = f.domain
        xq = lo + t * (hi - lo)
        w = lookup.largest_below(float(f(xq)))
        # Piecewise-linear is strictly increasing here, so the inverse is
        # unique up to grid resolution.
        assert w == pytest.approx(xq, abs=2 * (hi - lo) / 2047 + 1e-9)

    @settings(max_examples=60, deadline=None)
    @given(monotone_profiles())
    def test_inverse_is_monotone_in_the_target(self, profile):
        x, y = profile
        lookup = InverseLookup(PchipInterpolator(x, y))
        targets = np.linspace(y[0], y[-1], 17)
        windows = [lookup.largest_below(float(d)) for d in targets]
        assert all(b >= a - 1e-9 for a, b in zip(windows, windows[1:]))


class TestDegenerateProfiles:
    @settings(max_examples=60, deadline=None)
    @given(flat_profiles(), st.sampled_from(INTERPOLATORS))
    def test_flat_profile_evaluates_without_nan(self, profile, cls):
        x, y = profile
        f = cls(x, y)
        lo, hi = f.domain
        width = hi - lo
        grid = np.linspace(lo - width, hi + width, 257)   # incl. extrapolation
        values = np.asarray(f(grid))
        assert np.all(np.isfinite(values))
        assert np.allclose(values, y[0])                  # flat stays flat

    @settings(max_examples=60, deadline=None)
    @given(flat_profiles(), st.floats(-1.0, 2.0), st.sampled_from(INTERPOLATORS))
    def test_flat_profile_inverse_never_leaves_the_domain(self, profile,
                                                          target, cls):
        x, y = profile
        lookup = InverseLookup(cls(x, y))
        w = lookup.largest_below(target)
        lo, hi = lookup.f.domain
        assert np.isfinite(w)
        # A numerically flat cubic can carry an epsilon end slope, so the
        # capped extrapolation branch may fire; the cap still bounds w.
        assert lo <= w <= hi + lookup.max_extrapolation * (hi - lo)
        assert w >= 0.0            # never a negative window

    @settings(max_examples=80, deadline=None)
    @given(two_point_profiles(), st.floats(-2.0, 2.0),
           st.sampled_from(INTERPOLATORS))
    def test_two_point_profile_inverse_is_finite_and_bounded(self, profile,
                                                             target, cls):
        x, y = profile
        lookup = InverseLookup(cls(x, y))
        w = lookup.largest_below(target)
        lo, hi = lookup.f.domain
        width = hi - lo
        assert np.isfinite(w)
        assert lo <= w <= hi + lookup.max_extrapolation * width
        assert w >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(two_point_profiles(), st.sampled_from(INTERPOLATORS))
    def test_two_point_profile_evaluates_without_nan(self, profile, cls):
        x, y = profile
        f = cls(x, y)
        lo, hi = f.domain
        width = hi - lo
        grid = np.linspace(lo - width, hi + width, 257)
        values = np.asarray(f(grid))
        assert np.all(np.isfinite(values))
        # Two knots: every interpolant degenerates to the straight line.
        expected = y[0] + (y[1] - y[0]) / width * (grid - lo)
        assert np.allclose(values, expected, atol=1e-9)
