"""Tests for finite-transfer (short flow) support."""

import numpy as np
import pytest

from repro.core import VerusConfig, VerusReceiver, VerusSender
from repro.netsim import DirectPath, DropTailQueue, Link, Simulator
from repro.tcp import CubicSender, NewRenoSender, TcpReceiver


def run_finite(sender_factory, receiver_factory, rate_bps=10e6, rtt=0.05,
               duration=60.0, loss_rate=0.0, seed=0):
    sim = Simulator()
    link = Link(sim, rate_bps=rate_bps, queue=DropTailQueue(),
                loss_rate=loss_rate, rng=np.random.default_rng(seed))
    sender = sender_factory()
    receiver = receiver_factory()
    path = DirectPath(sim, link, sender, receiver, rtt=rtt)
    path.run(duration)
    return sender, receiver


class TestVerusFiniteTransfer:
    def test_completes_and_stops(self):
        sender, receiver = run_finite(
            lambda: VerusSender(0, transfer_bytes=500_000),
            lambda: VerusReceiver(0))
        assert sender.completion_time is not None
        assert not sender.running
        # ceil(500000/1400) = 358 packets
        assert receiver.packets_received >= 358

    def test_completion_time_scales_with_size(self):
        def fct(size):
            sender, _ = run_finite(
                lambda: VerusSender(0, transfer_bytes=size),
                lambda: VerusReceiver(0))
            return sender.completion_time
        assert fct(2_000_000) > fct(100_000)

    def test_no_spurious_packets_after_completion(self):
        sender, _ = run_finite(
            lambda: VerusSender(0, transfer_bytes=100_000),
            lambda: VerusReceiver(0), duration=30.0)
        assert sender._next_seq == sender.transfer_packets

    def test_tiny_transfer_fits_in_slow_start(self):
        """§7: 'a short flow that does not progress beyond slow start'."""
        sender, _ = run_finite(
            lambda: VerusSender(0, transfer_bytes=14_000),  # 10 packets
            lambda: VerusReceiver(0), duration=10.0)
        assert sender.completion_time is not None
        assert sender.completion_time < 1.0
        assert sender.mode == "slow_start" or sender.slow_start_exits is None

    def test_completes_despite_losses(self):
        sender, receiver = run_finite(
            lambda: VerusSender(0, transfer_bytes=300_000),
            lambda: VerusReceiver(0), loss_rate=0.02, seed=5)
        assert sender.completion_time is not None

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            VerusSender(0, transfer_bytes=0)

    def test_infinite_by_default(self):
        sender, _ = run_finite(lambda: VerusSender(0),
                               lambda: VerusReceiver(0), duration=10.0)
        assert sender.completion_time is None
        assert sender.running


class TestTcpFiniteTransfer:
    @pytest.mark.parametrize("cls", [CubicSender, NewRenoSender])
    def test_completes_and_stops(self, cls):
        sender, receiver = run_finite(
            lambda: cls(0, transfer_bytes=500_000),
            lambda: TcpReceiver(0))
        assert sender.completion_time is not None
        assert not sender.running
        assert receiver.next_expected >= sender.transfer_packets

    def test_completes_despite_losses(self):
        sender, _ = run_finite(
            lambda: CubicSender(0, transfer_bytes=300_000),
            lambda: TcpReceiver(0), loss_rate=0.02, seed=6)
        assert sender.completion_time is not None

    def test_does_not_send_past_transfer(self):
        sender, _ = run_finite(
            lambda: NewRenoSender(0, transfer_bytes=140_000),
            lambda: TcpReceiver(0), duration=30.0)
        assert sender.snd_nxt <= sender.transfer_packets

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CubicSender(0, transfer_bytes=-5)


class TestFctComparison:
    def test_verus_competitive_on_fixed_link(self):
        def fct(factory, receiver):
            sender, _ = run_finite(factory, receiver)
            return sender.completion_time
        verus = fct(lambda: VerusSender(0, transfer_bytes=1_000_000),
                    lambda: VerusReceiver(0))
        cubic = fct(lambda: CubicSender(0, transfer_bytes=1_000_000),
                    lambda: TcpReceiver(0))
        assert verus is not None and cubic is not None
        assert verus < 3.0 * cubic
