"""Tests for the ASCII visualisation helpers."""

import math

import numpy as np
import pytest

from repro.viz import histogram, line_chart, multi_line_chart, scatter_plot, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_downsamples_to_width(self):
        assert len(sparkline(range(1000), width=40)) == 40

    def test_monotone_series_monotone_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        levels = [" ▁▂▃▄▅▆▇█".index(c) for c in line]
        assert levels == sorted(levels)

    def test_constant_series_mid_level(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_nan_rendered_as_space(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "

    def test_empty(self):
        assert sparkline([]) == ""


class TestLineChart:
    def test_contains_title_and_axes(self):
        text = line_chart([0, 1, 2], [0, 1, 4], title="T", x_label="t",
                          y_label="v")
        assert "T" in text
        assert "└" in text
        assert "x: t" in text and "y: v" in text

    def test_height_respected(self):
        text = line_chart([0, 1], [0, 1], height=10)
        plot_rows = [l for l in text.splitlines() if "│" in l]
        assert len(plot_rows) == 10

    def test_marks_present(self):
        text = line_chart(np.linspace(0, 1, 50), np.linspace(0, 1, 50))
        assert "*" in text

    def test_flat_series_no_crash(self):
        text = line_chart([0, 1, 2], [3, 3, 3])
        assert "*" in text

    def test_all_nan_handled(self):
        text = line_chart([0, 1], [float("nan")] * 2)
        assert "no finite data" in text

    def test_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], [0, 1], width=4)


class TestMultiLine:
    def test_legend_lists_all_series(self):
        text = multi_line_chart({
            "a": ([0, 1], [0, 1]),
            "b": ([0, 1], [1, 0]),
        })
        assert "*=a" in text and "o=b" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            multi_line_chart({"a": ([0, 1], [0])})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            multi_line_chart({})


class TestScatter:
    def test_log_axis(self):
        text = scatter_plot({"p": [(0.01, 1.0), (1.0, 2.0)]}, log_x=True,
                            x_label="delay")
        assert "log10(delay)" in text

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scatter_plot({"p": [(0.0, 1.0)]}, log_x=True)

    def test_groups_plotted(self):
        text = scatter_plot({"a": [(1, 1)], "b": [(2, 2)]})
        assert "*" in text and "o" in text


class TestHistogram:
    def test_counts_sum(self):
        text = histogram([1, 1, 2, 3, 3, 3], bins=3)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()]
        assert sum(counts) == 6

    def test_log_bins(self):
        text = histogram([1, 10, 100, 1000], bins=3, log=True)
        assert text

    def test_empty(self):
        assert "(no data)" in histogram([])
