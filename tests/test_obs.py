"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.netsim.flow import SenderProtocol
from repro.obs import (
    BENCHMARKS,
    Counter,
    Gauge,
    Histogram,
    MeterRegistry,
    RingBuffer,
    Spans,
    TelemetrySession,
    TimelineRecorder,
    compare,
    current_session,
    export_timeline_csv,
    export_timeline_jsonl,
    merge_snapshots,
    regressions,
    run_bench,
    telemetry,
    write_session,
)


# ----------------------------------------------------------------------
# Meters
# ----------------------------------------------------------------------
class TestHistogram:
    def test_empty_percentile_is_none(self):
        hist = Histogram()
        assert hist.percentile(50) is None
        assert hist.mean is None

    def test_single_value_percentiles_exact(self):
        hist = Histogram()
        hist.record(0.125)
        for q in (0, 25, 50, 99, 100):
            assert hist.percentile(q) == pytest.approx(0.125)

    def test_single_bucket_stays_in_envelope(self):
        hist = Histogram(base=2.0)   # coarse buckets, one bucket holds both
        hist.record(1.1)
        hist.record(1.3)
        for q in (0, 50, 100):
            assert 1.1 <= hist.percentile(q) <= 1.3

    def test_percentile_bounds_and_accuracy(self):
        hist = Histogram()
        values = [0.001 * i for i in range(1, 1001)]
        hist.record_many(values)
        assert hist.percentile(0) == pytest.approx(0.001)
        assert hist.percentile(100) == pytest.approx(1.0)
        # Log-bucketing at base 2**0.25 keeps percentiles within ~9%.
        assert hist.percentile(50) == pytest.approx(0.5, rel=0.1)
        assert hist.percentile(90) == pytest.approx(0.9, rel=0.1)

    def test_zeros_bucket(self):
        hist = Histogram()
        hist.record_many([0.0, -1.0, 5.0])
        assert hist.zeros == 2
        assert hist.count == 3
        assert hist.percentile(0) == -1.0

    def test_merge_matches_combined_stream(self):
        left, right, both = Histogram(), Histogram(), Histogram()
        a = [0.01 * i for i in range(1, 50)]
        b = [0.3 * i for i in range(1, 30)]
        left.record_many(a)
        right.record_many(b)
        both.record_many(a + b)
        left.merge(right)
        assert left.count == both.count
        assert left.total == pytest.approx(both.total)
        assert left.counts == both.counts
        assert left.percentile(75) == pytest.approx(both.percentile(75))

    def test_merge_empty_and_base_mismatch(self):
        hist = Histogram()
        hist.record(2.0)
        hist.merge(Histogram())          # merging empty is a no-op
        assert hist.count == 1
        with pytest.raises(ValueError):
            hist.merge(Histogram(base=3.0))

    def test_roundtrip(self):
        hist = Histogram()
        hist.record_many([0.1, 0.5, 2.5, 0.0])
        clone = Histogram.from_dict(
            json.loads(json.dumps(hist.to_dict())))
        assert clone.counts == hist.counts
        assert clone.percentile(50) == hist.percentile(50)


class TestRegistry:
    def test_snapshot_merge_roundtrip(self):
        a, b = MeterRegistry(), MeterRegistry()
        a.counter("events").inc(3)
        b.counter("events").inc(4)
        a.gauge("window").set(10.0)
        b.gauge("window").set(20.0)
        a.histogram("delay").record(0.05)
        b.histogram("delay").record(0.10)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["events"]["value"] == 7
        assert merged["gauges"]["window"]["value"] == 20.0   # right-biased
        assert merged["gauges"]["window"]["min"] == 10.0
        assert merged["histograms"]["delay"]["count"] == 2

    def test_name_type_collision_rejected(self):
        reg = MeterRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_scoped_prefixes(self):
        reg = MeterRegistry()
        reg.scoped("verus").scoped("epoch").counter("count").inc()
        assert reg.names() == ["verus.epoch.count"]


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
class TestRingBuffer:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_no_wrap(self):
        ring = RingBuffer(4)
        for i in range(3):
            ring.append(i)
        assert ring.items() == [0, 1, 2]
        assert ring.dropped == 0

    def test_wraparound_keeps_most_recent(self):
        ring = RingBuffer(3)
        for i in range(7):
            ring.append(i)
        assert ring.items() == [4, 5, 6]
        assert ring.dropped == 4
        assert ring.appended == 7
        assert len(ring) == 3


class _Endpoint:
    flow_id = 9


class TestTimelineRecorder:
    def test_record_event_fast_path(self):
        rec = TimelineRecorder(capacity=8, source="f0")
        rec.record_event(_Endpoint(), "on_epoch", {"time": 1.5, "window": 4.0})
        [row] = rec.rows()
        assert row == {"time": 1.5, "window": 4.0, "event": "epoch",
                       "source": "f0", "flow": 9}

    def test_named_handlers_match_fast_path(self):
        rec = TimelineRecorder(capacity=8)
        rec.on_loss(_Endpoint(), time=2.0, kind="rto")
        [row] = rec.rows()
        assert row["event"] == "loss"
        assert row["kind"] == "rto"

    def test_missing_time_filled_with_none(self):
        rec = TimelineRecorder(capacity=8)
        rec.record_event(_Endpoint(), "on_window", {"cwnd": 10})
        assert rec.rows()[0]["time"] is None

    def test_sender_notify_reaches_recorder(self):
        sender = SenderProtocol(flow_id=3)
        rec = TimelineRecorder(capacity=8, source="s")
        sender.observers.append(rec)
        sender.notify("on_epoch", time=0.5, window=2.0)
        assert rec.rows()[0]["flow"] == 3

    def test_plain_handler_observer_still_works(self):
        seen = []

        class Monitor:
            def on_epoch(self, sender, *, time, window, **extra):
                seen.append((time, window))

        sender = SenderProtocol(flow_id=0)
        sender.observers.append(Monitor())
        sender.notify("on_epoch", time=0.5, window=2.0)
        assert seen == [(0.5, 2.0)]


class TestTelemetrySession:
    def test_nesting_rejected(self):
        with telemetry():
            with pytest.raises(RuntimeError):
                with telemetry():
                    pass
        assert current_session() is None

    def test_end_to_end_capture(self, tmp_path):
        from repro.cellular import generate_scenario_trace
        from repro.experiments import repeat_flows, run_trace_contention

        trace = generate_scenario_trace("campus_stationary", duration=2.0,
                                        technology="3g", seed=1)
        with telemetry(TelemetrySession()) as session:
            run_trace_contention(trace, repeat_flows("verus", 1, r=2.0),
                                 duration=2.0, seed=1)
        rows = session.rows()
        assert rows, "telemetry captured nothing"
        events = {row["event"] for row in rows}
        assert "epoch" in events
        assert session.registry.counter("engine.events").value > 0
        times = [row["time"] for row in rows if row["time"] is not None]
        assert times == sorted(times)

        from pathlib import Path
        paths = write_session(session, tmp_path, csv_too=True)
        for path in paths:
            assert Path(path).exists()
        summary = json.loads((tmp_path / "telemetry_summary.json").read_text())
        assert summary["timeline_rows"] == len(rows)

    def test_notify_never_called_without_observers(self, monkeypatch):
        """Telemetry off must cost only the falsy guard: no emit site may
        call notify when the observers list is empty."""
        from repro.cellular import generate_scenario_trace
        from repro.experiments import repeat_flows, run_trace_contention

        def boom(self, event, **fields):
            raise AssertionError(f"notify({event!r}) despite no observers")

        monkeypatch.setattr(SenderProtocol, "notify", boom)
        trace = generate_scenario_trace("campus_stationary", duration=1.0,
                                        technology="3g", seed=1)
        run_trace_contention(trace, repeat_flows("verus", 1, r=2.0),
                             duration=1.0, seed=1)


# ----------------------------------------------------------------------
# Spans + export
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_accumulates_and_merges(self):
        spans = Spans()
        with spans.span("fit"):
            pass
        spans.add("fit", 0.5)
        other = Spans()
        other.add("fit", 0.25)
        other.add("run", 1.0)
        spans.merge(other)
        snap = spans.snapshot()
        assert snap["spans"]["fit"]["calls"] == 3
        assert snap["spans"]["fit"]["seconds"] >= 0.75
        assert "run" in snap["spans"]


class TestExport:
    ROWS = [
        {"time": 0.5, "event": "epoch", "source": "f0", "flow": 0, "window": 2.0},
        {"time": 1.0, "event": "loss", "source": "f0", "flow": 0, "kind": "rto"},
    ]

    def test_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert export_timeline_jsonl(self.ROWS, path) == 2
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["event"] == "epoch"

    def test_csv_union_header(self, tmp_path):
        path = tmp_path / "t.csv"
        export_timeline_csv(self.ROWS, path)
        header = path.read_text().splitlines()[0].split(",")
        assert header[:4] == ["time", "event", "source", "flow"]
        assert set(header[4:]) == {"kind", "window"}


# ----------------------------------------------------------------------
# Bench
# ----------------------------------------------------------------------
FAST_BENCHES = ["queue.droptail", "interp.pchip"]


class TestBench:
    def test_workload_hashes_deterministic_across_jobs(self):
        serial = run_bench(FAST_BENCHES, mode="quick", jobs=1)
        pooled = run_bench(FAST_BENCHES, mode="quick", jobs=2)
        assert not serial["failures"] and not pooled["failures"]
        for name in FAST_BENCHES:
            assert (serial["benchmarks"][name]["workload_hash"]
                    == pooled["benchmarks"][name]["workload_hash"])
            assert (serial["benchmarks"][name]["checksum"]
                    == pooled["benchmarks"][name]["checksum"])

    def test_setup_hashes_are_pure(self):
        bench = BENCHMARKS["interp.inverse"]
        _, first = bench.setup(bench.params["quick"])
        _, second = bench.setup(bench.params["quick"])
        assert first == second
        _, full = bench.setup(bench.params["full"])
        assert full != first          # different params, different workload

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_bench(["nope"], mode="quick")
        with pytest.raises(ValueError, match="mode"):
            run_bench(FAST_BENCHES, mode="banana")

    def test_compare_statuses(self):
        base_doc = {
            "benchmarks": {
                "a": {"seconds": 1.0, "workload_hash": "x", "tolerance": 0.2},
                "b": {"seconds": 1.0, "workload_hash": "x", "tolerance": 0.2},
                "c": {"seconds": 1.0, "workload_hash": "x", "tolerance": 0.2},
                "d": {"seconds": 1.0, "workload_hash": "old", "tolerance": 0.2},
                "gone": {"seconds": 1.0, "workload_hash": "x",
                         "tolerance": 0.2},
            },
        }
        cur_doc = {
            "benchmarks": {
                "a": {"seconds": 1.1, "workload_hash": "x"},   # within band
                "b": {"seconds": 1.5, "workload_hash": "x"},   # regression
                "c": {"seconds": 0.5, "workload_hash": "x"},   # improved
                "d": {"seconds": 1.0, "workload_hash": "new"},
                "fresh": {"seconds": 1.0, "workload_hash": "x"},
            },
        }
        rows = {r["name"]: r["status"] for r in compare(base_doc, cur_doc)}
        assert rows == {"a": "ok", "b": "regression", "c": "improved",
                        "d": "workload-changed", "gone": "missing",
                        "fresh": "new"}
        bad = regressions(compare(base_doc, cur_doc))
        assert [r["name"] for r in bad] == ["b"]

    def test_max_regression_caps_the_band(self):
        """The CI ratchet: --max-regression tightens every regression
        band without widening any, and leaves 'improved' on the
        per-benchmark band so noise isn't reported as a speedup."""
        base_doc = {
            "benchmarks": {
                "lax": {"seconds": 1.0, "workload_hash": "x",
                        "tolerance": 0.5},
                "tight": {"seconds": 1.0, "workload_hash": "x",
                          "tolerance": 0.05},
            },
        }
        cur_doc = {
            "benchmarks": {
                "lax": {"seconds": 1.2, "workload_hash": "x"},
                "tight": {"seconds": 1.08, "workload_hash": "x"},
            },
        }
        plain = {r["name"]: r["status"] for r in compare(base_doc, cur_doc)}
        assert plain == {"lax": "ok", "tight": "regression"}
        capped = {r["name"]: r["status"]
                  for r in compare(base_doc, cur_doc, max_regression=0.10)}
        assert capped == {"lax": "regression", "tight": "regression"}
        faster = {"benchmarks": {
            "lax": {"seconds": 0.4, "workload_hash": "x"},
            "tight": {"seconds": 0.97, "workload_hash": "x"},
        }}
        improved = {r["name"]: r["status"]
                    for r in compare(base_doc, faster, max_regression=0.10)}
        assert improved == {"lax": "improved", "tight": "ok"}


# ----------------------------------------------------------------------
# Campaign timings rollup
# ----------------------------------------------------------------------
class TestTimingsRollup:
    def test_aggregate_timings(self):
        from repro.campaign import aggregate_timings
        from repro.campaign.executor import TaskOutcome

        outcomes = [
            TaskOutcome(index=0, key="k0", status="ok",
                        result={"timings": {"sim_run_s": 1.0,
                                            "total_s": 1.5}}),
            TaskOutcome(index=1, key="k1", status="cached",
                        result={}),                      # cached, no timings
            TaskOutcome(index=2, key="k2", status="ok",
                        result={"timings": {"sim_run_s": 3.0,
                                            "total_s": 3.5}}),
        ]
        rollup = aggregate_timings(outcomes)
        assert rollup["tasks"] == 3
        assert rollup["tasks_with_timings"] == 2
        assert rollup["mean"]["sim_run_s"] == pytest.approx(2.0)
        assert rollup["total"]["total_s"] == pytest.approx(5.0)
        assert rollup["max"]["sim_run_s"] == pytest.approx(3.0)

    def test_aggregate_timings_none_when_absent(self):
        from repro.campaign import aggregate_timings
        from repro.campaign.executor import TaskOutcome

        outcomes = [TaskOutcome(index=0, key="k", status="ok", result={})]
        assert aggregate_timings(outcomes) is None
