#!/usr/bin/env python
"""Scenario: interactive video call from a moving car.

The paper's motivation: interactive applications over cellular links need
both throughput *and* low delay.  This example simulates a user on a
city-driving 3G channel and asks, for each protocol, what fraction of the
time a 95th-percentile one-way delay budget of 150 ms (the ITU-T G.114
interactivity threshold) is met, and what bitrate the call could sustain.

Run with::

    python examples/mobile_video_call.py
"""

import numpy as np

from repro.cellular import generate_scenario_trace
from repro.experiments import FlowSpec, format_table, run_trace_contention
from repro.metrics import flow_stats, windowed_delay, windowed_throughput

DELAY_BUDGET = 0.150  # seconds, interactive threshold
DURATION = 60.0


def evaluate(protocol: str, trace, **options) -> dict:
    spec = FlowSpec(protocol=protocol, options=options)
    result = run_trace_contention(trace, [spec], duration=DURATION,
                                  use_red=False, seed=7)
    deliveries = result.deliveries(0)
    stats = flow_stats(deliveries, start=10.0, end=DURATION)

    _, delays = windowed_delay(deliveries, window=1.0, start=10.0,
                               end=DURATION, agg="p95")
    valid = delays[np.isfinite(delays)]
    interactive = float(np.mean(valid < DELAY_BUDGET)) if valid.size else 0.0

    _, tput = windowed_throughput(deliveries, window=1.0, start=10.0,
                                  end=DURATION)
    # A call must pick a bitrate it can sustain nearly always: use p10.
    sustainable = float(np.percentile(tput, 10)) if tput.size else 0.0

    return {
        "protocol": protocol if not options else f"{protocol} {options}",
        "throughput_mbps": round(stats.throughput_mbps, 2),
        "mean_delay_ms": round(stats.mean_delay_ms, 1),
        "interactive_time": f"{interactive:.0%}",
        "sustainable_kbps": round(sustainable / 1e3),
    }


def main() -> None:
    print(f"Simulating a {DURATION:.0f}s video call on a 3G city-driving "
          "channel (5 Mbps nominal)...\n")
    trace = generate_scenario_trace("city_driving", duration=DURATION,
                                    technology="3g", seed=7)

    rows = [
        evaluate("verus", trace, r=2.0),
        evaluate("sprout", trace),
        evaluate("cubic", trace),
        evaluate("vegas", trace),
    ]
    print(format_table(rows, title=(
        f"Interactive viability (p95 delay < {DELAY_BUDGET * 1e3:.0f} ms)")))

    print("\nReading the table: loss-based TCP fills the base-station")
    print("buffer, so almost no 1-second window meets the interactivity")
    print("budget; Verus and Sprout keep the queue short and make the")
    print("call feasible, with Verus extracting more of the channel.")


if __name__ == "__main__":
    main()
