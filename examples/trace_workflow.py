#!/usr/bin/env python
"""Scenario: record → save → reload → replay a channel trace.

Demonstrates the trace workflow a researcher would use with real
measurements: generate (or import) a Mahimahi-style delivery-opportunity
trace, inspect its burst structure (§3 analysis), persist it, and replay
it through the simulator under a protocol of choice.

Run with::

    python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.cellular import (
    compare_predictors,
    detect_bursts,
    generate_scenario_trace,
    load_trace,
    save_trace,
    trace_rate_bps,
)
from repro.experiments import FlowSpec, format_table, run_trace_contention
from repro.metrics import flow_stats, windowed_throughput

DURATION = 40.0


def main() -> None:
    # 1. Record (here: synthesise) a channel trace.
    trace = generate_scenario_trace("highway_driving", duration=DURATION,
                                    technology="lte", mean_rate_bps=15e6,
                                    seed=23)
    print(f"Generated {trace.size} delivery opportunities "
          f"({trace_rate_bps(trace) / 1e6:.1f} Mbps average).")

    # 2. Inspect burst structure (the paper's §3 analysis).
    bursts = detect_bursts(trace)
    print(format_table([bursts.summary()], title="\nburst structure"))

    # 3. Quantify predictability of the windowed throughput.
    deliveries = [(t, i, 0.0, 1400) for i, t in enumerate(trace)]
    _, series = windowed_throughput(deliveries, 0.020, end=DURATION)
    scores = compare_predictors(series)
    print(format_table(
        [{"predictor": s.name, "rmse_mbps": round(s.rmse / 1e6, 2),
          "vs_naive": round(s.rmse_vs_naive, 2)} for s in scores],
        title="\npredictability of 20 ms windows"))

    # 4. Persist and reload in the Mahimahi-compatible format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "highway_lte.trace"
        save_trace(path, trace)
        reloaded = load_trace(path)
        print(f"\nsaved + reloaded {path.name}: {reloaded.size} opportunities,"
              f" {path.stat().st_size} bytes on disk")

    # 5. Replay under Verus and report flow statistics.
    result = run_trace_contention(
        reloaded, [FlowSpec(protocol="verus", options={"r": 2.0})],
        duration=DURATION, use_red=False, seed=23)
    stats = flow_stats(result.deliveries(0), start=5.0, end=DURATION)
    print(f"\nVerus over the replayed trace: "
          f"{stats.throughput_mbps:.2f} Mbps at "
          f"{stats.mean_delay_ms:.0f} ms mean delay "
          f"(p95 {stats.p95_delay * 1e3:.0f} ms).")


if __name__ == "__main__":
    main()
