#!/usr/bin/env python
"""Scenario: tuning Verus's R knob for an application's delay budget.

The single protocol parameter the paper exposes to operators is R, the
maximum tolerable D_max/D_min ratio (eq. 4).  This example sweeps R over
a bursty LTE channel and prints the resulting throughput/delay frontier,
then picks the largest R whose p95 delay fits a given budget — the
workflow an application developer would actually follow.

Run with::

    python examples/custom_protocol_tuning.py
"""

from repro.cellular import generate_scenario_trace
from repro.core import VerusConfig
from repro.experiments import FlowSpec, format_table, run_trace_contention
from repro.metrics import flow_stats

DURATION = 45.0
DELAY_BUDGET_MS = 120.0


def run_with_r(r: float, trace) -> dict:
    config = VerusConfig(r=r)
    spec = FlowSpec(protocol="verus", options={"config": config})
    result = run_trace_contention(trace, [spec], duration=DURATION,
                                  use_red=False, seed=11)
    stats = flow_stats(result.deliveries(0), start=10.0, end=DURATION)
    return {
        "R": r,
        "throughput_mbps": round(stats.throughput_mbps, 2),
        "mean_delay_ms": round(stats.mean_delay_ms, 1),
        "p95_delay_ms": round(stats.p95_delay * 1e3, 1),
    }


def main() -> None:
    print("Sweeping Verus R on an LTE 'city waterfront' channel...\n")
    trace = generate_scenario_trace("city_waterfront", duration=DURATION,
                                    technology="lte", mean_rate_bps=20e6,
                                    seed=11)
    rows = [run_with_r(r, trace) for r in (1.5, 2.0, 3.0, 4.0, 6.0, 8.0)]
    print(format_table(rows, title="Verus R sweep (throughput/delay frontier)"))

    fitting = [row for row in rows
               if row["p95_delay_ms"] <= DELAY_BUDGET_MS]
    if fitting:
        best = max(fitting, key=lambda row: row["throughput_mbps"])
        print(f"\nLargest-throughput setting meeting a p95 < "
              f"{DELAY_BUDGET_MS:.0f} ms budget: R = {best['R']} "
              f"({best['throughput_mbps']} Mbps at "
              f"p95 {best['p95_delay_ms']} ms).")
    else:
        print(f"\nNo setting met the {DELAY_BUDGET_MS:.0f} ms budget on "
              "this channel; pick the lowest-delay row.")


if __name__ == "__main__":
    main()
