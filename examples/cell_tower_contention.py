#!/usr/bin/env python
"""Scenario: many subscribers behind one congested cell.

Reproduces the paper's §6.2 setting as an operator-facing question: as a
cell's load grows from 2 to 15 active bulk-download users, how do
aggregate utilisation, per-user delay, and fairness evolve for Verus vs
TCP Cubic?

Run with::

    python examples/cell_tower_contention.py
"""

from repro.cellular import generate_scenario_trace, trace_rate_bps
from repro.experiments import format_table, repeat_flows, run_trace_contention
from repro.metrics import aggregate_stats, windowed_jain_index

DURATION = 45.0
CELL_RATE = 16e6  # 16 Mbps shared 3G cell (nominal)


def evaluate(protocol: str, users: int, trace, **options) -> dict:
    specs = repeat_flows(protocol, users, **options)
    result = run_trace_contention(trace, specs, duration=DURATION, seed=3)
    agg = aggregate_stats(result.all_stats())
    fairness = windowed_jain_index(result.per_flow_deliveries(),
                                   window=1.0, start=5.0, end=DURATION)
    offered_mbps = trace_rate_bps(trace) / 1e6
    return {
        "protocol": protocol,
        "users": users,
        "cell_utilisation":
            f"{agg['total_throughput_mbps'] / offered_mbps:.0%}",
        "per_user_mbps": round(agg["mean_throughput_mbps"], 2),
        "mean_delay_ms": round(agg["mean_delay_ms"], 1),
        "jain_fairness": round(fairness, 3),
    }


def main() -> None:
    print("Scaling load on a 16 Mbps 'shopping mall' 3G cell...\n")
    trace = generate_scenario_trace("shopping_mall", duration=DURATION,
                                    technology="3g",
                                    mean_rate_bps=CELL_RATE, seed=3)
    rows = []
    for users in (2, 5, 10, 15):
        for protocol, options in (("verus", {"r": 2.0}), ("cubic", {})):
            rows.append(evaluate(protocol, users, trace, **options))

    print(format_table(rows, title="Cell contention scaling"))
    print("\nThe operator's takeaway: as contention rises, Cubic keeps the")
    print("shared RED queue saturated (delay grows into the hundreds of")
    print("milliseconds and its fairness erodes), while Verus holds per-")
    print("packet delay roughly flat at a modest throughput cost.")


if __name__ == "__main__":
    main()
