#!/usr/bin/env python
"""Quickstart: Verus vs TCP Cubic on a synthetic 3G cellular channel.

Reproduces the paper's headline result in under a minute of wall time:
Verus achieves throughput comparable to TCP Cubic at a small fraction of
its delay.

Run with::

    python examples/quickstart.py
"""

from repro import quick_comparison
from repro.experiments import format_table


def main() -> None:
    print("Running 3 Verus flows, then 3 Cubic flows, over the same")
    print("30-second synthetic 3G 'campus pedestrian' channel trace...\n")

    rows = quick_comparison(duration=30.0, scenario="campus_pedestrian",
                            technology="3g", flows=3)
    print(format_table(rows, title="Verus vs TCP Cubic"))

    verus, cubic = rows[0], rows[1]
    ratio = cubic["mean_delay_ms"] / max(verus["mean_delay_ms"], 1e-9)
    print(f"\nVerus delivers {verus['mean_throughput_mbps']:.2f} Mbps/flow "
          f"at {verus['mean_delay_ms']:.0f} ms mean delay;")
    print(f"Cubic delivers {cubic['mean_throughput_mbps']:.2f} Mbps/flow "
          f"at {cubic['mean_delay_ms']:.0f} ms — "
          f"{ratio:.1f}x the delay of Verus.")


if __name__ == "__main__":
    main()
