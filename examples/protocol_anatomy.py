#!/usr/bin/env python
"""Anatomy of a Verus flow: watch the protocol's internals live.

Runs one Verus flow over a fluctuating LTE channel with diagnostics
enabled and narrates what each §4 element did: slow start and its exit,
the delay profile being learned and re-learned, the eq. 4 set-point
walking its branches, loss episodes and recoveries.  A guided tour of
the implementation for anyone about to modify it.

Run with::

    python examples/protocol_anatomy.py
"""

from collections import Counter

from repro.cellular import generate_scenario_trace, trace_rate_bps
from repro.core import VerusConfig, VerusReceiver, VerusSender
from repro.metrics import flow_stats, windowed_throughput
from repro.netsim import DirectPath, Simulator, TraceLink
from repro.viz import sparkline

DURATION = 60.0


def main() -> None:
    trace = generate_scenario_trace("city_driving", duration=DURATION,
                                    technology="lte", mean_rate_bps=15e6,
                                    seed=9)
    print(f"Channel: LTE city-driving, {trace.size} delivery opportunities, "
          f"{trace_rate_bps(trace) / 1e6:.1f} Mbps average\n")

    sim = Simulator()
    link = TraceLink(sim, trace, delay=0.005)
    config = VerusConfig(r=2.0, record_diagnostics=True)
    sender = VerusSender(0, config)
    receiver = VerusReceiver(0)
    path = DirectPath(sim, link, sender, receiver, rtt=0.01)
    path.run(DURATION)

    # ---- slow start -----------------------------------------------------
    rows = sender.diagnostics
    first_normal = next((r for r in rows if r.mode == "normal"), None)
    print("1. SLOW START")
    print(f"   exit reason: {sender.slow_start_exits!r} "
          f"(loss = ACK-sequence gap; delay = RTT > "
          f"{config.ss_exit_ratio:.0f} x D_min)")
    if first_normal is not None:
        print(f"   handover to the epoch loop at t="
              f"{first_normal.time * 1e3:.0f} ms with "
              f"window = {first_normal.window:.0f} packets\n")

    # ---- delay profile ---------------------------------------------------
    knots = sender.profiler.knots()
    print("2. DELAY PROFILE (eq. 1 / Fig 5)")
    print(f"   {len(knots)} live (window, delay) knots spanning "
          f"W = {knots[0][0]}..{knots[-1][0]} packets")
    print(f"   re-interpolated {sender.profiler.interpolations} times "
          f"(every {config.profile_update_interval:.0f} s)")
    delays_ms = [d * 1e3 for _, d in knots]
    print(f"   shape: {sparkline(delays_ms, width=48)}  "
          f"({min(delays_ms):.0f}..{max(delays_ms):.0f} ms)\n")

    # ---- the eq. 4 walk ---------------------------------------------------
    print("3. SET-POINT DYNAMICS (eq. 4)")
    d_ests = [r.d_est * 1e3 for r in rows if r.mode == "normal"]
    windows = [r.window for r in rows if r.mode == "normal"]
    print(f"   D_est walked {sparkline(d_ests, width=48)}  "
          f"({min(d_ests):.0f}..{max(d_ests):.0f} ms)")
    print(f"   window    {sparkline(windows, width=48)}  "
          f"({min(windows):.0f}..{max(windows):.0f} packets)")
    est = sender.delay_estimator
    print(f"   D_min = {est.d_min * 1e3:.1f} ms (windowed), "
          f"D_max = {est.d_max * 1e3:.1f} ms, "
          f"ratio = {est.max_min_ratio():.2f} (bound R = {config.r})\n")

    # ---- losses -----------------------------------------------------------
    print("4. LOSS HANDLING (eq. 6)")
    print(f"   losses detected: {sender.losses_detected}   "
          f"retransmissions: {sender.retransmissions}   "
          f"abandoned: {sender.abandoned}   timeouts: {sender.timeouts}")
    print(f"   recovery episodes completed: "
          f"{sender.loss_handler.recoveries_completed}")
    modes = Counter(r.mode for r in rows)
    total = sum(modes.values())
    shares = "  ".join(f"{mode}: {count / total:.1%}"
                       for mode, count in modes.most_common())
    print(f"   time in each mode: {shares}\n")

    # ---- outcome ----------------------------------------------------------
    stats = flow_stats(receiver.deliveries, start=5.0, end=DURATION)
    _, tput = windowed_throughput(receiver.deliveries, 1.0, end=DURATION)
    print("5. OUTCOME")
    print(f"   goodput  {sparkline(tput / 1e6, width=48)}  "
          f"avg {stats.throughput_mbps:.2f} Mbps")
    print(f"   delay    mean {stats.mean_delay_ms:.0f} ms, "
          f"p95 {stats.p95_delay * 1e3:.0f} ms "
          f"(channel floor ≈ 10 ms)")


if __name__ == "__main__":
    main()
