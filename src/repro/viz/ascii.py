"""Terminal visualisation: ASCII line charts, scatter plots and sparklines.

The benchmarks print the rows/series behind every paper figure; this
module renders them as actual terminal plots so `python -m repro run
fig11` shows the Fig 11 time series, not just numbers.  No plotting
dependency is used — everything is plain text.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Eight-level block characters for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """One-line sparkline of a series (NaNs render as spaces)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if width is not None and width > 0 and arr.size > width:
        # Downsample by block means.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([np.nanmean(arr[a:b]) if b > a else np.nan
                        for a, b in zip(edges[:-1], edges[1:])])
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * arr.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for value in arr:
        if not np.isfinite(value):
            chars.append(" ")
            continue
        if span == 0:
            level = 4
        else:
            level = int(round((value - lo) / span * 8))
        chars.append(_SPARK_LEVELS[max(1, min(level, 8))])
    return "".join(chars)


def line_chart(xs: Sequence[float], ys: Sequence[float],
               width: int = 72, height: int = 14,
               title: str = "", y_label: str = "",
               x_label: str = "") -> str:
    """Render a single series as an ASCII chart with axis annotations."""
    return multi_line_chart({"": (xs, ys)}, width=width, height=height,
                            title=title, y_label=y_label, x_label=x_label)


_SERIES_MARKS = "*o+x#@%&"


def multi_line_chart(series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
                     width: int = 72, height: int = 14, title: str = "",
                     y_label: str = "", x_label: str = "") -> str:
    """Render several (x, y) series on one ASCII canvas.

    Each series gets its own mark character; a legend line maps them.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("canvas too small")

    cleaned = {}
    for name, (xs, ys) in series.items():
        x = np.asarray(list(xs), dtype=float)
        y = np.asarray(list(ys), dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"series {name!r}: x and y lengths differ")
        mask = np.isfinite(x) & np.isfinite(y)
        if mask.any():
            cleaned[name] = (x[mask], y[mask])
    if not cleaned:
        return f"{title}\n(no finite data)"

    all_x = np.concatenate([x for x, _ in cleaned.values()])
    all_y = np.concatenate([y for _, y in cleaned.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, (x, y)) in enumerate(cleaned.items()):
        mark = _SERIES_MARKS[index % len(_SERIES_MARKS)]
        cols = np.clip(((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int),
                       0, width - 1)
        rows = np.clip(((y - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int),
                       0, height - 1)
        for col, row in zip(cols, rows):
            canvas[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    y_hi_text = _format_number(y_hi)
    y_lo_text = _format_number(y_lo)
    gutter = max(len(y_hi_text), len(y_lo_text)) + 1
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            label = y_hi_text.rjust(gutter)
        elif row_index == height - 1:
            label = y_lo_text.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label}│{''.join(row)}")
    axis = " " * gutter + "└" + "─" * width
    lines.append(axis)
    x_lo_text = _format_number(x_lo)
    x_hi_text = _format_number(x_hi)
    padding = width - len(x_lo_text) - len(x_hi_text)
    lines.append(" " * (gutter + 1) + x_lo_text + " " * max(padding, 1)
                 + x_hi_text)
    footer_parts = []
    if x_label:
        footer_parts.append(f"x: {x_label}")
    if y_label:
        footer_parts.append(f"y: {y_label}")
    if len(cleaned) > 1:
        legend = "  ".join(
            f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]}={name}"
            for i, name in enumerate(cleaned))
        footer_parts.append(legend)
    if footer_parts:
        lines.append(" " * (gutter + 1) + "   ".join(footer_parts))
    return "\n".join(lines)


def scatter_plot(points: Dict[str, List[Tuple[float, float]]],
                 width: int = 72, height: int = 14, title: str = "",
                 x_label: str = "", y_label: str = "",
                 log_x: bool = False) -> str:
    """Scatter plot of labelled point groups (the Fig 8/9/10 style).

    ``log_x`` renders the x axis logarithmically, matching the paper's
    delay axes.
    """
    series = {}
    for name, pts in points.items():
        if not pts:
            continue
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        if log_x:
            if any(x <= 0 for x in xs):
                raise ValueError("log_x requires positive x values")
            xs = [math.log10(x) for x in xs]
        series[name] = (xs, ys)
    label = f"log10({x_label})" if log_x else x_label
    return multi_line_chart(series, width=width, height=height, title=title,
                            x_label=label, y_label=y_label)


def histogram(values: Sequence[float], bins: int = 20, width: int = 50,
              title: str = "", log: bool = False) -> str:
    """Horizontal ASCII histogram."""
    arr = np.asarray(list(values), dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return f"{title}\n(no data)"
    if log:
        arr = arr[arr > 0]
        edges = np.logspace(np.log10(arr.min()), np.log10(arr.max()),
                            bins + 1)
    else:
        edges = np.linspace(arr.min(), arr.max() + 1e-12, bins + 1)
    counts, _ = np.histogram(arr, bins=edges)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "█" * int(round(count / peak * width))
        lines.append(f"{_format_number(edges[i]):>10} {bar} {count}")
    return "\n".join(lines)


def _format_number(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e6:
        return f"{value / 1e6:.1f}M"
    if magnitude >= 1e3:
        return f"{value / 1e3:.1f}k"
    if magnitude >= 1:
        return f"{value:.1f}"
    return f"{value:.3g}"
