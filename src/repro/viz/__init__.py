"""Dependency-free terminal plots: sparklines, line/scatter charts and
histograms used by the CLI to render the paper's figures as text."""

from .ascii import histogram, line_chart, multi_line_chart, scatter_plot, sparkline

__all__ = [
    "histogram",
    "line_chart",
    "multi_line_chart",
    "scatter_plot",
    "sparkline",
]
