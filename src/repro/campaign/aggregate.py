"""Merge per-cell campaign results into the tables the paper reports.

Each grid cell's stored summary is rehydrated into
:class:`~repro.metrics.FlowStats` objects and reduced with the same
:func:`~repro.metrics.aggregate_stats` the experiments layer uses, then
seeds of the same cell are averaged with a normal-approximation 95%
confidence interval.  Aggregation is pure and processes outcomes in
grid order, so the emitted rows are byte-identical whether the campaign
ran serially or on a pool.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..experiments.runner import summary_stats
from ..metrics import aggregate_stats
from .executor import TaskOutcome
from .spec import TaskSpec

#: z-score for a two-sided 95% interval.
Z95 = 1.96


def mean_ci(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and 95% CI half-width (0.0 for a single observation)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return float("nan"), float("nan")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, 0.0
    half = float(Z95 * arr.std(ddof=1) / math.sqrt(arr.size))
    return mean, half


def aggregate_campaign(tasks: Sequence[TaskSpec],
                       outcomes: Sequence[TaskOutcome]) -> List[dict]:
    """Reduce per-task outcomes into one row per grid cell (seeds merged).

    Failed cells still appear — with their failure count and NaN metrics
    when no seed succeeded — so a report never silently drops a
    configuration.
    """
    groups: Dict[tuple, dict] = {}
    order: List[tuple] = []
    for task, outcome in zip(tasks, outcomes):
        cell = (task.scenario, task.protocol, task.label, task.flows)
        if cell not in groups:
            groups[cell] = {"throughputs": [], "delays": [], "failures": 0,
                            "seeds": 0}
            order.append(cell)
        bucket = groups[cell]
        bucket["seeds"] += 1
        if not outcome.ok:
            bucket["failures"] += 1
            continue
        agg = aggregate_stats(summary_stats(outcome.result))
        bucket["throughputs"].append(agg["mean_throughput_mbps"])
        bucket["delays"].append(agg["mean_delay_ms"])

    rows: List[dict] = []
    for cell in order:
        scenario, protocol, label, flows = cell
        bucket = groups[cell]
        tput, tput_ci = mean_ci(bucket["throughputs"])
        delay, delay_ci = mean_ci(bucket["delays"])
        rows.append({
            "scenario": scenario,
            "protocol": protocol,
            "label": label,
            "flows": flows,
            "seeds": bucket["seeds"],
            "failures": bucket["failures"],
            "mean_throughput_mbps": tput,
            "ci95_throughput_mbps": tput_ci,
            "mean_delay_ms": delay,
            "ci95_delay_ms": delay_ci,
        })
    return rows


def aggregate_timings(outcomes: Sequence[TaskOutcome]) -> Optional[dict]:
    """Roll up per-task span timings (``collect_timings`` sweeps).

    Cached outcomes may carry no ``"timings"`` block (they were stored by
    a run that did not collect them, or the work never re-ran); they are
    counted but not averaged.  Returns None when no outcome has timings.
    """
    per_key: Dict[str, List[float]] = {}
    with_timings = 0
    for outcome in outcomes:
        if not outcome.ok or not isinstance(outcome.result, dict):
            continue
        timings = outcome.result.get("timings")
        if not timings:
            continue
        with_timings += 1
        for key, value in timings.items():
            per_key.setdefault(key, []).append(float(value))
    if not with_timings:
        return None
    rollup = {"tasks": len(outcomes), "tasks_with_timings": with_timings,
              "mean": {}, "total": {}, "max": {}}
    for key, values in sorted(per_key.items()):
        arr = np.asarray(values, dtype=float)
        rollup["mean"][key] = round(float(arr.mean()), 6)
        rollup["total"][key] = round(float(arr.sum()), 6)
        rollup["max"][key] = round(float(arr.max()), 6)
    return rollup


def rows_as_json(rows: List[dict]) -> str:
    """Canonical serialization of aggregated rows — the artefact the
    determinism guarantee (serial == parallel, byte for byte) is stated
    over."""
    import json
    return json.dumps(rows, sort_keys=True, indent=1, allow_nan=True)
