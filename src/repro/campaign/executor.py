"""Campaign execution: a crash-isolated process pool with caching.

:func:`run_tasks` is the generic engine — it takes picklable payloads
plus a module-level task function and returns one :class:`TaskOutcome`
per payload, in input order, regardless of completion order.  On top of
it, :func:`run_campaign` wires in the sweep-specific pieces: task
hashing, the :class:`~repro.campaign.store.ResultStore`, and the
simulation task function.

Failure semantics
-----------------
* **Worker exception** — the task is retried up to ``retries`` times
  with linear backoff, then marked ``failed`` with the repr of the last
  exception.  Other tasks are unaffected.
* **Worker death** (segfault, OOM-kill, ``os._exit``) — Python's
  :class:`~concurrent.futures.ProcessPoolExecutor` poisons the whole
  pool when a worker dies.  The engine catches the broken pool, rebuilds
  it, and requeues every in-flight task with one attempt consumed, so a
  deterministically-crashing cell exhausts its retries and is marked
  failed while its innocent neighbours complete on the fresh pool.
* **Timeout** — enforced in pooled mode only (a serial in-process run
  cannot preempt itself).  In-flight occupancy is capped at ``jobs`` so
  every submitted task starts immediately and the deadline can be
  measured from submission.  A timed-out future is abandoned (its late
  result, if any, is discarded) and the cell is marked ``timeout``
  without retry — a deterministic hang would only burn workers again.
* **Supervised kill** — a ``supervisor`` (e.g. the resilience
  subsystem's :class:`~repro.resilience.watchdog.WorkerWatchdog`) may
  SIGKILL a hung or over-budget worker.  That breaks the pool like any
  worker death, but the supervisor *attributes* the kill: only the
  offending task consumes an attempt (with capped exponential backoff
  before requeue, or its kill reason as the final error); innocent
  in-flight siblings are requeued without burning a retry.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .spec import CampaignSpec, TaskSpec, run_simulation_task
from .store import ResultStore

ProgressFn = Callable[["TaskOutcome", int, int], None]

#: Ceiling on the backoff applied before requeueing a task whose worker
#: the supervisor shot (hang / RSS breach).
KILL_BACKOFF_CAP = 2.0


@dataclass
class TaskOutcome:
    """What happened to one task."""

    index: int
    key: Optional[str] = None
    status: str = "failed"          # ok | cached | failed | timeout
    result: Any = None
    error: Optional[str] = None
    attempts: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class ExecutorStats:
    """Aggregate accounting for one engine run."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    timeouts: int = 0
    retries: int = 0
    pool_restarts: int = 0
    #: Wall time spent probing the result store for cached cells.
    cache_lookup_seconds: float = 0.0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class RunResult:
    """Outcomes (in input order) plus run accounting."""

    outcomes: List[TaskOutcome]
    stats: ExecutorStats

    @property
    def all_ok(self) -> bool:
        return all(o.ok for o in self.outcomes)


@dataclass
class _InFlight:
    #: ``(index, attempts)`` per chunk member, in submission order.
    members: List[tuple]
    submitted: float
    deadline: Optional[float]


def _run_chunk(task_fn: Callable[[Any], Any],
               payloads: Sequence[Any]) -> List[tuple]:
    """Worker-side chunk runner: execute each member payload in order,
    timing it and catching its exception, so one future carries a whole
    batch without one member's failure poisoning its siblings.
    Module-level so :class:`ProcessPoolExecutor` can pickle it."""
    markers = []
    for payload in payloads:
        started = time.monotonic()
        try:
            result = task_fn(payload)
        except Exception as exc:
            markers.append(("err", repr(exc), time.monotonic() - started))
        else:
            markers.append(("ok", result, time.monotonic() - started))
    return markers


def run_tasks(payloads: Sequence[Any], task_fn: Callable[[Any], Any], *,
              jobs: int = 1, timeout: Optional[float] = None,
              retries: int = 1, backoff: float = 0.25,
              store: Optional[ResultStore] = None,
              keys: Optional[Sequence[Optional[str]]] = None,
              resume: bool = True,
              progress: Optional[ProgressFn] = None,
              supervisor: Optional[Any] = None,
              chunk: Optional[int] = None) -> RunResult:
    """Run ``task_fn`` over ``payloads`` and return per-task outcomes.

    ``task_fn`` must be a module-level callable (picklable) when
    ``jobs > 1``.  When ``store`` and ``keys`` are given, tasks whose key
    is already stored are returned as ``cached`` without executing
    (unless ``resume`` is False), and fresh successes are persisted —
    their results must then be JSON-serializable.

    ``supervisor`` (pooled mode only) is a duck-typed worker watchdog:
    ``wrap(index, attempts, payload)`` is called at submission and may
    return an augmented payload, ``poll()`` runs once per engine loop
    iteration and may kill misbehaving workers, ``take_kills()`` returns
    ``{index: reason}`` for kills since the last call (consumed when the
    pool breaks, to attribute the break), and ``release(index)`` is
    called whenever a task leaves flight.

    ``chunk`` (pooled mode only) batches that many payloads per
    submitted future to amortise pickling and future bookkeeping at
    sweep scale.  ``None`` picks a size automatically (1 for small
    grids).  Semantics stay per-task: each member is timed, retried and
    supervised individually; a chunk's deadline is ``timeout`` times its
    member count, and a timed-out multi-member chunk is split into
    singleton requeues (no attempt burned) so a genuinely hung cell
    times out terminally on its own.
    """
    n = len(payloads)
    if keys is None:
        keys = [None] * n
    if len(keys) != n:
        raise ValueError("keys must match payloads in length")
    stats = ExecutorStats(total=n)
    outcomes: List[Optional[TaskOutcome]] = [None] * n
    done_count = 0

    def finish(outcome: TaskOutcome) -> None:
        nonlocal done_count
        if outcomes[outcome.index] is not None:
            raise RuntimeError(
                f"task {outcome.index} finished twice "
                f"({outcomes[outcome.index].status} then {outcome.status}) — "
                f"executor accounting bug")
        outcomes[outcome.index] = outcome
        done_count += 1
        if outcome.status == "cached":
            stats.cached += 1
        elif outcome.status == "timeout":
            stats.timeouts += 1
        elif outcome.status == "failed":
            stats.failed += 1
        else:
            stats.executed += 1
        if outcome.ok and outcome.status == "ok" and store is not None \
                and outcome.key is not None:
            task_dict = payloads[outcome.index]
            if not isinstance(task_dict, dict):
                task_dict = {"payload": repr(task_dict)}
            else:
                # Underscore keys are runtime directives (telemetry,
                # submission stamps), not part of the task's identity —
                # keep the stored spec canonical.
                task_dict = {k: v for k, v in task_dict.items()
                             if not k.startswith("_")}
            store.put(outcome.key, task_dict, outcome.result,
                      seconds=outcome.seconds)
        if progress is not None:
            progress(outcome, done_count, n)

    pending = deque()
    for index in range(n):
        key = keys[index]
        if resume and store is not None and key is not None:
            lookup_started = time.monotonic()
            record = store.get(key)
            stats.cache_lookup_seconds += time.monotonic() - lookup_started
            if record is not None:
                finish(TaskOutcome(index=index, key=key, status="cached",
                                   result=record["result"]))
                continue
        # (index, attempts, solo) — solo entries are dispatched alone.
        pending.append((index, 0, False))

    if not pending:
        return RunResult([o for o in outcomes if o is not None], stats)

    if jobs <= 1:
        _run_serial(pending, payloads, keys, task_fn, retries, backoff,
                    stats, finish)
    else:
        _run_pool(pending, payloads, keys, task_fn, jobs, timeout, retries,
                  backoff, stats, finish, supervisor, chunk)
    return RunResult([o for o in outcomes if o is not None], stats)


def _run_serial(pending, payloads, keys, task_fn, retries, backoff,
                stats, finish) -> None:
    while pending:
        index, attempts, _solo = pending.popleft()
        started = time.monotonic()
        try:
            result = task_fn(payloads[index])
        except Exception as exc:
            if attempts < retries:
                stats.retries += 1
                time.sleep(backoff * (attempts + 1))
                pending.appendleft((index, attempts + 1, False))
                continue
            finish(TaskOutcome(index=index, key=keys[index], status="failed",
                               error=repr(exc), attempts=attempts + 1,
                               seconds=time.monotonic() - started))
            continue
        finish(TaskOutcome(index=index, key=keys[index], status="ok",
                           result=result, attempts=attempts + 1,
                           seconds=time.monotonic() - started))


def _run_pool(pending, payloads, keys, task_fn, jobs, timeout, retries,
              backoff, stats, finish, supervisor=None,
              chunk=None) -> None:
    pool = ProcessPoolExecutor(max_workers=jobs)
    inflight: Dict[Any, _InFlight] = {}
    abandoned = 0   # timed-out futures whose workers are still busy
    freed: deque = deque()   # signalled (thread-safe) when one finishes late
    # Pool generation, stamped on every abandoned future's done-callback.
    # A rebuild discards the abandoned workers along with the old pool, so
    # a *stale* callback (an old-pool worker finally returning) must not
    # decrement the new pool's abandoned count — that would over-submit
    # and mark cells timed out that never got a worker.
    generation = 0

    def release(index: int) -> None:
        if supervisor is not None:
            supervisor.release(index)

    def chunk_size() -> int:
        if chunk is not None:
            return max(1, chunk)
        # Auto: batch only when the backlog dwarfs the worker count (~8
        # waves per worker stay unbatched, so small grids keep per-task
        # parallelism), capped to bound the blast radius of one chunk.
        return max(1, min(16, len(pending) // (8 * jobs)))

    try:
        while pending or inflight:
            while freed:
                if freed.popleft() == generation:
                    abandoned = max(0, abandoned - 1)
            # In-flight is capped at the worker count (minus any workers
            # still burning on abandoned tasks), so a submitted chunk
            # starts at once and its deadline runs from submission.
            while pending and len(inflight) + abandoned < jobs:
                size = chunk_size()
                index, attempts, solo = pending.popleft()
                members = [(index, attempts)]
                if not solo:
                    while len(members) < size and pending \
                            and not pending[0][2]:
                        nxt_index, nxt_attempts, _ = pending.popleft()
                        members.append((nxt_index, nxt_attempts))
                now = time.monotonic()
                member_payloads = []
                for m_index, m_attempts in members:
                    payload = payloads[m_index]
                    if supervisor is not None:
                        payload = supervisor.wrap(m_index, m_attempts,
                                                  payload)
                    member_payloads.append(payload)
                future = pool.submit(_run_chunk, task_fn, member_payloads)
                inflight[future] = _InFlight(
                    members=members, submitted=now,
                    deadline=None if timeout is None
                    else now + timeout * len(members))
            if not inflight:
                # Every worker is burning on an abandoned task; idle
                # until one frees up rather than busy-spinning.
                time.sleep(0.02)
                continue
            if supervisor is not None:
                supervisor.poll()
            done, _ = wait(list(inflight), timeout=0.05,
                           return_when=FIRST_COMPLETED)
            pool_broken = False
            # Kill attribution is consumed lazily, once per loop pass, and
            # only on the pool-broken paths — reasons stay queued in the
            # supervisor until the break they caused is actually observed.
            kills: Optional[Dict[int, str]] = None

            def attributed_kills() -> Dict[int, str]:
                nonlocal kills
                if kills is None:
                    kills = (supervisor.take_kills()
                             if supervisor is not None else {})
                return kills

            def casualty(m_index: int, m_attempts: int,
                         elapsed: float) -> None:
                """One in-flight chunk member lost to a broken pool."""
                release(m_index)
                blame = attributed_kills()
                if m_index in blame:
                    # The supervisor shot this task's worker: it alone
                    # consumes an attempt, with capped backoff.
                    if m_attempts < retries:
                        stats.retries += 1
                        time.sleep(min(backoff * (2 ** m_attempts),
                                       KILL_BACKOFF_CAP))
                        pending.append((m_index, m_attempts + 1, False))
                    else:
                        finish(TaskOutcome(
                            index=m_index, key=keys[m_index],
                            status="failed", error=blame[m_index],
                            attempts=m_attempts + 1, seconds=elapsed))
                elif blame:
                    # Attributed break, innocent sibling: requeue free.
                    pending.append((m_index, m_attempts, False))
                else:
                    _requeue_or_fail(m_index, m_attempts, pending, keys,
                                     retries, stats, finish, elapsed,
                                     "worker process died")

            for future in done:
                info = inflight.pop(future)
                elapsed = time.monotonic() - info.submitted
                try:
                    markers = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    for m_index, m_attempts in info.members:
                        casualty(m_index, m_attempts, elapsed)
                except CancelledError:
                    # Only reachable when a breaking pool cancelled queued
                    # siblings; treat like any other casualty.
                    for m_index, m_attempts in info.members:
                        release(m_index)
                        _requeue_or_fail(m_index, m_attempts, pending,
                                         keys, retries, stats, finish,
                                         elapsed, "cancelled by pool")
                else:
                    # The chunk runner caught per-member exceptions, so a
                    # future that resolves carries one marker per member.
                    for (m_index, m_attempts), marker \
                            in zip(info.members, markers):
                        release(m_index)
                        status, value, seconds = marker
                        if status == "ok":
                            finish(TaskOutcome(
                                index=m_index, key=keys[m_index],
                                status="ok", result=value,
                                attempts=m_attempts + 1, seconds=seconds))
                        elif m_attempts < retries:
                            stats.retries += 1
                            time.sleep(backoff * (m_attempts + 1))
                            pending.append((m_index, m_attempts + 1, False))
                        else:
                            finish(TaskOutcome(
                                index=m_index, key=keys[m_index],
                                status="failed", error=value,
                                attempts=m_attempts + 1, seconds=seconds))
            if pool_broken:
                # Every sibling in flight is poisoned too: requeue them
                # (the attributed offender — or, unattributed, each one,
                # since any could be the killer — consumes an attempt)
                # and rebuild the pool.
                for future, info in list(inflight.items()):
                    elapsed = time.monotonic() - info.submitted
                    for m_index, m_attempts in info.members:
                        casualty(m_index, m_attempts, elapsed)
                inflight.clear()
                abandoned = 0
                generation += 1
                stats.pool_restarts += 1
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=jobs)
                continue
            if timeout is not None:
                now = time.monotonic()
                for future, info in list(inflight.items()):
                    if info.deadline is not None and now > info.deadline \
                            and not future.cancel():
                        # Still running: abandon it. The worker frees up
                        # whenever the chunk eventually returns; its late
                        # result is discarded with the future.
                        del inflight[future]
                        abandoned += 1
                        future.add_done_callback(
                            lambda f, q=freed, g=generation:
                                (_noteless(f), q.append(g)))
                        if len(info.members) > 1:
                            # No way to tell which member hung: requeue
                            # every member alone without burning an
                            # attempt; a genuinely hung cell then times
                            # out terminally as a singleton.
                            for m_index, m_attempts in info.members:
                                release(m_index)
                                pending.append((m_index, m_attempts, True))
                        else:
                            m_index, m_attempts = info.members[0]
                            release(m_index)
                            finish(TaskOutcome(
                                index=m_index, key=keys[m_index],
                                status="timeout",
                                error=f"timed out after {timeout:g}s",
                                attempts=m_attempts + 1,
                                seconds=now - info.submitted))
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _requeue_or_fail(index: int, attempts: int, pending, keys, retries,
                     stats, finish, elapsed: float, reason: str) -> None:
    if attempts < retries:
        stats.retries += 1
        pending.append((index, attempts + 1, False))
    else:
        finish(TaskOutcome(index=index, key=keys[index],
                           status="failed", error=reason,
                           attempts=attempts + 1, seconds=elapsed))


def _noteless(future) -> None:
    """Swallow the late result/exception of an abandoned future."""
    try:
        future.exception()
    except Exception:
        pass


@dataclass
class CampaignResult:
    """Everything a sweep produced: the expanded grid, per-task
    outcomes, engine accounting, and (if used) the store."""

    tasks: List[TaskSpec]
    outcomes: List[TaskOutcome]
    stats: ExecutorStats
    store: Optional[ResultStore] = None

    @property
    def all_ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def summaries(self) -> List[Optional[dict]]:
        """Per-task result summaries (None where a task failed)."""
        return [o.result if o.ok else None for o in self.outcomes]


def run_campaign(spec, *, jobs: int = 1,
                 store: Optional[ResultStore] = None,
                 cache_dir: Optional[str] = None,
                 resume: bool = True,
                 timeout: Optional[float] = None,
                 retries: int = 1, backoff: float = 0.25,
                 collect_timings: bool = False,
                 progress: Optional[ProgressFn] = None,
                 chunk: Optional[int] = None) -> CampaignResult:
    """Expand a :class:`CampaignSpec` (or take a pre-expanded task list)
    and run every cell through the engine.

    With neither ``store`` nor ``cache_dir`` the sweep runs uncached;
    passing ``cache_dir`` creates a :class:`ResultStore` there.

    ``collect_timings`` asks each worker for per-task span timings
    (queue wait, trace generation, simulation run) in the result summary
    under ``"timings"``.  The directive rides in underscore-prefixed
    payload keys, which are stripped before hashing and storage, so
    cache keys — and therefore resumability — are unaffected.
    """
    if isinstance(spec, CampaignSpec):
        tasks = spec.expand()
    else:
        tasks = list(spec)
    if store is None and cache_dir is not None:
        store = ResultStore(cache_dir)
    payloads = [t.to_dict() for t in tasks]
    if collect_timings:
        submitted = time.time()
        for payload in payloads:
            payload["_timings"] = True
            payload["_submitted"] = submitted
    run = run_tasks(payloads, run_simulation_task,
                    jobs=jobs, timeout=timeout, retries=retries,
                    backoff=backoff, store=store,
                    keys=[t.key() for t in tasks], resume=resume,
                    progress=progress, chunk=chunk)
    return CampaignResult(tasks=tasks, outcomes=run.outcomes,
                          stats=run.stats, store=store)
