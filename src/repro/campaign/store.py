"""Content-addressed on-disk result store for campaign cells.

Each completed task is written to ``<root>/<key[:2]>/<key>.json`` where
``key`` is the task's content hash (spec + repro version, see
:meth:`~repro.campaign.spec.TaskSpec.key`).  Writes go through a
temporary file in the same directory followed by ``os.replace``, so a
crash mid-write can never leave a truncated record that a later
``--resume`` would trust.  Every ``put`` also appends one line to
``<root>/index.jsonl`` — a human-greppable ledger of what the cache
holds and when each cell landed.

The store never invalidates by time: a key either exists (the exact
same spec was run by the exact same code version) or it does not.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

#: Bumped when the on-disk record layout changes incompatibly; records
#: with a different layout version are treated as misses.
STORE_FORMAT = 1

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultStore:
    """Durable task-result cache with hit/miss accounting."""

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        # Lazy in-memory key index: one directory scan on first lookup,
        # then every known-miss is answered without touching the
        # filesystem.  ``put`` keeps it current; keys written by *other*
        # processes after the scan are simply treated as misses, which
        # costs a redundant execution, never a wrong result.
        self._index: Optional[set] = None

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for record in sorted(shard.glob("*.json")):
                yield record.stem

    def _scan_keys(self) -> set:
        index = set()
        try:
            shards = os.scandir(self.root)
        except OSError:
            return index
        with shards:
            for shard in shards:
                if not shard.is_dir():
                    continue
                try:
                    records = os.scandir(shard.path)
                except OSError:
                    continue
                with records:
                    for record in records:
                        name = record.name
                        if name.endswith(".json"):
                            index.add(name[:-5])
        return index

    def get(self, key: str) -> Optional[dict]:
        """Return the stored record for ``key`` or None, updating the
        hit/miss counters.  Corrupt or format-incompatible records count
        as misses rather than raising."""
        index = self._index
        if index is None:
            index = self._index = self._scan_keys()
        if key not in index:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if record.get("store_format") != STORE_FORMAT:
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, task: dict, result: dict, **extra) -> Path:
        """Atomically persist one task result and return its path."""
        record = {
            "store_format": STORE_FORMAT,
            "key": key,
            "created": time.time(),
            "task": task,
            "result": result,
        }
        record.update(extra)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(record, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        if self._index is not None:
            self._index.add(key)
        self._append_index(key, task)
        return path

    def _append_index(self, key: str, task: dict) -> None:
        """Best-effort append-only ledger; never fails a put."""
        line = json.dumps({"key": key, "created": time.time(),
                           "scenario": task.get("scenario"),
                           "protocol": task.get("protocol"),
                           "label": task.get("label"),
                           "seed_index": task.get("seed_index")},
                          sort_keys=True)
        try:
            with (self.root / "index.jsonl").open("a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError:
            pass

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}
