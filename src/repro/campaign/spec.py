"""Declarative campaign grids: scenario × protocol × flows × overrides × seeds.

A :class:`CampaignSpec` describes the whole sweep; :meth:`CampaignSpec.expand`
turns it into one :class:`TaskSpec` per grid cell.  Each task is

* **individually hashable** — :meth:`TaskSpec.key` canonicalises the spec
  (sorted-key JSON plus the repro version) and hashes it with SHA-256, so the
  result store can address cached cells by content; and
* **deterministically seeded** — per-task seeds are derived with
  ``numpy.random.SeedSequence(base_seed).spawn(n)``, indexed by the task's
  position in the expanded grid.  The seed depends only on the grid cell,
  never on execution order, so a ``--jobs 8`` run is bit-identical to a
  serial one.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import __version__ as REPRO_VERSION
from ..cellular import SCENARIO_NAMES
from ..experiments.runner import PROTOCOL_NAMES

#: Options applied to every flow of a protocol unless an override names the
#: same key.  Mirrors the ``r=2.0`` default the experiments layer uses for
#: Verus throughout.
DEFAULT_PROTOCOL_OPTIONS: Dict[str, dict] = {"verus": {"r": 2.0}}


def _canonical_json(payload: dict) -> str:
    """Deterministic JSON used for hashing: sorted keys, no whitespace
    drift, floats via repr (shortest round-trip form in py>=3.1)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TaskSpec:
    """One fully-resolved grid cell: a single simulation to run.

    ``seed`` is the resolved per-task seed (already derived from the
    campaign's base seed); ``seed_index`` records which repetition this
    cell is, so aggregation can report "mean of N seeds".

    Two trace sources are supported: without ``trace_file`` the worker
    synthesizes ``scenario`` (which must then be a registered scenario
    name); with ``trace_file`` the worker replays that corpus trace and
    ``scenario`` is a free-form label (typically the corpus trace name).
    ``trace_sha256`` pins the trace *content* — the worker refuses a
    file that hashes differently, and the cache key is derived from the
    hash rather than the path, so moving a corpus does not invalidate
    cached results.
    """

    scenario: str
    protocol: str
    flows: int
    duration: float
    seed: int
    seed_index: int = 0
    technology: str = "3g"
    cell_rate_bps: Optional[float] = None
    rtt: float = 0.01
    warmup: float = 5.0
    label: str = ""
    options: Tuple[Tuple[str, object], ...] = ()
    trace_file: Optional[str] = None
    trace_sha256: Optional[str] = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise ValueError(f"unknown protocol {self.protocol!r}; "
                             f"choose from {PROTOCOL_NAMES}")
        if self.trace_file is None and self.scenario not in SCENARIO_NAMES:
            raise ValueError(f"unknown scenario {self.scenario!r}; "
                             f"choose from {SCENARIO_NAMES} "
                             f"(or provide trace_file)")
        if self.trace_sha256 is not None and self.trace_file is None:
            raise ValueError("trace_sha256 requires trace_file")
        if self.flows < 1:
            raise ValueError("flows must be at least 1")
        if not self.label:
            object.__setattr__(self, "label", self.protocol)
        if isinstance(self.options, dict):
            object.__setattr__(self, "options",
                               tuple(sorted(self.options.items())))

    def options_dict(self) -> dict:
        return dict(self.options)

    def to_dict(self) -> dict:
        """JSON-safe payload; also the canonical form used for hashing."""
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "flows": self.flows,
            "duration": self.duration,
            "seed": self.seed,
            "seed_index": self.seed_index,
            "technology": self.technology,
            "cell_rate_bps": self.cell_rate_bps,
            "rtt": self.rtt,
            "warmup": self.warmup,
            "label": self.label,
            "options": {k: v for k, v in self.options},
            "trace_file": self.trace_file,
            "trace_sha256": self.trace_sha256,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TaskSpec":
        payload = dict(payload)
        payload["options"] = tuple(sorted(payload.get("options", {}).items()))
        return cls(**payload)

    def key(self) -> str:
        """Content address: SHA-256 of the canonical spec + repro version.

        The version is part of the address so a cache populated by an
        older simulator never masks behaviour changes.  When the trace
        content is pinned by ``trace_sha256``, the file *path* is
        dropped from the address — the hash already identifies the
        input, and relocating a corpus must not invalidate the cache."""
        body = self.to_dict()
        if self.trace_sha256 is not None:
            body["trace_file"] = None
        body = _canonical_json({"task": body,
                                "repro_version": REPRO_VERSION})
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass
class CampaignSpec:
    """A sweep grid.  ``expand()`` yields the Cartesian product
    scenarios × protocols × flow_counts × overrides × seeds, in that
    nesting order (seeds innermost)."""

    scenarios: Sequence[str]
    protocols: Sequence[str]
    flow_counts: Sequence[int] = (3,)
    seeds: int = 1
    duration: float = 30.0
    technology: str = "3g"
    cell_rate_bps: Optional[float] = None
    rtt: float = 0.01
    #: None (default) resolves to the standard 5 s warm-up, shortened to
    #: duration/5 so very short smoke sweeps still observe packets.
    warmup: Optional[float] = None
    base_seed: int = 0
    #: Config-override variants: each dict is merged over the protocol's
    #: default options and becomes its own grid axis entry.
    overrides: Sequence[dict] = field(default_factory=lambda: [{}])
    #: Optional display labels, one per override variant.
    override_labels: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be at least 1")
        if not self.scenarios or not self.protocols or not self.flow_counts:
            raise ValueError("scenarios, protocols and flow_counts must "
                             "each have at least one entry")
        if (self.override_labels is not None
                and len(self.override_labels) != len(self.overrides)):
            raise ValueError("override_labels must match overrides in length")

    def size(self) -> int:
        return (len(self.scenarios) * len(self.protocols)
                * len(self.flow_counts) * len(self.overrides) * self.seeds)

    def expand(self) -> List[TaskSpec]:
        """Expand the grid into per-cell tasks with derived seeds.

        ``SeedSequence.spawn`` gives every cell an independent,
        well-separated random stream; the spawn index is the cell's fixed
        position in the grid, so the mapping cell → seed is stable under
        any execution order and under ``--resume``."""
        children = np.random.SeedSequence(self.base_seed).spawn(self.size())
        warmup = (self.warmup if self.warmup is not None
                  else min(5.0, self.duration / 5.0))
        tasks: List[TaskSpec] = []
        index = 0
        for scenario in self.scenarios:
            for protocol in self.protocols:
                for flows in self.flow_counts:
                    for o_idx, override in enumerate(self.overrides):
                        options = dict(DEFAULT_PROTOCOL_OPTIONS.get(protocol, {}))
                        options.update(override)
                        label = protocol
                        if self.override_labels is not None:
                            suffix = self.override_labels[o_idx]
                            if suffix:
                                label = f"{protocol}_{suffix}"
                        elif len(self.overrides) > 1:
                            label = f"{protocol}_v{o_idx}"
                        for seed_index in range(self.seeds):
                            seed = int(children[index].generate_state(1)[0])
                            tasks.append(TaskSpec(
                                scenario=scenario,
                                protocol=protocol,
                                flows=flows,
                                duration=self.duration,
                                seed=seed,
                                seed_index=seed_index,
                                technology=self.technology,
                                cell_rate_bps=self.cell_rate_bps,
                                rtt=self.rtt,
                                warmup=warmup,
                                label=label,
                                options=tuple(sorted(options.items())),
                            ))
                            index += 1
        return tasks


#: Per-worker-process memo of parsed corpus traces, keyed by
#: ``(trace_file, trace_sha256)``.  A sweep hands every cell of a grid
#: the same handful of pinned traces, so each worker parses and
#: hash-verifies a given trace once instead of once per cell.  Entries
#: carry the source file's stat signature: when the file on disk drifts
#: mid-sweep the entry is discarded and the trace re-read and
#: re-verified, so corpus mutation still fails loudly instead of being
#: served from the memo.
_TRACE_MEMO: dict = {}
_TRACE_MEMO_MAX = 256


def _trace_stat_sig(path) -> tuple:
    stat = os.stat(path)
    return (stat.st_mtime_ns, stat.st_size)


def _load_task_trace(spec: "TaskSpec") -> np.ndarray:
    """Replay-source path: read the pinned corpus trace for a task.

    Refuses content that does not match ``trace_sha256`` — a cached
    result must never be attributed to a trace that has since changed.
    """
    from ..traces.corpus import trace_sha256
    from ..traces.formats import read_trace_ms

    memo_key = (spec.trace_file, spec.trace_sha256)
    sig = _trace_stat_sig(spec.trace_file)
    entry = _TRACE_MEMO.get(memo_key)
    if entry is not None and entry[0] == sig:
        # Copy so no simulation ever aliases the memoized array.
        return entry[1].copy()
    _TRACE_MEMO.pop(memo_key, None)
    times_ms = read_trace_ms(spec.trace_file, fmt="mahimahi")
    if spec.trace_sha256 is not None:
        digest = trace_sha256(times_ms)
        if digest != spec.trace_sha256:
            raise ValueError(
                f"trace {spec.trace_file} hashes to {digest[:12]}, task "
                f"pinned {spec.trace_sha256[:12]} — corpus content changed")
    trace = times_ms.astype(float) / 1000.0
    if len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
        _TRACE_MEMO.clear()
    _TRACE_MEMO[memo_key] = (sig, trace)
    return trace.copy()


def run_simulation_task(payload: dict) -> dict:
    """Execute one grid cell: generate the scenario trace, run the
    contention experiment, return the JSON-safe result summary.

    Module-level (not a closure) so :class:`ProcessPoolExecutor` can
    pickle it to worker processes.

    Underscore-prefixed payload keys are runtime directives, not part of
    the task spec: ``_timings`` asks for per-task span timings (queue
    wait, trace generation, simulation run) under ``"timings"`` in the
    summary, and ``_submitted`` carries the submission wall-clock stamp
    the queue wait is measured against.
    """
    import time as _time

    from ..cellular import generate_scenario_trace
    from ..experiments.runner import repeat_flows, run_trace_contention

    started = _time.time()
    want_timings = bool(payload.get("_timings"))
    submitted = payload.get("_submitted")
    if any(k.startswith("_") for k in payload):
        payload = {k: v for k, v in payload.items() if not k.startswith("_")}

    spec = TaskSpec.from_dict(payload)
    perf = _time.perf_counter
    t0 = perf()
    if spec.trace_file is not None:
        trace = _load_task_trace(spec)
    else:
        trace = generate_scenario_trace(spec.scenario, duration=spec.duration,
                                        technology=spec.technology,
                                        mean_rate_bps=spec.cell_rate_bps,
                                        seed=spec.seed)
    trace_seconds = perf() - t0
    flow_specs = repeat_flows(spec.protocol, spec.flows, label=spec.label,
                              **spec.options_dict())
    t1 = perf()
    result = run_trace_contention(trace, flow_specs, duration=spec.duration,
                                  rtt=spec.rtt, warmup=spec.warmup,
                                  seed=spec.seed)
    sim_seconds = perf() - t1
    summary = result.summary()
    if want_timings:
        timings = {
            "trace_gen_s": round(trace_seconds, 6),
            "sim_run_s": round(sim_seconds, 6),
            "total_s": round(perf() - t0, 6),
        }
        if submitted is not None:
            timings["queue_wait_s"] = round(max(0.0, started - submitted), 6)
        summary["timings"] = timings
    return summary
