"""Campaign engine: parallel sweep orchestration with a durable cache.

The evaluation grid of the paper — protocols × scenarios × flow counts ×
seeds — is expressed as a :class:`CampaignSpec`, expanded into hashable
:class:`TaskSpec` cells, executed on a crash-isolated process pool
(:func:`run_campaign` / :func:`run_tasks`), memoised in a
content-addressed :class:`ResultStore`, and reduced back into paper-style
tables (:func:`aggregate_campaign`).

Dataflow::

    CampaignSpec --expand--> [TaskSpec] --key()--> ResultStore lookup
          |                      |                     | hit: reuse
          |                      v miss                v
          |            ProcessPoolExecutor --summary--> ResultStore.put
          |                      |
          +---- aggregate_campaign(tasks, outcomes) ----> rows
"""

from .aggregate import (
    aggregate_campaign,
    aggregate_timings,
    mean_ci,
    rows_as_json,
)
from .executor import (
    CampaignResult,
    ExecutorStats,
    RunResult,
    TaskOutcome,
    run_campaign,
    run_tasks,
)
from .spec import (
    DEFAULT_PROTOCOL_OPTIONS,
    CampaignSpec,
    TaskSpec,
    run_simulation_task,
)
from .store import DEFAULT_CACHE_DIR, ResultStore

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_PROTOCOL_OPTIONS",
    "ExecutorStats",
    "ResultStore",
    "RunResult",
    "TaskOutcome",
    "TaskSpec",
    "aggregate_campaign",
    "aggregate_timings",
    "mean_ci",
    "rows_as_json",
    "run_campaign",
    "run_simulation_task",
    "run_tasks",
]
