"""Analytical characterisation of Verus (the paper's stated future work):
a first-order fluid model of the eq. 4 steady state, validated against
the packet-level simulation."""

from .model import FixedLinkPrediction, VerusFluidModel

__all__ = ["FixedLinkPrediction", "VerusFluidModel"]
