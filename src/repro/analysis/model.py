"""Analytical fluid model of Verus steady state.

The paper's future work: "We plan to develop a model to more fully
characterize the behavior of Verus and other delay-based control
protocols."  This module provides that first-order model for a fixed
bottleneck and validates it against the packet simulation (see
``tests/test_analysis.py``).

Model
-----
Consider a bottleneck of capacity ``C`` packets/s with base (unloaded)
round-trip time ``T0`` and a Verus flow with ratio bound ``R``.

* **Set-point equilibrium.**  Eq. 4 raises the delay set-point by δ2 per
  ε-epoch while ``D_max/D_min ≤ R`` and lowers it by δ2 once the ratio is
  exceeded, so the smoothed maximum RTT oscillates around::

      RTT* = R · T0

* **Window and queue.**  With window ``W`` on a saturated bottleneck the
  RTT is ``T0 + W/C − T0 = W/C`` (for ``W ≥ C·T0``), hence::

      W*  = C · R · T0            (equilibrium window, packets)
      Q*  = W* − C·T0 = C·T0·(R−1)   (standing queue, packets)
      d_q = (R−1) · T0            (queueing delay)

* **Throughput.**  Any ``R > 1`` keeps ``W* > C·T0``, so the link stays
  saturated and throughput ≈ C (the R knob buys *delay margin* against
  channel drops, not fixed-link throughput — which is exactly the Fig 9
  trade-off once capacity fluctuates).

* **Oscillation amplitude.**  The set-point moves ±δ2 per epoch but the
  flow only observes the result one RTT later, so the sawtooth
  overshoots by roughly the per-RTT drift::

      ΔD ≈ δ2 · (RTT*/ε)

  which is also the knob that makes larger ε sluggish (§5.3).

All quantities are first-order: burst scheduling, slow start transients
and loss episodes are outside the model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class FixedLinkPrediction:
    """Model outputs for one (link, config) pair."""

    capacity_pps: float
    base_rtt: float
    r: float
    equilibrium_rtt: float
    equilibrium_window: float
    standing_queue_packets: float
    queueing_delay: float
    throughput_pps: float
    oscillation_amplitude: float

    def one_way_delay(self, forward_fraction: float = 0.5) -> float:
        """Predicted mean one-way (sender→receiver) delay.

        Queueing happens on the forward path; ``forward_fraction`` of the
        base RTT is forward propagation.
        """
        return forward_fraction * self.base_rtt + self.queueing_delay


class VerusFluidModel:
    """First-order steady-state model of a single Verus flow."""

    def __init__(self, r: float = 2.0, epoch: float = 0.005,
                 delta2: float = 0.002, packet_bytes: int = 1400):
        if r <= 1:
            raise ValueError("R must exceed 1")
        if epoch <= 0 or delta2 <= 0:
            raise ValueError("epoch and delta2 must be positive")
        self.r = r
        self.epoch = epoch
        self.delta2 = delta2
        self.packet_bytes = packet_bytes

    # ------------------------------------------------------------------
    def predict_fixed_link(self, rate_bps: float,
                           base_rtt: float) -> FixedLinkPrediction:
        """Steady-state prediction for a constant-rate bottleneck."""
        if rate_bps <= 0 or base_rtt <= 0:
            raise ValueError("rate and base RTT must be positive")
        capacity_pps = rate_bps / (8.0 * self.packet_bytes)
        rtt_star = self.r * base_rtt
        window_star = capacity_pps * rtt_star
        queue_star = capacity_pps * base_rtt * (self.r - 1.0)
        amplitude = self.delta2 * (rtt_star / self.epoch)
        return FixedLinkPrediction(
            capacity_pps=capacity_pps,
            base_rtt=base_rtt,
            r=self.r,
            equilibrium_rtt=rtt_star,
            equilibrium_window=window_star,
            standing_queue_packets=queue_star,
            queueing_delay=(self.r - 1.0) * base_rtt,
            throughput_pps=capacity_pps,
            oscillation_amplitude=amplitude,
        )

    # ------------------------------------------------------------------
    def required_r_for_delay(self, base_rtt: float,
                             delay_budget: float) -> float:
        """Largest R whose equilibrium RTT fits a delay budget.

        The inverse design question of Fig 9: given an application's
        round-trip budget, what R should be configured?
        """
        if delay_budget <= base_rtt:
            raise ValueError("budget must exceed the base RTT")
        return delay_budget / base_rtt

    def drain_margin(self, rate_bps: float, base_rtt: float) -> float:
        """Seconds of full channel outage the standing queue absorbs
        before the pipe idles — the throughput benefit of a larger R on
        fluctuating channels (capacity drops of up to this duration do
        not leave delivery opportunities unused)."""
        prediction = self.predict_fixed_link(rate_bps, base_rtt)
        return prediction.standing_queue_packets / prediction.capacity_pps

    def epoch_sluggishness(self, base_rtt: float,
                           epoch: float = None) -> float:
        """Relative tracking lag of a given epoch length: the number of
        RTTs needed to move the set-point by one base RTT.  Larger values
        mean slower reaction to fading (the §5.3 ε sensitivity)."""
        eps = self.epoch if epoch is None else epoch
        per_epoch = self.delta2
        epochs_needed = base_rtt / per_epoch
        return epochs_needed * eps / base_rtt
