"""PCC Allegro baseline (NSDI'15) — utility-driven rate control.

Cited by the paper as adapting "on the order of seconds"; implemented so
the benchmarks can measure that adaptation-speed gap against Verus on
rapidly changing links.
"""

from .sender import (
    ADJUSTING,
    DECISION,
    STARTING,
    MonitorInterval,
    PccReceiver,
    PccSender,
    allegro_utility,
)

__all__ = [
    "ADJUSTING",
    "DECISION",
    "MonitorInterval",
    "PccReceiver",
    "PccSender",
    "STARTING",
    "allegro_utility",
]
