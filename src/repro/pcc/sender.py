"""PCC Allegro — Performance-oriented Congestion Control (NSDI 2015).

The paper singles PCC out (§2, [6]): it "proposes to empirically observe
and adopt actions that result in high performance, but PCC's adaptation
to 'rapidly' changing networks is on the order of seconds and does not
consider unpredictable fluctuations on the order of milliseconds that
occur in cellular networks."  This implementation lets the benchmarks
quantify that claim directly.

PCC is rate-based.  Time is split into *monitor intervals* (MIs) of
roughly one RTT.  Each MI measures throughput and loss and scores them
with the Allegro utility

    u(T, L) = T · (1 − 1/(1 + e^{−α(L − 0.05)})) − T·L

(α = 100; T = goodput).  The controller runs a three-state machine:

* **STARTING** — double the rate each MI while utility keeps rising;
  on the first drop, fall back to the previous rate and start testing.
* **DECISION** — run four MIs: two at rate·(1+ε), two at rate·(1−ε) in
  randomised order; move in whichever direction won both comparisons,
  otherwise stay and re-test with a larger ε.
* **ADJUSTING** — keep moving in the chosen direction with a step that
  grows each consecutive winning MI; revert and go back to DECISION as
  soon as utility falls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..netsim.engine import Event
from ..netsim.flow import ReceiverProtocol, SenderProtocol
from ..netsim.packet import MTU_BYTES, Packet

STARTING = "starting"
DECISION = "decision"
ADJUSTING = "adjusting"

#: Allegro utility parameters.
ALPHA = 100.0
LOSS_KNEE = 0.05


def allegro_utility(throughput_mbps: float, loss: float) -> float:
    """The Allegro utility function u(T, L)."""
    if throughput_mbps < 0 or not 0 <= loss <= 1:
        raise ValueError("throughput must be >= 0 and loss in [0, 1]")
    sigmoid = 1.0 / (1.0 + math.exp(-ALPHA * (loss - LOSS_KNEE)))
    return throughput_mbps * (1.0 - sigmoid) - throughput_mbps * loss


@dataclass
class MonitorInterval:
    """Bookkeeping for one monitor interval."""

    mi_id: int
    rate_pps: float
    start: float
    end: float = 0.0
    sent: int = 0
    acked: int = 0
    #: utility once evaluated
    utility: Optional[float] = None
    #: role in a decision round: +1 (rate up), -1 (rate down), 0 (plain)
    direction: int = 0

    def loss_rate(self) -> float:
        if self.sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.acked / self.sent)

    def throughput_mbps(self, packet_bytes: int) -> float:
        span = max(self.end - self.start, 1e-9)
        return self.acked * packet_bytes * 8.0 / span / 1e6


class PccSender(SenderProtocol):
    """PCC Allegro rate-based sender."""

    name = "pcc"

    def __init__(self, flow_id: int, initial_rate_pps: float = 100.0,
                 epsilon: float = 0.05, packet_bytes: int = MTU_BYTES,
                 min_rate_pps: float = 2.0, max_rate_pps: float = 50_000.0,
                 seed: int = 0):
        super().__init__(flow_id)
        if initial_rate_pps <= 0 or epsilon <= 0 or epsilon >= 0.5:
            raise ValueError("need initial rate > 0 and 0 < epsilon < 0.5")
        self.packet_bytes = packet_bytes
        self.rate_pps = initial_rate_pps
        self.base_rate_pps = initial_rate_pps
        self.epsilon = epsilon
        self.min_rate_pps = min_rate_pps
        self.max_rate_pps = max_rate_pps
        self.rng = np.random.default_rng(seed)
        self.state = STARTING
        self._mi_counter = 0
        self._mis: Dict[int, MonitorInterval] = {}
        self._current_mi: Optional[MonitorInterval] = None
        self._next_seq = 0
        self._seq_to_mi: Dict[int, int] = {}
        self._send_event: Optional[Event] = None
        self._mi_event: Optional[Event] = None
        self._prev_utility: Optional[float] = None
        self._decision_queue: List[int] = []   # directions left to test
        self._decision_results: List[MonitorInterval] = []
        self._adjust_direction = 0
        self._adjust_steps = 0
        self.srtt: Optional[float] = None
        self.decisions = 0
        self.state_changes: List[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        self._begin_mi(self.rate_pps, direction=0)
        self._emit()

    def stop(self) -> None:
        super().stop()
        for event in (self._send_event, self._mi_event):
            if event is not None:
                event.cancel()

    # ------------------------------------------------------------------
    # Paced transmission
    # ------------------------------------------------------------------
    def _emit(self) -> None:
        if not self.running:
            return
        mi = self._current_mi
        packet = Packet(flow_id=self.flow_id, seq=self._next_seq,
                        size=self.packet_bytes, sent_time=self.now)
        if mi is not None:
            mi.sent += 1
            self._seq_to_mi[self._next_seq] = mi.mi_id
        self._next_seq += 1
        self.send(packet)
        spacing = 1.0 / max(self.rate_pps, self.min_rate_pps)
        self._send_event = self.sim.schedule(spacing, self._emit)

    # ------------------------------------------------------------------
    # Monitor intervals
    # ------------------------------------------------------------------
    def _mi_duration(self) -> float:
        rtt = self.srtt if self.srtt is not None else 0.1
        return max(1.0 * rtt, 0.025)

    def _begin_mi(self, rate_pps: float, direction: int) -> None:
        self.rate_pps = float(np.clip(rate_pps, self.min_rate_pps,
                                      self.max_rate_pps))
        self._mi_counter += 1
        mi = MonitorInterval(mi_id=self._mi_counter, rate_pps=self.rate_pps,
                             start=self.now, direction=direction)
        self._mis[mi.mi_id] = mi
        self._current_mi = mi
        self._mi_event = self.sim.schedule(self._mi_duration(),
                                           self._end_mi, mi.mi_id)

    def _end_mi(self, mi_id: int) -> None:
        if not self.running:
            return
        mi = self._mis.get(mi_id)
        if mi is None:
            return
        mi.end = self.now
        # Evaluate after one RTT of grace so straggler ACKs are counted.
        grace = self.srtt if self.srtt is not None else 0.1
        self.sim.schedule(grace, self._evaluate_mi, mi_id)
        self._advance_state_machine()

    def _evaluate_mi(self, mi_id: int) -> None:
        mi = self._mis.get(mi_id)
        if mi is None or mi.utility is not None:
            return
        mi.utility = allegro_utility(mi.throughput_mbps(self.packet_bytes),
                                     mi.loss_rate())
        if mi.direction != 0:
            self._decision_results.append(mi)
            self._maybe_decide()
        elif self.state == STARTING:
            self._starting_step(mi)
        elif self.state == ADJUSTING:
            self._adjusting_step(mi)

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _advance_state_machine(self) -> None:
        """Pick the rate for the next MI when the previous one closes."""
        if self.state == DECISION and self._decision_queue:
            direction = self._decision_queue.pop(0)
            rate = self.base_rate_pps * (1.0 + direction * self.epsilon)
            self._begin_mi(rate, direction=direction)
        elif self.state == DECISION:
            # Waiting for results; probe at the base rate meanwhile.
            self._begin_mi(self.base_rate_pps, direction=0)
        else:
            self._begin_mi(self.rate_pps, direction=0)

    def _enter_decision(self) -> None:
        self._set_state(DECISION)
        self.base_rate_pps = self.rate_pps
        order = [1, -1, 1, -1]
        self.rng.shuffle(order)
        self._decision_queue = order
        self._decision_results = []

    def _maybe_decide(self) -> None:
        if len(self._decision_results) < 4:
            return
        ups = [mi.utility for mi in self._decision_results
               if mi.direction > 0]
        downs = [mi.utility for mi in self._decision_results
                 if mi.direction < 0]
        self._decision_results = []
        self.decisions += 1
        if min(ups) > max(downs):
            self._start_adjusting(+1)
        elif min(downs) > max(ups):
            self._start_adjusting(-1)
        else:
            # Inconclusive: stay and re-test.
            self._enter_decision()

    def _start_adjusting(self, direction: int) -> None:
        self._set_state(ADJUSTING)
        self._adjust_direction = direction
        self._adjust_steps = 1
        self._prev_utility = None
        self.rate_pps = self.base_rate_pps * (
            1.0 + direction * self.epsilon)

    def _starting_step(self, mi: MonitorInterval) -> None:
        if self._prev_utility is None or mi.utility > self._prev_utility:
            self._prev_utility = mi.utility
            self.rate_pps = min(self.rate_pps * 2.0, self.max_rate_pps)
        else:
            self.rate_pps = max(self.rate_pps / 2.0, self.min_rate_pps)
            self._enter_decision()

    def _adjusting_step(self, mi: MonitorInterval) -> None:
        if self._prev_utility is None or mi.utility >= self._prev_utility:
            self._prev_utility = mi.utility
            self._adjust_steps += 1
            factor = 1.0 + (self._adjust_direction * self.epsilon
                            * self._adjust_steps)
            self.rate_pps = self.base_rate_pps * max(factor, 0.1)
        else:
            # Utility fell: step back once and re-enter decision making.
            back = 1.0 + (self._adjust_direction * self.epsilon
                          * max(self._adjust_steps - 1, 0))
            self.rate_pps = self.base_rate_pps * max(back, 0.1)
            self._enter_decision()

    def _set_state(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.state_changes.append(state)

    # ------------------------------------------------------------------
    # Acknowledgements
    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        if not packet.is_ack or not self.running:
            return
        rtt = self.now - packet.echo_sent_time
        if rtt > 0:
            if self.srtt is None:
                self.srtt = rtt
            else:
                self.srtt += 0.125 * (rtt - self.srtt)
        mi_id = self._seq_to_mi.pop(packet.ack_seq, None)
        if mi_id is not None:
            mi = self._mis.get(mi_id)
            if mi is not None:
                mi.acked += 1


class PccReceiver(ReceiverProtocol):
    """Per-packet acknowledging receiver (PCC's feedback channel)."""
