"""Command-line interface: run paper experiments from a shell.

Usage::

    python -m repro list                      # available experiments
    python -m repro run fig3                  # regenerate Fig 3's rows
    python -m repro run table1 --duration 30  # faster, lower fidelity
    python -m repro quickstart                # Verus vs Cubic in one line
    python -m repro trace --scenario city_driving --out trace.txt
    python -m repro live --protocol verus --protocol cubic --duration 10
    python -m repro sweep --scenario city_driving --protocol verus \
        --protocol cubic --seeds 3 --jobs 4   # cached parallel campaign
    python -m repro corpus build --preset default   # trace corpus
    python -m repro corpus stats --json
    python -m repro sweep --corpus .repro-corpus --protocol verus
    python -m repro chaos --protocol verus --fault blackout \
        --fault chaos --backend both          # fault-injection matrix
    python -m repro check                     # conformance suite
    python -m repro check --bless             # re-bless golden traces

Every experiment honours ``--seed`` so invocations are reproducible
from the shell; without it each experiment keeps its paper-default
seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import format_table
from .experiments.report import format_series


def _seed_kwargs(args) -> dict:
    """``{'seed': n}`` when ``--seed`` was given, else {} (paper default)."""
    seed = getattr(args, "seed", None)
    return {} if seed is None else {"seed": seed}


def _run_fig1(args) -> None:
    from .experiments.channel_study import fig1_burst_arrivals
    result = fig1_burst_arrivals(duration=args.duration, **_seed_kwargs(args))
    print(format_series("fig1 burst arrivals", result.times,
                        result.delays * 1e3, "t(s)", "delay(ms)"))
    print(format_table([result.stats.summary()], title="burst statistics"))


def _run_fig2(args) -> None:
    from .experiments.channel_study import fig2_burst_pdfs
    result = fig2_burst_pdfs(duration=args.duration, **_seed_kwargs(args))
    print(format_table(result.summary_rows(), title="Fig 2: burst statistics"))


def _run_fig3(args) -> None:
    from .experiments.channel_study import fig3_competing_traffic
    result = fig3_competing_traffic(duration=args.duration,
                                    **_seed_kwargs(args))
    print(format_table(result.rows, title="Fig 3: competing traffic delay"))


def _run_fig4(args) -> None:
    from .experiments.channel_study import fig4_throughput_windows
    from .viz import line_chart
    result = fig4_throughput_windows(duration=args.duration,
                                     **_seed_kwargs(args))
    t100, s100 = result.window_100ms
    t20, s20 = result.window_20ms
    n = min(600, t100.size)
    print(line_chart(t100[:n], s100[:n] / 1e6,
                     title="Fig 4a: 100 ms windows", x_label="t (s)",
                     y_label="Mbps"))
    n = min(600, t20.size)
    print(line_chart(t20[:n], s20[:n] / 1e6,
                     title="Fig 4b: 20 ms windows", x_label="t (s)",
                     y_label="Mbps"))
    print(f"CV @100ms: {result.variability(result.window_100ms[1]):.2f}   "
          f"CV @20ms: {result.variability(result.window_20ms[1]):.2f}")
    print(format_table(result.predictor_rows, title="§3 predictor study"))


def _run_fig5(args) -> None:
    from .experiments.profile_study import fig5_example_profile
    from .viz import line_chart
    snap = fig5_example_profile(duration=args.duration, **_seed_kwargs(args))
    print(line_chart(snap.windows, snap.delays_ms,
                     title="Fig 5: Verus delay profile",
                     x_label="sending window W (packets)",
                     y_label="delay D (ms)"))


def _run_fig7(args) -> None:
    from .experiments.profile_study import fig7_profile_evolution, profile_tracks_channel
    result = fig7_profile_evolution(duration=args.duration,
                                    **_seed_kwargs(args))
    print(f"snapshots: {len(result.snapshots)}  "
          f"interpolations: {result.interpolations}  "
          f"profile_tracks_channel: {profile_tracks_channel(result)}")


def _run_fig8(args) -> None:
    from .experiments.macro import fig8_realworld
    points = fig8_realworld(duration=args.duration, repetitions=args.reps,
                            **_seed_kwargs(args))
    print(format_table([p.as_dict() for p in points],
                       title="Fig 8: real-world macro comparison"))


def _run_fig9(args) -> None:
    from .experiments.macro import fig9_r_tradeoff
    points = fig9_r_tradeoff(duration=args.duration, repetitions=args.reps,
                             **_seed_kwargs(args))
    print(format_table([p.as_dict() for p in points],
                       title="Fig 9: Verus R trade-off"))


def _run_fig10(args) -> None:
    from .experiments.tracedriven import fig10_mobility, summarize_fig10
    from .viz import scatter_plot
    points = fig10_mobility(duration=args.duration, **_seed_kwargs(args))
    print(format_table(summarize_fig10(points),
                       title="Fig 10: mobility scatter (summarised)"))
    for scenario in sorted({p.scenario for p in points}):
        groups = {}
        for p in points:
            if p.scenario == scenario and p.mean_delay_ms > 0:
                groups.setdefault(p.protocol, []).append(
                    (p.mean_delay_ms / 1e3, p.throughput_mbps))
        print(scatter_plot(groups, title=f"Fig 10: {scenario}",
                           x_label="delay (s)", y_label="Mbps", log_x=True))


def _run_table1(args) -> None:
    from .experiments.tracedriven import table1_fairness
    rows = table1_fairness(duration=args.duration, **_seed_kwargs(args))
    print(format_table(rows, title="Table 1: Jain's fairness index"))


def _run_fig11(args) -> None:
    from .experiments.micro import fig11_rapid_change
    from .viz import multi_line_chart
    for scenario in ("I", "II"):
        result = fig11_rapid_change(scenario, duration=args.duration,
                                    **_seed_kwargs(args))
        rows = [{"protocol": name,
                 "throughput_mbps": stats["throughput_bps"] / 1e6,
                 "mean_delay_ms": stats["mean_delay_ms"],
                 "utilization": result.utilization(name)}
                for name, stats in result.stats.items()]
        print(format_table(rows, title=f"Fig 11 scenario {scenario}"))
        series = {name: (t, tput / 1e6)
                  for name, (t, tput) in result.series.items()}
        print(multi_line_chart(series,
                               title=f"Fig 11 {scenario}: throughput",
                               x_label="t (s)", y_label="Mbps"))


def _run_fig12(args) -> None:
    from .experiments.micro import fig12_new_flows
    result = fig12_new_flows(**_seed_kwargs(args))
    print(f"Fig 12: final Jain index {result.final_jain:.3f}, first flow "
          f"alone used {result.first_flow_initial_share:.0%} of the link")


def _run_fig13(args) -> None:
    from .experiments.micro import fig13_rtt_fairness
    result = fig13_rtt_fairness(duration=args.duration, **_seed_kwargs(args))
    print(format_table([s.as_dict() for s in result["stats"]],
                       title="Fig 13: RTT fairness"))
    print(f"Jain index: {result['jain']:.3f}   "
          f"max/min throughput: {result['max_over_min']:.2f}")


def _run_fig14(args) -> None:
    from .experiments.micro import fig14_vs_cubic
    result = fig14_vs_cubic(**_seed_kwargs(args))
    print(f"Fig 14: Verus/Cubic aggregate share ratio "
          f"{result['verus_to_cubic_ratio']:.2f} "
          f"(Jain over all six flows: {result['jain_all']:.3f})")


def _run_fig15(args) -> None:
    from .experiments.tracedriven import (
        fig15_delay_ratio,
        fig15_gain,
        fig15_static_profile,
    )
    rows = fig15_static_profile(duration=args.duration, **_seed_kwargs(args))
    print(format_table(rows, title="Fig 15: static vs updating profile"))
    print(f"updating/static throughput ratio: {fig15_gain(rows):.2f}")
    print(f"updating/static delay ratio:      {fig15_delay_ratio(rows):.2f}")


def _run_shortflows(args) -> None:
    from .experiments.short_flows import fct_sweep, verus_competitive_ratio
    rows = fct_sweep(repetitions=2, duration=min(args.duration * 2, 120.0),
                     **_seed_kwargs(args))
    print(format_table(rows, title="§7 short flows: completion times (s)"))
    print(f"geometric-mean Verus/Cubic FCT ratio: "
          f"{verus_competitive_ratio(rows):.2f}")


def _run_uplink(args) -> None:
    from .experiments.uplink import observations_carry_over, uplink_comparison
    rows = uplink_comparison(duration=args.duration, **_seed_kwargs(args))
    print(format_table(rows, title="§6.2 uplink comparison"))
    print("checks:", observations_carry_over(rows))


def _run_landscape(args) -> None:
    import importlib.util
    import pathlib
    bench = (pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
             / "test_extended_baselines.py")
    if bench.exists():
        spec = importlib.util.spec_from_file_location("landscape", bench)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        rows = module.run_landscape(duration=args.duration,
                                    **_seed_kwargs(args))
    else:   # installed without the benchmarks tree: inline fallback
        from .cellular import generate_scenario_trace
        from .experiments import repeat_flows, run_trace_contention
        from .metrics import aggregate_stats
        trace = generate_scenario_trace("city_stationary",
                                        duration=args.duration,
                                        technology="3g",
                                        mean_rate_bps=10e6, seed=21)
        rows = []
        for protocol in ("verus", "cubic", "vegas", "sprout", "pcc"):
            options = {"r": 2.0} if protocol == "verus" else {}
            result = run_trace_contention(
                trace, repeat_flows(protocol, 3, **options),
                duration=args.duration, seed=21)
            agg = aggregate_stats(result.all_stats())
            rows.append({"protocol": protocol,
                         "throughput_mbps": agg["mean_throughput_mbps"],
                         "mean_delay_ms": agg["mean_delay_ms"]})
    print(format_table(rows, title="Protocol landscape on one 3G cell"))
    from .viz import scatter_plot
    groups = {r["protocol"]: [(max(r["mean_delay_ms"], 0.1) / 1e3,
                               r["throughput_mbps"])] for r in rows}
    print(scatter_plot(groups, title="throughput vs delay",
                       x_label="delay (s)", y_label="Mbps", log_x=True))


def _run_sensitivity(args) -> None:
    from .experiments import sensitivity
    for name, fn in (("epoch", sensitivity.sweep_epoch),
                     ("update interval", sensitivity.sweep_update_interval),
                     ("deltas", sensitivity.sweep_deltas)):
        print(format_table(fn(duration=args.duration, **_seed_kwargs(args)),
                           title=f"§5.3 sweep: {name}"))


def _run_live(args) -> None:
    """``repro live``: a real UDP session through the link emulator."""
    from .cellular import generate_scenario_trace
    from .experiments.runner import FlowSpec, run_trace_contention
    from .live import LiveSessionError, run_live_session

    protocols = args.protocol if args.protocol else ["verus"]
    try:
        specs = [FlowSpec(protocol=p,
                          options={"r": 2.0} if p == "verus" else {})
                 for p in protocols]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    seed = args.seed if args.seed is not None else 1
    if args.trace:
        from .traces.formats import read_trace_seconds
        try:
            # Any corpus format works here: mahimahi, seconds or CSV,
            # auto-detected by extension/content.
            trace = read_trace_seconds(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read trace file: {exc}", file=sys.stderr)
            raise SystemExit(2)
    else:
        trace = generate_scenario_trace(args.scenario,
                                        duration=max(args.duration, 1.0),
                                        technology=args.technology,
                                        seed=seed)
    try:
        result = run_live_session(specs, trace=trace,
                                  duration=args.duration,
                                  warmup=min(1.0, args.duration / 5.0),
                                  seed=seed)
    except LiveSessionError as exc:
        print(f"live session unavailable: {exc}", file=sys.stderr)
        raise SystemExit(2)
    except KeyboardInterrupt:
        print("live session interrupted", file=sys.stderr)
        raise SystemExit(130)
    rows = [s.as_dict() for s in result.all_stats()]
    print(format_table(rows, title=f"live UDP session ({args.scenario}, "
                                   f"{args.duration:g}s wall clock)"))
    stats = result.emulator_stats
    print(f"emulator: {stats.delivered} delivered, "
          f"{stats.wasted_opportunities} wasted opportunities, "
          f"{stats.stochastic_losses} losses, "
          f"{stats.acks_forwarded} acks forwarded")
    if args.compare_sim:
        sim_result = run_trace_contention(trace, specs,
                                          duration=args.duration,
                                          warmup=min(1.0, args.duration / 5.0),
                                          seed=seed)
        sim_rows = [s.as_dict() for s in sim_result.all_stats()]
        print(format_table(sim_rows,
                           title="equivalent simulated run (same trace)"))


def _run_sweep(args) -> int:
    """``repro sweep``: expand a campaign grid, run it through the
    engine, print the aggregated table plus cache accounting.

    With ``--corpus``, the scenario axis comes from a trace corpus
    instead of the synthetic channel: every (selected) trace becomes a
    grid entry whose cells replay that trace, pinned by content hash.
    """
    from .campaign import (
        CampaignSpec,
        ResultStore,
        aggregate_campaign,
        aggregate_timings,
        rows_as_json,
        run_campaign,
    )

    try:
        if args.corpus:
            from .traces import CorpusError, expand_corpus, load_corpus
            try:
                corpus = load_corpus(args.corpus)
                tasks = expand_corpus(
                    corpus,
                    protocols=args.protocol or ["verus", "cubic"],
                    flow_counts=args.flows or [3],
                    seeds=args.seeds,
                    duration=args.duration,
                    base_seed=args.base_seed,
                    names=args.scenario or None,
                )
            except CorpusError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            spec = CampaignSpec(
                scenarios=args.scenario or ["campus_pedestrian",
                                            "city_driving"],
                protocols=args.protocol or ["verus", "cubic"],
                flow_counts=args.flows or [3],
                seeds=args.seeds,
                duration=(args.duration if args.duration is not None
                          else 30.0),
                technology=args.technology,
                base_seed=args.base_seed,
            )
            tasks = spec.expand()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.dry_run:
        rows = [{"task": i, "scenario": t.scenario, "protocol": t.protocol,
                 "label": t.label, "flows": t.flows,
                 "seed_index": t.seed_index, "seed": t.seed,
                 "key": t.key()[:12]} for i, t in enumerate(tasks)]
        print(format_table(rows, title=f"campaign grid ({len(tasks)} tasks, "
                                       f"dry run)"))
        return 0

    store = None if args.no_cache else ResultStore(args.cache_dir)

    def progress(outcome, done, total) -> None:
        note = outcome.status
        if outcome.error:
            note += f": {outcome.error}"
        print(f"[{done}/{total}] task {outcome.index} {note} "
              f"({outcome.seconds:.1f}s)", file=sys.stderr)

    result = run_campaign(tasks, jobs=args.jobs, store=store,
                          resume=args.resume, timeout=args.timeout,
                          retries=args.retries, progress=progress,
                          collect_timings=args.telemetry,
                          chunk=args.chunk)
    rows = aggregate_campaign(result.tasks, result.outcomes)
    print(format_table(rows, title="campaign summary (mean over seeds, "
                                   "95% CI)"))
    stats = result.stats
    print(f"tasks: {stats.total}  executed: {stats.executed}  "
          f"cached: {stats.cached}  failed: "
          f"{stats.failed + stats.timeouts}  retries: {stats.retries}")
    if args.telemetry:
        rollup = aggregate_timings(result.outcomes)
        if rollup is None:
            print("telemetry: no task carried timings (all results were "
                  "cached; use --fresh to re-measure)")
        else:
            print(f"telemetry: {rollup['tasks_with_timings']}/"
                  f"{rollup['tasks']} tasks timed  "
                  f"cache lookups: {stats.cache_lookup_seconds * 1e3:.1f}ms")
            timing_rows = [
                {"span": key, "mean_s": rollup["mean"][key],
                 "total_s": rollup["total"][key],
                 "max_s": rollup["max"][key]}
                for key in rollup["mean"]
            ]
            print(format_table(timing_rows, title="per-task span timings"))
    if store is not None:
        print(f"cache '{args.cache_dir}': {store.hits} hits, "
              f"{store.misses} misses, {store.writes} writes")
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(rows_as_json(rows))
        print(f"wrote aggregated rows to {args.out}")
    return 0 if result.all_ok else 1


def _run_bench(args) -> int:
    """``repro bench``: run the named benchmark suite, write a
    schema-versioned ``BENCH_<label>.json``, optionally diff against a
    baseline file.  With ``--compare BASELINE --against CURRENT`` no
    benchmarks run — the two files are diffed directly.  ``--profile``
    skips timing entirely and prints cProfile tables for the named hot
    paths."""
    from .obs import (
        compare,
        format_compare,
        load_bench,
        regressions,
        run_bench,
        write_bench,
    )

    if args.profile:
        from .obs.profiler import profile_hotpaths
        try:
            profiles = profile_hotpaths(args.profile)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for name, rows in profiles.items():
            print(format_table(rows, title=f"cProfile: {name} hot path"))
        return 0

    if args.compare and args.against:
        try:
            rows = compare(load_bench(args.compare), load_bench(args.against),
                           max_regression=args.max_regression)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_compare(rows))
        regs = regressions(rows)
        if regs:
            print(f"{len(regs)} regression(s) beyond tolerance",
                  file=sys.stderr)
            return 0 if args.warn_only else 1
        return 0

    mode = "full" if args.full else "quick"

    def progress(result: dict) -> None:
        print(f"  {result['name']:<28s} {result['seconds'] * 1e3:9.2f}ms "
              f"(best of {result['repeats']})", file=sys.stderr)

    try:
        doc = run_bench(names=args.name or None, mode=mode, jobs=args.jobs,
                        label=args.label, progress=progress)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = write_bench(doc, path=args.out)
    print(f"wrote {path} ({len(doc['benchmarks'])} benchmarks, mode={mode})")
    for key, value in sorted(doc["derived"].items()):
        print(f"  {key}: {value}")
    rc = 0
    if doc["failures"]:
        for name, error in sorted(doc["failures"].items()):
            print(f"benchmark {name} failed: {error}", file=sys.stderr)
        rc = 1
    if args.compare:
        try:
            rows = compare(load_bench(args.compare), doc,
                           max_regression=args.max_regression)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_compare(rows))
        regs = regressions(rows)
        if regs:
            print(f"{len(regs)} regression(s) beyond tolerance",
                  file=sys.stderr)
            if not args.warn_only:
                rc = 1
    return rc


def _run_chaos(args) -> int:
    """``repro chaos``: expand a (protocol × fault × seed) acceptance
    matrix, run it through the campaign engine, and fail unless every
    cell recovered post-disruption."""
    from .campaign import ResultStore
    from .faults import FAULT_PRESETS, expand_chaos, run_chaos_matrix

    backends = ["sim", "live"] if args.backend == "both" else [args.backend]
    try:
        if args.corpus:
            from .traces import CorpusError, expand_corpus_chaos, load_corpus
            try:
                corpus = load_corpus(args.corpus)
                tasks = expand_corpus_chaos(
                    corpus,
                    protocols=args.protocol or ["verus", "cubic"],
                    faults=args.fault or ["blackout", "chaos"],
                    seeds=args.seeds,
                    duration=args.duration,
                    backends=backends,
                    flows=args.flows,
                    deadline=args.deadline,
                    base_seed=args.base_seed,
                    names=args.trace or None,
                )
            except CorpusError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            tasks = expand_chaos(
                protocols=args.protocol or ["verus", "cubic"],
                faults=args.fault or ["blackout", "chaos"],
                seeds=args.seeds,
                duration=(args.duration if args.duration is not None
                          else 20.0),
                backends=backends,
                scenario=args.scenario,
                flows=args.flows,
                deadline=args.deadline,
                base_seed=args.base_seed,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.dry_run:
        rows = [{"task": i, "protocol": t.protocol, "fault": t.fault,
                 "backend": t.backend, "seed_index": t.seed_index,
                 "seed": t.seed, "key": t.key()[:12]}
                for i, t in enumerate(tasks)]
        print(format_table(rows, title=f"chaos matrix ({len(tasks)} cells, "
                                       f"dry run)"))
        return 0

    store = None if args.no_cache else ResultStore(args.cache_dir)

    def progress(outcome, done, total) -> None:
        note = outcome.status
        if outcome.ok and isinstance(outcome.result, dict):
            note += (" recovered" if outcome.result.get("recovered")
                     else " NOT-RECOVERED")
            if outcome.result.get("degraded"):
                note += " degraded"
        if outcome.error:
            note += f": {outcome.error}"
        print(f"[{done}/{total}] cell {outcome.index} {note} "
              f"({outcome.seconds:.1f}s)", file=sys.stderr)

    result = run_chaos_matrix(tasks, jobs=args.jobs, store=store,
                              resume=args.resume, timeout=args.timeout,
                              retries=args.retries, progress=progress)
    rows = result.rows()
    print(format_table(rows, title="chaos acceptance matrix "
                                   "(recovered / cells per group)"))
    stats = result.stats
    print(f"cells: {stats.total}  executed: {stats.executed}  "
          f"cached: {stats.cached}  failed: "
          f"{stats.failed + stats.timeouts}  retries: {stats.retries}")
    if store is not None:
        print(f"cache '{args.cache_dir}': {store.hits} hits, "
              f"{store.misses} misses, {store.writes} writes")
    if args.out:
        import json
        from pathlib import Path
        Path(args.out).write_text(json.dumps(rows, indent=2))
        print(f"wrote matrix rows to {args.out}")
    if not result.all_ok:
        print("FAIL: some cells did not execute", file=sys.stderr)
        return 1
    if not result.all_recovered:
        print("FAIL: some flows did not recover post-disruption",
              file=sys.stderr)
        return 1
    print("all flows recovered")
    return 0


def _run_check(args) -> int:
    """``repro check``: run the conformance pipeline — invariant-audited
    scenarios, golden-trace diffs (or ``--bless``), the sim<->live
    differential harness, and the mutation smoke."""
    from .check import run_conformance

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    result = run_conformance(
        protocols=args.protocol or None,
        golden_dir=args.golden_dir,
        jobs=args.jobs,
        bless=args.bless,
        with_differential=not args.no_live,
        with_mutation=not args.no_mutation,
        differential_duration=args.live_duration,
        log=log,
    )

    print(format_table([row.to_dict() for row in result.rows],
                       title="invariant audit + golden traces"))
    for row in result.rows:
        for message in row.messages:
            print(f"  {row.protocol}: {message}", file=sys.stderr)
    if result.blessed_paths:
        for path in result.blessed_paths:
            print(f"blessed {path}")
    if result.differential:
        print(format_table(
            [d.to_dict() for d in result.differential],
            title="differential sim<->live (calibrated envelopes)"))
        for d in result.differential:
            for message in d.messages:
                print(f"  {d.protocol}: {message}", file=sys.stderr)
    if result.mutants:
        print(format_table(
            [{"mutant": m.name, "protocol": m.protocol,
              "caught_by": ", ".join(m.caught_by) or "NOT CAUGHT"}
             for m in result.mutants],
            title="mutation smoke (every mutant must be caught)"))
    if result.ok:
        print("conformance: OK")
        return 0
    print("conformance: FAIL", file=sys.stderr)
    return 1


def _run_corpus(args) -> int:
    """``repro corpus``: manage content-addressed trace corpora — build
    preset families, verify integrity, characterize, import, convert."""
    from .traces import (
        CorpusError,
        build_corpus,
        convert,
        import_trace,
        load_corpus,
    )

    try:
        if args.action == "build":
            def progress(name: str, status: str) -> None:
                print(f"  {name}: {status}", file=sys.stderr)
            report = build_corpus(root=args.dir, preset=args.preset,
                                  jobs=args.jobs, force=args.force,
                                  progress=progress)
            print(f"corpus '{report.corpus.name}' at {args.dir}: "
                  f"built: {len(report.built)}  "
                  f"unchanged: {len(report.unchanged)}")
            return 0
        if args.action == "convert":
            count = convert(args.src, args.dst, from_fmt=args.from_fmt,
                            to_fmt=args.to_fmt)
            print(f"wrote {count} delivery opportunities to {args.dst}")
            return 0

        corpus = load_corpus(args.dir)
        if args.action == "verify":
            report = corpus.verify()
            rows = [{"trace": name, "status": status}
                    for name, status in sorted(report.items())]
            print(format_table(rows, title=f"corpus verify ({args.dir})"))
            mismatched = sum(1 for s in report.values()
                             if s.startswith("mismatch"))
            missing = sum(1 for s in report.values() if s == "missing")
            print(f"ok: {len(report) - mismatched - missing}  "
                  f"missing: {missing}  mismatched: {mismatched}")
            return 1 if mismatched else 0
        if args.action == "list":
            rows = [{"trace": name,
                     "kind": corpus.entries[name].source.get("kind"),
                     "opportunities": corpus.entries[name].opportunities,
                     "duration_s": corpus.entries[name].stats.get(
                         "duration_s"),
                     "sha256": corpus.entries[name].sha256[:12]}
                    for name in corpus.names()]
            print(format_table(rows, title=f"corpus '{corpus.name}' "
                                           f"({len(rows)} traces)"))
            return 0
        if args.action == "stats":
            names = args.trace or corpus.names()
            payload = {name: corpus.entry(name).stats for name in names}
            if args.json:
                import json
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                rows = [{"trace": name, **stats}
                        for name, stats in sorted(payload.items())]
                print(format_table(rows, title="corpus trace statistics"))
            return 0
        if args.action == "import":
            entry = import_trace(corpus, args.file, name=args.name,
                                 fmt=args.format, overwrite=args.overwrite)
            print(f"imported {entry.name!r}: {entry.opportunities} "
                  f"opportunities, sha256 {entry.sha256[:12]}")
            return 0
    except (CorpusError, ValueError, OSError) as exc:
        # TraceFormatError is a ValueError, so malformed files land here
        # too, not as tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"error: unknown corpus action {args.action!r}", file=sys.stderr)
    return 2


def _run_soak(args) -> int:
    """``repro soak``: budgeted endurance runs over randomized (but
    seed-reproducible) protocol × fault × channel cells, supervised by
    worker watchdogs, with crash bundles, quarantine and triage."""
    from .resilience import SoakReport, SoakSpec, load_ledger
    from .resilience.soak import replay_cell, run_soak

    inject = {}
    for item in args.inject or []:
        try:
            mode, _, draw = item.partition("@")
            inject[int(draw)] = {"mode": mode}
        except ValueError:
            print(f"error: --inject wants MODE@DRAW, got {item!r}",
                  file=sys.stderr)
            return 2
    try:
        spec = SoakSpec(
            seed=args.seed,
            budget_cells=args.budget_cells,
            budget_seconds=args.budget_seconds,
            protocols=args.protocol or SoakSpec.protocols,
            faults=args.fault or SoakSpec.faults,
            scenarios=args.scenario or SoakSpec.scenarios,
            corpus=args.corpus,
            duration=args.duration,
            flows=args.flows,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            stall_after=args.stall_after,
            rss_limit_mb=args.rss_mb,
            state_dir=args.state_dir,
            inject=inject,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.report:
        records = load_ledger(spec.state_dir)
        if not records:
            print(f"no soak ledger under {spec.state_dir}", file=sys.stderr)
            return 2
        report = SoakReport(records)
        print(report.render())
        return 0 if report.ok else 1

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    if args.replay:
        try:
            record = replay_cell(spec, args.replay)
        except KeyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"replay {args.replay}: {record.kind} "
              f"(status {record.status}, attempts {record.attempts})")
        if record.error:
            print(f"  error: {record.error}")
        if record.bundle:
            print(f"  bundle: {record.bundle}")
        return 0 if record.kind in ("ok", "flaky") else 1

    def progress(outcome, done, total) -> None:
        note = outcome.status
        if outcome.error:
            note += f": {outcome.error}"
        print(f"  [{done}/{total}] cell {outcome.index} {note} "
              f"({outcome.seconds:.1f}s)", file=sys.stderr)

    result = run_soak(spec, fresh=args.fresh,
                      progress=progress if args.verbose else None, log=log)
    report = result.report
    print(report.render())
    print(f"draws: {result.draws}  quarantined-skips: {result.skipped}  "
          f"executed: {result.stats['executed']}  "
          f"cached: {result.stats['cached']}  "
          f"retries: {result.stats['retries']}  "
          f"pool-restarts: {result.stats['pool_restarts']}")
    print(f"scenario draw {result.digest}")
    if report.ok:
        print("soak: OK (nothing worse than flakiness)")
        return 0
    print("soak: FAIL — non-flaky failure signatures present",
          file=sys.stderr)
    return 1


EXPERIMENTS: Dict[str, Callable] = {
    "fig1": _run_fig1, "fig2": _run_fig2, "fig3": _run_fig3,
    "fig4": _run_fig4, "fig5": _run_fig5, "fig7": _run_fig7,
    "fig8": _run_fig8, "fig9": _run_fig9, "fig10": _run_fig10,
    "table1": _run_table1, "fig11": _run_fig11, "fig12": _run_fig12,
    "fig13": _run_fig13, "fig14": _run_fig14, "fig15": _run_fig15,
    "sensitivity": _run_sensitivity, "shortflows": _run_shortflows,
    "uplink": _run_uplink, "landscape": _run_landscape,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="verus-repro",
        description="Reproduce experiments from the Verus paper (SIGCOMM'15)")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--duration", type=float, default=60.0,
                     help="simulated seconds per run (default 60)")
    run.add_argument("--reps", type=int, default=2,
                     help="repetitions for averaged experiments")
    run.add_argument("--telemetry", action="store_true",
                     help="attach a telemetry session and write "
                          "timeline/meter artifacts after the run")
    run.add_argument("--telemetry-out", default=".", metavar="DIR",
                     help="directory for --telemetry artifacts (default .)")
    run.add_argument("--seed", type=int, default=None,
                     help="override the experiment's paper-default seed")

    quick = sub.add_parser("quickstart", help="Verus vs Cubic on one trace")
    quick.add_argument("--duration", type=float, default=30.0)
    quick.add_argument("--seed", type=int, default=None,
                       help="channel/queue seed (default 1)")

    live = sub.add_parser(
        "live", help="run protocols over real UDP through the link emulator")
    live.add_argument("--protocol", action="append", default=None,
                      help="flow protocol; repeat for several concurrent "
                           "flows (default: verus)")
    live.add_argument("--scenario", default="city_driving")
    live.add_argument("--technology", default="3g", choices=["3g", "lte"])
    live.add_argument("--duration", type=float, default=10.0,
                      help="wall-clock seconds (default 10)")
    live.add_argument("--seed", type=int, default=None,
                      help="channel/queue seed (default 1)")
    live.add_argument("--trace", default=None,
                      help="replay a Mahimahi-style trace file instead of "
                           "generating the scenario")
    live.add_argument("--compare-sim", action="store_true",
                      help="also run the equivalent simulated session and "
                           "print both result tables")

    report = sub.add_parser(
        "report", help="run the full reproduction and write a markdown report")
    report.add_argument("--duration", type=float, default=45.0)
    report.add_argument("--items", nargs="*", default=None,
                        help="subset of report items (default: all)")
    report.add_argument("--jobs", type=int, default=1,
                        help="run report items on N worker processes "
                             "(default 1: serial, in-process)")
    report.add_argument("--out", default=None,
                        help="write to a file instead of stdout")

    sweep = sub.add_parser(
        "sweep", help="run a scenario×protocol×seeds campaign grid with "
                      "process-level parallelism and a durable result cache")
    sweep.add_argument("--scenario", action="append", default=None,
                       help="scenario name (or, with --corpus, a trace "
                            "name); repeat for several "
                            "(default: campus_pedestrian, city_driving / "
                            "every corpus trace)")
    sweep.add_argument("--corpus", default=None, metavar="DIR",
                       help="draw the scenario axis from a trace corpus: "
                            "every trace (or the --scenario subset) becomes "
                            "a replayed grid entry pinned by content hash")
    sweep.add_argument("--protocol", action="append", default=None,
                       help="protocol name; repeat for several "
                            "(default: verus, cubic)")
    sweep.add_argument("--flows", action="append", type=int, default=None,
                       help="concurrent flows per cell; repeat for several "
                            "(default: 3)")
    sweep.add_argument("--seeds", type=int, default=1,
                       help="seed repetitions per cell (default 1)")
    sweep.add_argument("--duration", type=float, default=None,
                       help="simulated seconds per cell (default 30; with "
                            "--corpus, each trace's own recorded length)")
    sweep.add_argument("--technology", default="3g", choices=["3g", "lte"])
    sweep.add_argument("--base-seed", type=int, default=0,
                       help="campaign seed; per-task seeds are derived "
                            "deterministically from it (default 0)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1: serial)")
    sweep.add_argument("--chunk", type=int, default=None,
                       help="payloads dispatched per pooled future "
                            "(default: auto; batches only large grids)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-task timeout in seconds (pooled runs only)")
    sweep.add_argument("--retries", type=int, default=1,
                       help="retries per failing task (default 1)")
    sweep.add_argument("--cache-dir", default=".repro-cache",
                       help="result store location (default .repro-cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="run without reading or writing the store")
    sweep.add_argument("--resume", dest="resume", action="store_true",
                       default=True,
                       help="skip tasks already in the store (default)")
    sweep.add_argument("--fresh", dest="resume", action="store_false",
                       help="re-execute every task, ignoring stored results")
    sweep.add_argument("--telemetry", action="store_true",
                       help="collect per-task span timings (queue wait, "
                            "trace generation, simulation run) and print "
                            "the rollup")
    sweep.add_argument("--dry-run", action="store_true",
                       help="print the expanded grid and exit")
    sweep.add_argument("--out", default=None,
                       help="also write aggregated rows as JSON")

    chaos = sub.add_parser(
        "chaos", help="run the fault-injection acceptance matrix: every "
                      "protocol must recover after every fault schedule")
    chaos.add_argument("--protocol", action="append", default=None,
                       help="protocol name; repeat for several "
                            "(default: verus, cubic)")
    chaos.add_argument("--fault", action="append", default=None,
                       help="fault preset; repeat for several "
                            "(default: blackout, chaos)")
    chaos.add_argument("--backend", default="sim",
                       choices=["sim", "live", "both"],
                       help="where cells run: the simulator, the live UDP "
                            "loopback emulator, or both (default sim)")
    chaos.add_argument("--scenario", default="campus_stationary")
    chaos.add_argument("--corpus", default=None, metavar="DIR",
                       help="run cells over the traces of a corpus instead "
                            "of the synthesized --scenario channel")
    chaos.add_argument("--trace", action="append", default=None,
                       help="with --corpus: restrict to these trace names; "
                            "repeat for several (default: every trace)")
    chaos.add_argument("--flows", type=int, default=1,
                       help="concurrent flows per cell (default 1)")
    chaos.add_argument("--seeds", type=int, default=1,
                       help="seed repetitions per cell (default 1)")
    chaos.add_argument("--duration", type=float, default=None,
                       help="seconds per cell — wall-clock on the live "
                            "backend (default 20; with --corpus, each "
                            "trace's own recorded length)")
    chaos.add_argument("--deadline", type=float, default=3.0,
                       help="post-disruption recovery deadline in seconds "
                            "(default 3)")
    chaos.add_argument("--base-seed", type=int, default=0)
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1: serial)")
    chaos.add_argument("--timeout", type=float, default=None,
                       help="per-cell timeout in seconds (pooled runs only)")
    chaos.add_argument("--retries", type=int, default=1)
    chaos.add_argument("--cache-dir", default=".repro-cache",
                       help="result store location (default .repro-cache)")
    chaos.add_argument("--no-cache", action="store_true")
    chaos.add_argument("--resume", dest="resume", action="store_true",
                       default=True,
                       help="skip cells already in the store (default)")
    chaos.add_argument("--fresh", dest="resume", action="store_false",
                       help="re-execute every cell, ignoring stored results")
    chaos.add_argument("--dry-run", action="store_true",
                       help="print the expanded matrix and exit")
    chaos.add_argument("--out", default=None,
                       help="also write matrix rows as JSON")

    check = sub.add_parser(
        "check", help="run the conformance suite: invariant monitors, "
                      "golden-trace diffs, sim<->live differential, and "
                      "mutation smoke")
    check.add_argument("--protocol", action="append", default=None,
                       help="protocol to audit; repeat for several "
                            "(default: verus, cubic, vegas)")
    check.add_argument("--bless", action="store_true",
                       help="regenerate the golden traces instead of "
                            "diffing against them")
    check.add_argument("--golden-dir", default=None,
                       help="golden trace directory "
                            "(default: tests/golden in the repo)")
    check.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the audited scenarios "
                            "(default 1: serial; results are bit-identical "
                            "either way)")
    check.add_argument("--no-live", action="store_true",
                       help="skip the sim<->live differential harness")
    check.add_argument("--no-mutation", action="store_true",
                       help="skip the mutation smoke")
    check.add_argument("--live-duration", type=float, default=3.0,
                       help="wall-clock seconds per differential run "
                            "(default 3)")

    corpus = sub.add_parser(
        "corpus", help="manage content-addressed trace corpora: build "
                       "seeded presets, verify integrity, characterize, "
                       "import and convert trace files")
    corpus_sub = corpus.add_subparsers(dest="action", required=True)

    def _corpus_dir(p) -> None:
        p.add_argument("--dir", default=".repro-corpus",
                       help="corpus directory (default .repro-corpus)")

    cb = corpus_sub.add_parser(
        "build", help="synthesize a preset trace family; re-running is a "
                      "content-addressed no-op")
    _corpus_dir(cb)
    cb.add_argument("--preset", default="default",
                    help="corpus preset name: default or mini")
    cb.add_argument("--jobs", type=int, default=1,
                    help="synthesis worker processes (default 1; output is "
                         "bit-identical at any value)")
    cb.add_argument("--force", action="store_true",
                    help="re-synthesize even if files are already current")

    cv = corpus_sub.add_parser(
        "verify", help="re-hash every trace file against the manifest")
    _corpus_dir(cv)

    cs = corpus_sub.add_parser(
        "stats", help="per-trace characterization (rates, outages, "
                      "burstiness)")
    _corpus_dir(cs)
    cs.add_argument("--trace", action="append", default=None,
                    help="trace name; repeat for several (default: all)")
    cs.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON instead of a table")

    cl = corpus_sub.add_parser("list", help="list the corpus manifest")
    _corpus_dir(cl)

    ci = corpus_sub.add_parser(
        "import", help="import an external trace file (any supported "
                       "format) with provenance")
    _corpus_dir(ci)
    ci.add_argument("file", help="trace file to import")
    ci.add_argument("--name", default=None,
                    help="corpus trace name (default: the file's stem)")
    ci.add_argument("--format", default=None,
                    choices=["mahimahi", "seconds", "csv"],
                    help="source format (default: auto-detect)")
    ci.add_argument("--overwrite", action="store_true",
                    help="replace an existing trace of the same name")

    cc = corpus_sub.add_parser(
        "convert", help="convert a trace file between formats (lossless)")
    cc.add_argument("src", help="input trace file")
    cc.add_argument("dst", help="output trace file")
    cc.add_argument("--from", dest="from_fmt", default=None,
                    choices=["mahimahi", "seconds", "csv"],
                    help="input format (default: auto-detect)")
    cc.add_argument("--to", dest="to_fmt", default=None,
                    choices=["mahimahi", "seconds", "csv"],
                    help="output format (default: by extension, mahimahi)")

    bench = sub.add_parser(
        "bench", help="performance benchmark suite (obs subsystem)")
    bench_mode = bench.add_mutually_exclusive_group()
    bench_mode.add_argument("--quick", action="store_true",
                            help="small pinned workloads (default)")
    bench_mode.add_argument("--full", action="store_true",
                            help="full workloads with more repeats")
    bench.add_argument("--name", action="append", default=None,
                       metavar="BENCH",
                       help="run only the named benchmark (repeatable; "
                            "default all)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes (timings then share cores)")
    bench.add_argument("--label", default="local",
                       help="label embedded in the BENCH_<label>.json name")
    bench.add_argument("--out", default=None,
                       help="output path (default BENCH_<label>.json in cwd)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff results against this BENCH file")
    bench.add_argument("--against", default=None, metavar="CURRENT",
                       help="with --compare: diff BASELINE against this "
                            "file instead of running benchmarks")
    bench.add_argument("--warn-only", action="store_true",
                       help="report regressions without failing the exit "
                            "code")
    bench.add_argument("--max-regression", type=float, default=None,
                       metavar="FRAC",
                       help="cap every benchmark's regression band at this "
                            "fraction of the baseline (the CI ratchet uses "
                            "0.10: fail anything >10%% slower)")
    bench.add_argument("--profile", action="append", default=None,
                       metavar="HOTPATH",
                       help="cProfile a named hot path (engine, interp, "
                            "channel, red_queue, contention) instead of "
                            "benchmarking")

    soak = sub.add_parser(
        "soak", help="budgeted endurance harness: randomized (seed-"
                     "reproducible) cells under worker watchdogs, with "
                     "crash bundles, quarantine and failure triage")
    soak.add_argument("--budget-cells", type=int, default=50,
                      help="stop after drawing this many cells (default 50)")
    soak.add_argument("--budget-seconds", type=float, default=None,
                      help="stop after this much wall-clock time")
    soak.add_argument("--seed", type=int, default=0,
                      help="base seed; draw i is a pure function of "
                           "(seed, i) (default 0)")
    soak.add_argument("--protocol", action="append", default=None,
                      help="protocol axis entry; repeat for several "
                           "(default: verus, sprout, cubic, newreno)")
    soak.add_argument("--fault", action="append", default=None,
                      help="fault-preset axis entry; repeat for several "
                           "(default: every preset)")
    soak.add_argument("--scenario", action="append", default=None,
                      help="synth scenario axis entry; repeat for several "
                           "(default: all seven paper scenarios)")
    soak.add_argument("--corpus", default=None, metavar="DIR",
                      help="draw the channel axis from a trace corpus "
                           "instead of synth scenarios")
    soak.add_argument("--duration", type=float, default=4.0,
                      help="simulated seconds per cell (default 4)")
    soak.add_argument("--flows", type=int, default=1)
    soak.add_argument("--jobs", type=int, default=2,
                      help="worker processes (default 2; the watchdog "
                           "needs a pool to preempt)")
    soak.add_argument("--timeout", type=float, default=60.0,
                      help="hard per-cell wall deadline (default 60)")
    soak.add_argument("--retries", type=int, default=1)
    soak.add_argument("--stall-after", type=float, default=2.0,
                      help="kill a worker whose heartbeat goes stale for "
                           "this long (default 2)")
    soak.add_argument("--rss-mb", type=int, default=1024,
                      help="kill a worker whose RSS exceeds this budget "
                           "(default 1024; 0 disables)")
    soak.add_argument("--state-dir", default=".repro-soak",
                      help="ledger/quarantine/bundle directory "
                           "(default .repro-soak)")
    soak.add_argument("--fresh", action="store_true",
                      help="clear the ledger and the quarantine poison "
                           "list before running")
    soak.add_argument("--inject", action="append", default=None,
                      metavar="MODE@DRAW",
                      help="inject a failure (crash|hang|oom) at a draw "
                           "index, e.g. --inject hang@0 (test hook; "
                           "repeatable)")
    soak.add_argument("--report", action="store_true",
                      help="render the triage report from the ledger and "
                           "exit (non-zero on any non-flaky signature)")
    soak.add_argument("--replay", default=None, metavar="KEY",
                      help="re-run one recorded cell by key prefix under "
                           "full supervision")
    soak.add_argument("--verbose", action="store_true",
                      help="per-cell progress on stderr")

    trace = sub.add_parser("trace", help="generate a channel trace file")
    trace.add_argument("--scenario", default="city_driving")
    trace.add_argument("--technology", default="3g", choices=["3g", "lte"])
    trace.add_argument("--duration", type=float, default=60.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", required=True)

    args = parser.parse_args(argv)
    if args.command == "list" or args.command is None:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "run":
        if args.telemetry:
            from .obs import TelemetrySession, telemetry, write_session
            session = TelemetrySession()
            with telemetry(session):
                EXPERIMENTS[args.experiment](args)
            for path in write_session(session, args.telemetry_out,
                                      prefix=f"telemetry_{args.experiment}"):
                print(f"wrote {path}")
        else:
            EXPERIMENTS[args.experiment](args)
        return 0
    if args.command == "quickstart":
        from . import quick_comparison
        print(format_table(quick_comparison(duration=args.duration,
                                            **_seed_kwargs(args)),
                           title="Verus vs TCP Cubic (shared 3G trace)"))
        return 0
    if args.command == "live":
        _run_live(args)
        return 0
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "check":
        return _run_check(args)
    if args.command == "corpus":
        return _run_corpus(args)
    if args.command == "soak":
        if args.rss_mb is not None and args.rss_mb <= 0:
            args.rss_mb = None
        return _run_soak(args)
    if args.command == "report":
        from .experiments.full_report import generate_report
        text = generate_report(duration=args.duration, items=args.items,
                               jobs=args.jobs)
        if args.out:
            from pathlib import Path
            Path(args.out).write_text(text)
            print(f"wrote report to {args.out}")
        else:
            print(text)
        return 0
    if args.command == "trace":
        from .cellular import generate_scenario_trace, save_trace
        trace_arr = generate_scenario_trace(args.scenario,
                                            duration=args.duration,
                                            technology=args.technology,
                                            seed=args.seed)
        save_trace(args.out, trace_arr)
        print(f"wrote {trace_arr.size} delivery opportunities to {args.out}")
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
