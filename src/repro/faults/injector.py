"""Compile a :class:`~repro.faults.spec.FaultSchedule` onto a clock.

:class:`FaultInjector` is a composable link in the style of
:mod:`repro.netsim.impairments`: it exposes ``send(packet)`` and a
writable ``dst``, and only ever touches the clock through ``now`` and
``schedule`` — the :class:`~repro.netsim.flow.Clock` surface — so the
same instance runs inside the discrete-event
:class:`~repro.netsim.engine.Simulator` and on the live path's
:class:`~repro.live.clock.WallClock` without modification.

Two extra hooks exist only for the live backend, where faults can act on
*real bytes* rather than packet objects:

* :meth:`mangle` corrupts or truncates an encoded datagram (the hardened
  wire format must then reject it — that rejection shows up in the
  :class:`~repro.live.host.LiveHost` ``wire_errors`` counters, never as
  a silent drop);
* :meth:`blocked` answers "is this direction dark right now?", used by
  the emulator's ACK path to enforce one-way blackouts on datagrams it
  forwards verbatim.

In the simulator, corruption compiles to a counted drop: a corrupted
frame would fail its checksum at the receiver's NIC and never reach the
protocol, which is exactly what discarding it models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..netsim.packet import Packet
from .spec import FaultSchedule

Destination = Callable[[Packet], None]

#: Spacing between an original packet and its injected duplicate.
_DUPLICATE_LAG = 0.0005


@dataclass
class FaultStats:
    """What one injector did to the traffic that crossed it."""

    forwarded: int = 0
    blackout_drops: int = 0
    burst_losses: int = 0
    corrupted: int = 0
    truncated: int = 0
    duplicated: int = 0
    reorder_delays: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @property
    def dropped(self) -> int:
        return self.blackout_drops + self.burst_losses


def _in_windows(t: float, windows: List[Tuple[float, float]]) -> bool:
    return any(start <= t < end for start, end in windows)


class FaultInjector:
    """Applies a fault schedule to packets crossing one direction.

    Parameters
    ----------
    clock:
        Anything satisfying :class:`~repro.netsim.flow.Clock`.
    schedule:
        The declarative fault schedule to compile.
    rng:
        Random stream for the stochastic faults.  **Required** — every
        injector must be seeded from the scenario/flow seed so two
        injectors in one topology are never accidentally correlated.
    direction:
        ``"down"`` applies the full schedule (data-path pathologies plus
        outages); ``"up"`` applies only the outage/flap windows marked
        for the reverse path.
    base_delay:
        Fixed delay added to every forwarded packet (stands in for the
        plain delay line the injector replaces).
    byte_corruption:
        Live mode: corruption is *not* applied at the packet level;
        :meth:`mangle` applies it to encoded datagrams instead.
    """

    def __init__(self, clock, schedule: FaultSchedule,
                 rng: np.random.Generator, direction: str = "down",
                 base_delay: float = 0.0,
                 dst: Optional[Destination] = None,
                 byte_corruption: bool = False):
        if direction not in ("down", "up"):
            raise ValueError("direction must be 'down' or 'up'")
        if base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if rng is None:
            raise ValueError("an explicitly seeded rng is required")
        self.clock = clock
        self.schedule = schedule
        self.rng = rng
        self.direction = direction
        self.base_delay = base_delay
        self.dst = dst
        self.byte_corruption = byte_corruption
        self.stats = FaultStats()
        # Pre-expanded windows; flaps are folded into the outage list.
        self._outages = schedule.outage_windows(direction)
        if direction == "down":
            self._burst = schedule.windows("burst_loss")
            self._corrupt = schedule.windows("corruption")
            self._duplicate = schedule.windows("duplication")
            self._reorder = [(e.start, e.end, e.jitter) for e in schedule
                             if e.kind == "reorder"]
            self._jumps = schedule.clock_jumps()
        else:
            self._burst = self._corrupt = self._duplicate = []
            self._reorder = []
            self._jumps = []

    # ------------------------------------------------------------------
    # Shared window queries
    # ------------------------------------------------------------------
    def blocked(self, now: Optional[float] = None) -> bool:
        """True while this direction is inside a blackout window."""
        t = self.clock.now if now is None else now
        return _in_windows(t, self._outages)

    def _clock_extra(self, t: float) -> float:
        extra = sum(offset for at, offset in self._jumps if at <= t)
        return max(0.0, extra)

    def _active_rate(self, t: float, kind: str) -> float:
        for event in self.schedule:
            if event.kind == kind and event.start <= t < event.end:
                return event.rate
        return 0.0

    # ------------------------------------------------------------------
    # Packet-level path (both backends)
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        if self.dst is None:
            raise RuntimeError("FaultInjector has no destination attached")
        now = self.clock.now
        if _in_windows(now, self._outages):
            self.stats.blackout_drops += 1
            return
        if self._burst and _in_windows(now, self._burst):
            if self.rng.random() < self._active_rate(now, "burst_loss"):
                self.stats.burst_losses += 1
                return
        if (not self.byte_corruption and self._corrupt
                and _in_windows(now, self._corrupt)):
            if self.rng.random() < self._active_rate(now, "corruption"):
                # Simulator compile target: the corrupted frame dies at
                # the receiver's checksum, i.e. a counted drop.
                self.stats.corrupted += 1
                return
        delay = self.base_delay + self._clock_extra(now)
        for start, end, jitter in self._reorder:
            if start <= now < end:
                delay += float(self.rng.uniform(0.0, jitter))
                self.stats.reorder_delays += 1
                break
        self.stats.forwarded += 1
        self._forward(packet, delay)
        if self._duplicate and _in_windows(now, self._duplicate):
            if self.rng.random() < self._active_rate(now, "duplication"):
                self.stats.duplicated += 1
                self._forward(packet, delay + _DUPLICATE_LAG)

    #: Links hand packets to ``dst(packet)``; behave like one.
    def __call__(self, packet: Packet) -> None:
        self.send(packet)

    def _forward(self, packet: Packet, delay: float) -> None:
        if delay <= 0:
            self.dst(packet)
        else:
            self.clock.call_later(delay, self.dst, packet)

    # ------------------------------------------------------------------
    # Byte-level path (live backend only)
    # ------------------------------------------------------------------
    def mangle(self, data: bytes) -> bytes:
        """Corrupt an encoded datagram if a corruption window is active.

        Half of the corruptions are truncations (a random tail is cut),
        the rest are bit flips.  Either way the hardened wire format
        rejects the datagram deterministically; the receiving host's
        ``truncated``/``corrupted`` counters account for every one.
        """
        now = self.clock.now
        if not self._corrupt or not _in_windows(now, self._corrupt):
            return data
        if self.rng.random() >= self._active_rate(now, "corruption"):
            return data
        if len(data) > 1 and self.rng.random() < 0.5:
            self.stats.truncated += 1
            return data[:int(self.rng.integers(1, len(data)))]
        mutated = bytearray(data)
        for _ in range(int(self.rng.integers(1, 4))):
            position = int(self.rng.integers(0, len(mutated)))
            mutated[position] ^= 1 << int(self.rng.integers(0, 8))
        self.stats.corrupted += 1
        return bytes(mutated)
