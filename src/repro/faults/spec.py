"""Declarative fault specifications.

A :class:`FaultSchedule` is a list of timed :class:`FaultEvent` entries
describing the hostile-channel pathologies the paper's §3 motivates
(deep fades, outages, stochastic loss) plus the transport-level ones the
robustness literature adds on top (corruption, duplication, reordering
storms, link flaps, clock jumps).  The schedule is *backend-neutral*:
:mod:`repro.faults.injector` compiles it into a composable impairment
link for the discrete-event simulator and into injection hooks for the
live UDP emulator, so one scenario file stresses both paths identically.

Every event is JSON round-trippable (:meth:`FaultSchedule.to_dict` /
:meth:`from_dict`) so chaos-matrix cells can be content-addressed by the
campaign result store exactly like ordinary sweep cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Fault kinds understood by the injector.
FAULT_KINDS = ("outage", "burst_loss", "corruption", "duplication",
               "reorder", "flap", "clock_jump")

#: Directions an outage/flap can apply to.
DIRECTIONS = ("down", "up", "both")


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault.  Which extra fields matter depends on ``kind``:

    ``outage``
        Total blackout over ``[start, start+duration)``; ``direction``
        selects the data path (``down``), the ACK path (``up``) or both.
    ``burst_loss``
        Stochastic loss at probability ``rate`` during the window.
    ``corruption``
        Packets are corrupted at probability ``rate``.  On the live path
        this flips real datagram bits (or truncates), which the hardened
        wire format must reject; in the simulator the corrupted packet is
        discarded at the receiver's NIC, as a checksum failure would be.
    ``duplication``
        Packets are duplicated at probability ``rate``.
    ``reorder``
        Reordering storm: every packet gets an extra uniform random delay
        in ``[0, jitter]``, letting packets overtake each other.
    ``flap``
        Repeating outage: over ``[start, start+duration)`` the link
        cycles with ``period`` seconds per cycle, up for
        ``on_fraction`` of each cycle and dark for the rest.
    ``clock_jump``
        At ``start`` the one-way delay steps by ``offset`` seconds (the
        peer's clock appears to jump); cumulative across events, clamped
        so total extra delay never goes negative.
    """

    kind: str
    start: float
    duration: float = 0.0
    rate: float = 0.0
    jitter: float = 0.0
    direction: str = "down"
    period: float = 0.0
    on_fraction: float = 0.5
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.start < 0:
            raise ValueError("fault start must be non-negative")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}")
        if self.kind != "clock_jump" and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind in ("burst_loss", "corruption", "duplication"):
            if not 0.0 < self.rate <= 1.0:
                raise ValueError(f"{self.kind} rate must be in (0, 1]")
        if self.kind == "reorder" and self.jitter <= 0:
            raise ValueError("reorder storm needs a positive jitter")
        if self.kind == "flap":
            if self.period <= 0 or self.period > self.duration:
                raise ValueError("flap period must be positive and fit "
                                 "inside the episode duration")
            if not 0.0 < self.on_fraction < 1.0:
                raise ValueError("flap on_fraction must be in (0, 1)")
        if self.kind == "clock_jump" and self.offset == 0.0:
            raise ValueError("clock_jump needs a non-zero offset")

    @property
    def end(self) -> float:
        return self.start + self.duration

    # -- convenience constructors --------------------------------------
    @classmethod
    def outage(cls, start: float, duration: float,
               direction: str = "both") -> "FaultEvent":
        return cls("outage", start, duration, direction=direction)

    @classmethod
    def burst_loss(cls, start: float, duration: float,
                   rate: float) -> "FaultEvent":
        return cls("burst_loss", start, duration, rate=rate)

    @classmethod
    def corruption(cls, start: float, duration: float,
                   rate: float) -> "FaultEvent":
        return cls("corruption", start, duration, rate=rate)

    @classmethod
    def duplication(cls, start: float, duration: float,
                    rate: float) -> "FaultEvent":
        return cls("duplication", start, duration, rate=rate)

    @classmethod
    def reorder_storm(cls, start: float, duration: float,
                      jitter: float) -> "FaultEvent":
        return cls("reorder", start, duration, jitter=jitter)

    @classmethod
    def link_flap(cls, start: float, duration: float, period: float,
                  on_fraction: float = 0.5,
                  direction: str = "both") -> "FaultEvent":
        return cls("flap", start, duration, period=period,
                   on_fraction=on_fraction, direction=direction)

    @classmethod
    def clock_jump(cls, at: float, offset: float) -> "FaultEvent":
        return cls("clock_jump", at, offset=offset)

    def to_dict(self) -> dict:
        payload = {"kind": self.kind, "start": self.start}
        if self.kind != "clock_jump":
            payload["duration"] = self.duration
        if self.kind in ("burst_loss", "corruption", "duplication"):
            payload["rate"] = self.rate
        if self.kind == "reorder":
            payload["jitter"] = self.jitter
        if self.kind in ("outage", "flap"):
            payload["direction"] = self.direction
        if self.kind == "flap":
            payload["period"] = self.period
            payload["on_fraction"] = self.on_fraction
        if self.kind == "clock_jump":
            payload["offset"] = self.offset
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        return cls(**payload)


class FaultSchedule:
    """An ordered collection of fault events plus window arithmetic."""

    def __init__(self, events: Sequence[FaultEvent] = ()):  # empty = healthy
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.start, e.kind)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultSchedule)
                and self.events == other.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(e.kind for e in self.events) or "healthy"
        return f"<FaultSchedule {kinds}>"

    def to_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSchedule":
        return cls([FaultEvent.from_dict(e)
                    for e in payload.get("events", [])])

    # -- window arithmetic ---------------------------------------------
    def windows(self, kind: str,
                direction: str = "down") -> List[Tuple[float, float]]:
        """Active ``[start, end)`` windows for ``kind`` on ``direction``.

        ``flap`` events expand into their individual dark windows and are
        reported under ``kind='outage'`` — downstream code only ever
        needs to know *when the link is dark*, not why.
        """
        out: List[Tuple[float, float]] = []
        for event in self.events:
            if event.kind == kind and kind not in ("outage", "flap"):
                out.append((event.start, event.end))
                continue
            if kind != "outage" or event.kind not in ("outage", "flap"):
                continue
            if direction != "both" and event.direction not in (direction,
                                                               "both"):
                continue
            if event.kind == "outage":
                out.append((event.start, event.end))
            else:   # flap: dark for the tail of every cycle
                t = event.start
                dark = event.period * (1.0 - event.on_fraction)
                while t < event.end:
                    off_start = t + event.period - dark
                    if off_start < event.end:
                        out.append((off_start,
                                    min(off_start + dark, event.end)))
                    t += event.period
        return sorted(out)

    def outage_windows(self, direction: str = "down"
                       ) -> List[Tuple[float, float]]:
        return self.windows("outage", direction)

    def last_outage_end(self, direction: str = "down"):
        """End time of the final dark window, or None if never dark."""
        windows = self.outage_windows(direction)
        return windows[-1][1] if windows else None

    def clock_jumps(self) -> List[Tuple[float, float]]:
        return [(e.start, e.offset) for e in self.events
                if e.kind == "clock_jump"]


# ----------------------------------------------------------------------
# Named presets for the chaos matrix
# ----------------------------------------------------------------------

def _mid(duration: float, span_fraction: float) -> Tuple[float, float]:
    """A fault window of ``span_fraction``×duration centred past warm-up."""
    span = span_fraction * duration
    start = 0.45 * duration
    return start, span


def make_schedule(name: str, duration: float) -> FaultSchedule:
    """Build the named preset scaled to an experiment of ``duration``.

    Presets place their faults after the 40% mark so protocols reach
    steady state first, and always leave the final third of the run
    fault-free so recovery is observable.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    start, span = _mid(duration, 0.15)
    if name == "none":
        return FaultSchedule()
    if name == "blackout":
        return FaultSchedule([FaultEvent.outage(start, span, "both")])
    if name == "uplink_blackout":
        return FaultSchedule([FaultEvent.outage(start, span, "up")])
    if name == "burst_loss":
        return FaultSchedule([FaultEvent.burst_loss(start, 2 * span, 0.3)])
    if name == "corruption":
        return FaultSchedule([FaultEvent.corruption(start, 2 * span, 0.25)])
    if name == "duplication":
        return FaultSchedule([FaultEvent.duplication(start, 2 * span, 0.2)])
    if name == "reorder_storm":
        return FaultSchedule([FaultEvent.reorder_storm(start, 2 * span,
                                                       0.03)])
    if name == "flap":
        period = max(span / 3.0, 0.2)
        return FaultSchedule([FaultEvent.link_flap(start, 2 * span, period,
                                                   on_fraction=0.5)])
    if name == "clock_jump":
        return FaultSchedule([FaultEvent.clock_jump(start, 0.05),
                              FaultEvent.clock_jump(start + span, -0.05)])
    if name == "chaos":
        # The acceptance-matrix scenario: a hard blackout flanked by a
        # corruption window and a reordering storm.
        return FaultSchedule([
            FaultEvent.corruption(0.25 * duration, 0.15 * duration, 0.15),
            FaultEvent.outage(start, span, "both"),
            FaultEvent.reorder_storm(start + span, 0.15 * duration, 0.02),
        ])
    raise ValueError(f"unknown fault schedule {name!r}; "
                     f"choose from {sorted(FAULT_PRESETS)}")


#: Names accepted by :func:`make_schedule` and the ``repro chaos`` CLI.
FAULT_PRESETS = ("none", "blackout", "uplink_blackout", "burst_loss",
                 "corruption", "duplication", "reorder_storm", "flap",
                 "clock_jump", "chaos")
