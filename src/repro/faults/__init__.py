"""Declarative fault injection compiled onto both backends.

One :class:`FaultSchedule` describes the hostile channel — outages,
burst loss, corruption, duplication, reordering storms, link flaps,
clock jumps — and compiles sim-side to a composable
:class:`FaultInjector` link and live-side to injection hooks in the UDP
emulator, so the same scenario stresses the simulator and the
real-socket path identically.  The chaos acceptance matrix
(:func:`run_chaos_matrix`, ``repro chaos``) grids (protocol × fault ×
seed) through the campaign executor and judges every cell on
post-disruption recovery.
"""

from .chaos import (
    BACKENDS,
    ChaosResult,
    ChaosTask,
    disruption_window,
    expand_chaos,
    run_chaos_matrix,
    run_chaos_task,
)
from .injector import FaultInjector, FaultStats
from .sim import run_faulted_contention
from .spec import (
    DIRECTIONS,
    FAULT_KINDS,
    FAULT_PRESETS,
    FaultEvent,
    FaultSchedule,
    make_schedule,
)

__all__ = [
    "BACKENDS",
    "ChaosResult",
    "ChaosTask",
    "DIRECTIONS",
    "FAULT_KINDS",
    "FAULT_PRESETS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultStats",
    "disruption_window",
    "expand_chaos",
    "make_schedule",
    "run_chaos_matrix",
    "run_chaos_task",
    "run_faulted_contention",
]
