"""Compile a fault schedule into the discrete-event simulator.

:func:`run_faulted_contention` is the fault-injected sibling of
:func:`repro.experiments.runner.run_trace_contention`: the same §6.2
trace-behind-RED dumbbell, but with a downlink
:class:`~repro.faults.injector.FaultInjector` between the bottleneck and
the data demux and an uplink injector on the shared acknowledgement
path.  The injectors replace the access-delay lines they sit on (their
``base_delay`` carries the propagation delay), so a run under the empty
schedule is behaviourally identical to the plain runner.

Seeding: one :class:`numpy.random.SeedSequence` spawns independent
streams for the RED queue, the trace link, and the two injectors, so no
pair of stochastic components shares a stream (the correlated-jitter bug
this PR fixes in :mod:`repro.netsim.impairments` is structurally
impossible here).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..experiments.runner import ExperimentResult, FlowSpec, make_endpoints
from ..netsim import REDQueue, Simulator, TraceLink
from ..netsim.flow import Demux
from ..netsim.link import DelayLine
from .injector import FaultInjector
from .spec import FaultSchedule


def run_faulted_contention(trace: np.ndarray, specs: Sequence[FlowSpec],
                           schedule: FaultSchedule, duration: float,
                           rtt: float = 0.01, access_delay: float = 0.005,
                           use_red: bool = True, loss_rate: float = 0.0,
                           warmup: float = 5.0,
                           seed: int = 0) -> ExperimentResult:
    """Run the §6.2 contention setup with a fault schedule applied.

    The returned :class:`ExperimentResult` carries the two injectors'
    accounting as ``result.fault_stats`` (``{"down": ..., "up": ...}``)
    and is flagged ``degraded`` when the downlink never carried a packet
    after the final blackout — the sim-side analogue of a live peer that
    died and had to be torn down.
    """
    sim = Simulator()
    seeds = np.random.SeedSequence(seed).spawn(4)
    queue_rng, link_rng, down_rng, up_rng = (
        np.random.default_rng(s) for s in seeds)

    queue = REDQueue.paper_config(rng=queue_rng) if use_red else None
    bottleneck = TraceLink(sim, trace, queue=queue, delay=access_delay,
                           loop=True, loss_rate=loss_rate, rng=link_rng)

    # Downlink: sender → rtt/2 → bottleneck → injector → data demux.
    data_demux = Demux()
    down = FaultInjector(sim, schedule, rng=down_rng, direction="down",
                         dst=data_demux)
    bottleneck.dst = down

    # Uplink: receiver → rtt/2 → injector → ack demux → sender.on_ack.
    ack_demux = Demux()
    up = FaultInjector(sim, schedule, rng=up_rng, direction="up",
                       dst=ack_demux)

    senders, receivers = [], []
    for flow_id, spec in enumerate(specs):
        sender, receiver = make_endpoints(spec, flow_id)
        flow_rtt = rtt if spec.rtt is None else spec.rtt
        forward = DelayLine(sim, flow_rtt / 2.0, dst=bottleneck.send)
        reverse = DelayLine(sim, flow_rtt / 2.0, dst=up.send)
        sender.attach(sim, forward.send)
        receiver.attach(sim, reverse.send)
        data_demux.register(flow_id, receiver.on_data)
        ack_demux.register(flow_id, sender.on_ack)
        sim.call_at(max(spec.start_at, sim.now), sender.start)
        senders.append(sender)
        receivers.append(receiver)

    # Telemetry seam, as in the plain runner: an active session (e.g. the
    # soak harness's armed flight recorder) observes every flow.
    from ..obs.timeline import current_session
    session = current_session()
    if session is not None:
        session.attach(sim, senders, specs=specs, receivers=receivers)
    sim.run(until=duration)
    if session is not None:
        session.finalize(sim)

    result = ExperimentResult(list(specs), senders, receivers,
                              duration, warmup)
    result.fault_stats = {"down": down.stats.as_dict(),
                          "up": up.stats.as_dict()}
    dark_until = schedule.last_outage_end("down")
    if dark_until is not None and dark_until < duration:
        healed = any(any(d[0] >= dark_until for d in r.deliveries)
                     for r in receivers)
        if not healed:
            result.degraded = True
            result.degraded_code = "degraded"
            result.degraded_reason = ("no downlink delivery after the "
                                      f"blackout ended at t={dark_until:g}s")
    return result
