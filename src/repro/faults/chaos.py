"""The chaos acceptance matrix: (protocol × fault × seed) grids.

Each cell runs one protocol under one named fault schedule (see
:data:`repro.faults.spec.FAULT_PRESETS`) on either backend — the
discrete-event simulator or the live UDP loopback emulator — and is
judged on *recovery*: did the flow re-inflate its delivery rate within a
deadline after the disruption, and did the session terminate cleanly?

Cells are content-addressed exactly like sweep cells
(:class:`~repro.campaign.spec.TaskSpec`), so the matrix reuses the
campaign result store and executor unchanged: crash isolation, retries,
timeouts and ``--resume`` all come for free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.executor import ProgressFn, RunResult, run_tasks
from ..campaign.spec import _canonical_json
from ..campaign.store import ResultStore
from ..cellular import SCENARIO_NAMES
from ..experiments.runner import PROTOCOL_NAMES
from ..metrics.recovery import recovery_stats
from .spec import FAULT_PRESETS, FaultSchedule, make_schedule

BACKENDS = ("sim", "live")


@dataclass(frozen=True)
class ChaosTask:
    """One chaos-matrix cell: protocol × fault schedule × seed × backend.

    Like :class:`~repro.campaign.spec.TaskSpec`, the channel comes from
    either a synthesized ``scenario`` (the default) or a pinned corpus
    trace (``trace_file`` + ``trace_sha256``), in which case
    ``scenario`` is a free-form label."""

    protocol: str
    fault: str
    duration: float
    seed: int
    seed_index: int = 0
    backend: str = "sim"
    scenario: str = "campus_stationary"
    flows: int = 1
    rtt: float = 0.01
    warmup: float = 1.0
    deadline: float = 3.0
    trace_file: Optional[str] = None
    trace_sha256: Optional[str] = None

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise ValueError(f"unknown protocol {self.protocol!r}; "
                             f"choose from {PROTOCOL_NAMES}")
        if self.fault not in FAULT_PRESETS:
            raise ValueError(f"unknown fault preset {self.fault!r}; "
                             f"choose from {FAULT_PRESETS}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.trace_file is None and self.scenario not in SCENARIO_NAMES:
            raise ValueError(f"unknown scenario {self.scenario!r}; "
                             f"choose from {SCENARIO_NAMES} "
                             f"(or provide trace_file)")
        if self.trace_sha256 is not None and self.trace_file is None:
            raise ValueError("trace_sha256 requires trace_file")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.flows < 1:
            raise ValueError("flows must be at least 1")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "fault": self.fault,
            "duration": self.duration,
            "seed": self.seed,
            "seed_index": self.seed_index,
            "backend": self.backend,
            "scenario": self.scenario,
            "flows": self.flows,
            "rtt": self.rtt,
            "warmup": self.warmup,
            "deadline": self.deadline,
            "trace_file": self.trace_file,
            "trace_sha256": self.trace_sha256,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChaosTask":
        return cls(**payload)

    def key(self) -> str:
        """Content address, versioned like campaign task keys.  When a
        trace hash pins the channel, the file path is dropped from the
        address (relocating a corpus must not invalidate the cache)."""
        from .. import __version__ as repro_version
        body = self.to_dict()
        if self.trace_sha256 is not None:
            body["trace_file"] = None
        body = _canonical_json({"chaos_task": body,
                                "repro_version": repro_version})
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def schedule(self) -> FaultSchedule:
        return make_schedule(self.fault, self.duration)


def expand_chaos(protocols: Sequence[str], faults: Sequence[str],
                 seeds: int = 1, *, duration: float = 20.0,
                 backends: Sequence[str] = ("sim",),
                 scenario: str = "campus_stationary", flows: int = 1,
                 rtt: float = 0.01, warmup: Optional[float] = None,
                 deadline: float = 3.0,
                 base_seed: int = 0) -> List[ChaosTask]:
    """Expand the grid protocols × faults × backends × seeds.

    Seeds are SeedSequence-derived from the cell's grid position, the
    same scheme :meth:`~repro.campaign.spec.CampaignSpec.expand` uses, so
    the cell → seed mapping is stable under any execution order.
    """
    if seeds < 1:
        raise ValueError("seeds must be at least 1")
    if not protocols or not faults or not backends:
        raise ValueError("protocols, faults and backends must be non-empty")
    size = len(protocols) * len(faults) * len(backends) * seeds
    children = np.random.SeedSequence(base_seed).spawn(size)
    if warmup is None:
        warmup = min(1.0, duration / 10.0)
    tasks: List[ChaosTask] = []
    index = 0
    for protocol in protocols:
        for fault in faults:
            for backend in backends:
                for seed_index in range(seeds):
                    seed = int(children[index].generate_state(1)[0])
                    tasks.append(ChaosTask(
                        protocol=protocol, fault=fault, duration=duration,
                        seed=seed, seed_index=seed_index, backend=backend,
                        scenario=scenario, flows=flows, rtt=rtt,
                        warmup=warmup, deadline=deadline))
                    index += 1
    return tasks


def disruption_window(schedule: FaultSchedule
                      ) -> Tuple[Optional[float], Optional[float]]:
    """The span a flow must recover from: the full blackout envelope if
    the schedule goes dark, otherwise the envelope of all fault events
    (a corruption storm disrupts too, just less absolutely)."""
    dark = schedule.outage_windows("both")
    if dark:
        return dark[0][0], dark[-1][1]
    events = list(schedule)
    if events:
        return (min(e.start for e in events), max(e.end for e in events))
    return None, None


def run_chaos_task(payload: dict) -> dict:
    """Execute one chaos cell and return a JSON-safe verdict payload.

    Module-level (not a closure) so the campaign pool can pickle it.
    """
    from ..cellular import generate_scenario_trace
    from ..experiments.runner import repeat_flows

    task = ChaosTask.from_dict(payload)
    schedule = task.schedule()
    specs = repeat_flows(task.protocol, task.flows)
    d_start, d_end = disruption_window(schedule)

    def cell_trace():
        if task.trace_file is not None:
            from ..campaign.spec import _load_task_trace
            return _load_task_trace(task)
        return generate_scenario_trace(task.scenario,
                                       duration=task.duration,
                                       seed=task.seed)

    if task.backend == "sim":
        from .sim import run_faulted_contention
        result = run_faulted_contention(cell_trace(), specs, schedule,
                                        duration=task.duration,
                                        rtt=task.rtt, warmup=task.warmup,
                                        seed=task.seed)
    else:
        from ..live.session import run_live_session
        result = run_live_session(specs, trace=cell_trace(),
                                  duration=task.duration,
                                  warmup=task.warmup, seed=task.seed,
                                  fault_schedule=schedule)

    # Judge recovery against the time actually run — a degraded session
    # may have ended early.
    ran_until = result.duration
    deadline = task.deadline
    if d_end is not None:
        deadline = max(0.5, min(deadline, ran_until - d_end))
    window = min(0.5, deadline / 2.0)
    recovery = [
        recovery_stats(result.receivers[i].deliveries, d_start, d_end,
                       flow_id=i, label=specs[i].label,
                       window=window, deadline=deadline)
        for i in range(len(specs))
    ]
    senders = [
        {name: int(getattr(s, name)) for name in
         ("timeouts", "retransmissions", "losses_detected", "abandoned")
         if hasattr(s, name)}
        for s in result.senders
    ]
    return {
        "task": task.to_dict(),
        "summary": result.summary(),
        "fault_stats": getattr(result, "fault_stats", None),
        "live_counters": getattr(result, "live_counters", None),
        "recovery": [r.to_dict() for r in recovery],
        "senders": senders,
        "recovered": all(r.recovered for r in recovery),
        "degraded": bool(result.degraded),
        "degraded_reason": result.degraded_reason,
        "degraded_code": getattr(result, "degraded_code", None),
    }


@dataclass
class ChaosResult:
    """The expanded grid plus per-cell outcomes and engine accounting."""

    tasks: List[ChaosTask]
    run: RunResult
    store: Optional[ResultStore] = None

    @property
    def outcomes(self):
        return self.run.outcomes

    @property
    def stats(self):
        return self.run.stats

    @property
    def all_ok(self) -> bool:
        return self.run.all_ok

    @property
    def all_recovered(self) -> bool:
        """True iff every cell executed and its flows recovered."""
        return all(o.ok and o.result.get("recovered")
                   for o in self.outcomes)

    def rows(self) -> List[dict]:
        """Aggregate verdicts per (protocol, fault, backend) group."""
        grouped: Dict[Tuple[str, str, str], List[dict]] = {}
        for task, outcome in zip(self.tasks, self.outcomes):
            key = (task.protocol, task.fault, task.backend)
            grouped.setdefault(key, []).append(
                outcome.result if outcome.ok else None)
        rows = []
        for (protocol, fault, backend), cells in sorted(grouped.items()):
            ok = [c for c in cells if c is not None]
            times = [r["recovery_time"] for c in ok
                     for r in c["recovery"]
                     if r["recovery_time"] is not None]
            rows.append({
                "protocol": protocol,
                "fault": fault,
                "backend": backend,
                "cells": len(cells),
                "failed": len(cells) - len(ok),
                "recovered": sum(1 for c in ok if c["recovered"]),
                "degraded": sum(1 for c in ok if c["degraded"]),
                "mean_recovery_s": (sum(times) / len(times)
                                    if times else None),
            })
        return rows


def run_chaos_matrix(tasks: Sequence[ChaosTask], *, jobs: int = 1,
                     store: Optional[ResultStore] = None,
                     cache_dir: Optional[str] = None, resume: bool = True,
                     timeout: Optional[float] = None, retries: int = 1,
                     progress: Optional[ProgressFn] = None) -> ChaosResult:
    """Run the matrix through the campaign engine (cache, retries,
    crash isolation included).  Live-backend cells are ordinary
    picklable payloads too: each pool worker runs its own event loop and
    loopback socket pair via ``asyncio.run``."""
    tasks = list(tasks)
    if store is None and cache_dir is not None:
        store = ResultStore(cache_dir)
    run = run_tasks([t.to_dict() for t in tasks], run_chaos_task,
                    jobs=jobs, timeout=timeout, retries=retries,
                    store=store, keys=[t.key() for t in tasks],
                    resume=resume, progress=progress)
    return ChaosResult(tasks=tasks, run=run, store=store)
