"""Bounded timelines of per-epoch protocol internals.

A :class:`TimelineRecorder` is a duck-typed observer for the
``SenderProtocol.observers`` / ``ReceiverProtocol.observers`` seam: it
captures every control-law event the concrete senders emit — Verus's
per-epoch ``D_est``, ΔD, window and epoch max delay, profile refit
events, Sprout's belief-derived budget, TCP's cwnd trajectory — into a
bounded ring buffer, so a long live session records the recent past at
O(1) memory instead of growing without bound.

:class:`EventSampler` covers the other seam,
:meth:`~repro.netsim.engine.Simulator.add_monitor`: it buckets engine
events over simulated time.  It costs one dict update per event, so it
is opt-in (``TelemetrySession(sample_events=True)``); the default
telemetry attachment reads ``Simulator.events_processed`` at the end of
the run instead and stays off the per-event path entirely.

:class:`TelemetrySession` bundles the pieces and is the object the
``--telemetry`` CLI flags activate: while a session is current (see
:func:`telemetry`), the experiment runner attaches recorders to every
flow it wires up.  When no session is active the runner pays a single
``is None`` check per experiment, and the protocol hot paths pay one
falsy check per emit point — telemetry off costs nothing measurable.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from .meters import MeterRegistry
from .profiler import Spans

TIMELINE_SCHEMA = "repro.timeline/1"


class RingBuffer:
    """Fixed-capacity append-only buffer keeping the most recent items."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be positive (got {capacity})")
        self.capacity = capacity
        self._items: List[Any] = []
        self._head = 0          # insertion point once the buffer is full
        self.appended = 0       # lifetime appends (>= len means wrapped)

    def append(self, item: Any) -> None:
        if len(self._items) < self.capacity:
            self._items.append(item)
        else:
            self._items[self._head] = item
            self._head = (self._head + 1) % self.capacity
        self.appended += 1

    def __len__(self) -> int:
        return len(self._items)

    @property
    def dropped(self) -> int:
        """Items that have been overwritten by wraparound."""
        return self.appended - len(self._items)

    def items(self) -> List[Any]:
        """Items in append order (oldest retained first)."""
        return self._items[self._head:] + self._items[:self._head]


class TimelineRecorder:
    """Ring-buffered observer of control-law events.

    Attach to ``sender.observers`` (or ``receiver.observers``).
    :meth:`rows` yields one flat dict per event — ``{"time", "event",
    "source", "flow", **fields}`` — ready for JSONL/CSV export.  Fields
    mirror the emit points exactly; the recorder adds nothing the
    protocol did not report.

    The recording path is deliberately minimal: it appends an
    ``(event, flow, fields)`` tuple into an inlined ring and defers all
    row materialisation (event-name normalisation, source/flow/time
    stamping) to :meth:`rows`.  At per-epoch rates the difference
    between "build the export row now" and "remember what happened"
    is most of the telemetry overhead budget.
    """

    #: Events this recorder understands.  Anything else emitted through
    #: ``notify`` is still captured generically via ``record_event``.
    EVENTS = ("on_epoch", "on_setpoint", "on_loss", "on_window",
              "on_profile_refit", "on_tick", "on_belief")

    def __init__(self, capacity: int = 4096, source: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be positive (got {capacity})")
        self.capacity = capacity
        self.source = source
        self._entries: List[tuple] = []
        self._head = 0              # insertion point once full
        self.appended = 0           # lifetime appends

    # -- generic capture -------------------------------------------------
    def record_event(self, endpoint: Any, event: str,
                     fields: Dict[str, Any]) -> None:
        """Raw fast path ``notify`` prefers over the named handlers: the
        emitter's packed fields dict arrives directly, with no second
        kwargs pack/unpack and no per-event-name attribute lookup.  The
        ring logic is inlined rather than delegated to a
        :class:`RingBuffer` — one less call per event on the hot path.

        ``endpoint.flow_id`` is part of the observer-seam contract for
        recorded endpoints (both protocol base classes carry it)."""
        entry = (event, endpoint.flow_id, fields)
        entries = self._entries
        if len(entries) < self.capacity:
            entries.append(entry)
        else:
            entries[self._head] = entry
            self._head = (self._head + 1) % self.capacity
        self.appended += 1

    # -- observer protocol (duck-typed) ---------------------------------
    # The named handlers exist for symmetry with conformance monitors
    # (and for callers invoking a recorder directly); ``notify`` itself
    # always takes the record_event path above.
    def on_epoch(self, sender, **fields: Any) -> None:
        self.record_event(sender, "on_epoch", fields)

    def on_setpoint(self, sender, **fields: Any) -> None:
        self.record_event(sender, "on_setpoint", fields)

    def on_loss(self, sender, **fields: Any) -> None:
        self.record_event(sender, "on_loss", fields)

    def on_window(self, sender, **fields: Any) -> None:
        self.record_event(sender, "on_window", fields)

    def on_profile_refit(self, sender, **fields: Any) -> None:
        self.record_event(sender, "on_profile_refit", fields)

    def on_tick(self, sender, **fields: Any) -> None:
        self.record_event(sender, "on_tick", fields)

    def on_belief(self, receiver, **fields: Any) -> None:
        self.record_event(receiver, "on_belief", fields)

    # -- access ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def rows(self) -> List[dict]:
        """Materialised rows in append order (oldest retained first).

        This is the cold path: the deferred stamping happens here, in
        place on the stored fields dicts (idempotent, so calling twice
        is fine — emitters hand ownership of the dict to the seam)."""
        ordered = self._entries[self._head:] + self._entries[:self._head]
        source = self.source
        out = []
        for event, flow, fields in ordered:
            fields["event"] = event[3:] if event[:3] == "on_" else event
            fields["source"] = source
            fields["flow"] = flow
            if "time" not in fields:
                fields["time"] = None
            out.append(fields)
        return out

    @property
    def dropped(self) -> int:
        """Entries overwritten by ring wraparound."""
        return self.appended - len(self._entries)


class EventSampler:
    """Per-event engine monitor bucketing events over simulated time.

    Registered through ``Simulator.add_monitor``; each event costs one
    dict update.  Use for diagnosing *when* an experiment's event load
    spikes; leave detached (the default) when only totals are needed.
    """

    def __init__(self, resolution: float = 1.0):
        if resolution <= 0:
            raise ValueError(f"resolution must be positive (got {resolution})")
        self.resolution = resolution
        self.buckets: Dict[int, int] = {}
        self._sim = None

    def __call__(self, time: float) -> None:
        bucket = int(time / self.resolution)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def attach(self, sim) -> "EventSampler":
        sim.add_monitor(self)
        self._sim = sim
        return self

    def detach(self) -> None:
        if self._sim is not None:
            self._sim.remove_monitor(self)
            self._sim = None

    def series(self) -> List[dict]:
        return [{"t": bucket * self.resolution, "events": count}
                for bucket, count in sorted(self.buckets.items())]


class TelemetrySession:
    """One experiment's worth of telemetry: recorders, meters, spans.

    The session is passive until the experiment runner calls
    :meth:`attach` with the simulator and the flows it wired up; it can
    be attached to several runs (e.g. a repetition loop) and merges
    their numbers.
    """

    def __init__(self, timeline_capacity: int = 4096,
                 sample_events: bool = False,
                 event_resolution: float = 1.0):
        self.timeline_capacity = timeline_capacity
        self.sample_events = sample_events
        self.event_resolution = event_resolution
        self.registry = MeterRegistry()
        self.spans = Spans()
        self.recorders: List[TimelineRecorder] = []
        self.samplers: List[EventSampler] = []
        self.runs = 0

    # ------------------------------------------------------------------
    def attach(self, sim, senders: Sequence[Any],
               specs: Optional[Sequence[Any]] = None,
               receivers: Sequence[Any] = ()) -> None:
        """Hook recorders onto every flow of one simulation run."""
        self.runs += 1
        for index, sender in enumerate(senders):
            label = ""
            if specs is not None and index < len(specs):
                label = getattr(specs[index], "label", "") or ""
            recorder = TimelineRecorder(capacity=self.timeline_capacity,
                                        source=label)
            sender.observers.append(recorder)
            self.recorders.append(recorder)
        for receiver in receivers:
            observers = getattr(receiver, "observers", None)
            if observers is not None:
                recorder = TimelineRecorder(capacity=self.timeline_capacity,
                                            source="rx")
                observers.append(recorder)
                self.recorders.append(recorder)
        if self.sample_events:
            self.samplers.append(
                EventSampler(self.event_resolution).attach(sim))

    def finalize(self, sim) -> None:
        """Fold end-of-run engine statistics into the meters."""
        self.registry.counter("engine.events").inc(
            getattr(sim, "events_processed", 0))
        self.registry.gauge("engine.sim_seconds").set(getattr(sim, "now", 0.0))
        for sampler in self.samplers:
            sampler.detach()

    # ------------------------------------------------------------------
    def rows(self) -> List[dict]:
        """All recorded timeline rows, time-ordered across flows."""
        rows = [row for recorder in self.recorders for row in recorder.rows()]
        rows.sort(key=lambda r: (r.get("time") or 0.0, r.get("source") or "",
                                 r.get("event") or ""))
        return rows

    def dropped(self) -> int:
        return sum(recorder.dropped for recorder in self.recorders)

    def summary(self) -> dict:
        """JSON-safe overview: meters + spans + timeline accounting."""
        return {
            "schema": TIMELINE_SCHEMA,
            "runs": self.runs,
            "timeline_rows": sum(len(r) for r in self.recorders),
            "timeline_dropped": self.dropped(),
            "meters": self.registry.snapshot(),
            "spans": self.spans.snapshot(),
            "event_series": [s.series() for s in self.samplers],
        }


# ----------------------------------------------------------------------
# Current-session plumbing (what --telemetry toggles)
# ----------------------------------------------------------------------
_ACTIVE: Optional[TelemetrySession] = None


def current_session() -> Optional[TelemetrySession]:
    """The active session, or None (the common, zero-cost case)."""
    return _ACTIVE


@contextmanager
def telemetry(session: Optional[TelemetrySession] = None
              ) -> Iterator[TelemetrySession]:
    """Activate a session for the duration of the block.

    While active, :func:`~repro.experiments.runner.run_trace_contention`
    and friends attach recorders to every flow they build.  Sessions do
    not nest: activating inside an active session raises, because two
    owners of one recorder set cannot both export it coherently.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a telemetry session is already active")
    if session is None:
        session = TelemetrySession()
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = None
