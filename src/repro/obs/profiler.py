"""Span timers and cProfile wrappers for the known hot paths.

Two granularities:

* :class:`Spans` — named wall-clock accumulators (`with spans.span("x")`)
  cheap enough to leave in production paths; snapshots are JSON-safe and
  mergeable, and the campaign executor uses them for per-task timings.
* :func:`profile_call` / :func:`profile_hotpaths` — cProfile wrappers
  that answer "where does simulator time actually go" for the paths
  profiling has repeatedly implicated: the engine event loop, spline
  fit/invert in :mod:`repro.interp`, the incremental
  :class:`~repro.cellular.channel_model.ChannelStepper`, and RED queue
  operations.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Tuple

SPANS_SCHEMA = "repro.spans/1"


class Spans:
    """Named wall-clock span accumulators.

    Each span tracks total seconds, call count, and the maximum single
    duration.  Timing uses :func:`time.perf_counter`; overhead is two
    clock reads and a dict update per span, so spans can wrap whole
    experiment phases without distorting them.
    """

    def __init__(self) -> None:
        self._spans: Dict[str, List[float]] = {}   # name -> [seconds, calls, max]

    @contextmanager
    def span(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        entry = self._spans.get(name)
        if entry is None:
            self._spans[name] = [seconds, 1, seconds]
        else:
            entry[0] += seconds
            entry[1] += 1
            if seconds > entry[2]:
                entry[2] = seconds

    def time_call(self, name: str, fn: Callable[..., Any], *args: Any,
                  **kwargs: Any) -> Any:
        with self.span(name):
            return fn(*args, **kwargs)

    # ------------------------------------------------------------------
    def seconds(self, name: str) -> float:
        entry = self._spans.get(name)
        return entry[0] if entry else 0.0

    def calls(self, name: str) -> int:
        entry = self._spans.get(name)
        return int(entry[1]) if entry else 0

    def names(self) -> List[str]:
        return sorted(self._spans)

    def snapshot(self) -> dict:
        return {
            "schema": SPANS_SCHEMA,
            "spans": {name: {"seconds": entry[0], "calls": int(entry[1]),
                             "max_seconds": entry[2]}
                      for name, entry in sorted(self._spans.items())},
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "Spans":
        if payload.get("schema") != SPANS_SCHEMA:
            raise ValueError(f"unsupported spans schema "
                             f"{payload.get('schema')!r}")
        spans = cls()
        for name, body in payload.get("spans", {}).items():
            spans._spans[name] = [float(body["seconds"]), int(body["calls"]),
                                  float(body["max_seconds"])]
        return spans

    def merge(self, other: "Spans") -> "Spans":
        for name, entry in other._spans.items():
            mine = self._spans.get(name)
            if mine is None:
                self._spans[name] = list(entry)
            else:
                mine[0] += entry[0]
                mine[1] += entry[1]
                mine[2] = max(mine[2], entry[2])
        return self


def profile_call(fn: Callable[..., Any], *args: Any, top: int = 20,
                 sort: str = "cumulative",
                 **kwargs: Any) -> Tuple[Any, List[dict]]:
    """Run ``fn`` under cProfile; return (result, top-N stat rows).

    Rows are JSON-safe dicts sorted by ``sort`` (a pstats sort key:
    ``cumulative``, ``tottime``, ...), ready for :func:`format_table`
    or a report file.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(sort)
    rows: List[dict] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, lineno, name = func
        short = filename.rsplit("/", 1)[-1]
        rows.append({
            "function": f"{short}:{lineno}({name})",
            "ncalls": int(nc),
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    key = "cumtime_s" if sort == "cumulative" else "tottime_s"
    rows.sort(key=lambda r: r[key], reverse=True)
    return result, rows[:top]


# ----------------------------------------------------------------------
# Canned hot-path profiles
# ----------------------------------------------------------------------
def _hotpath_engine() -> int:
    from ..netsim import Simulator
    sim = Simulator()
    counter = [0]

    def tick() -> None:
        counter[0] += 1

    for i in range(50_000):
        sim.schedule(i * 1e-6, tick)
    sim.run()
    return counter[0]


def _hotpath_interp() -> float:
    import numpy as np

    from ..interp import InverseLookup, PchipInterpolator
    rng = np.random.default_rng(7)
    x = np.sort(rng.choice(np.arange(1, 2000), size=256, replace=False))
    y = np.cumsum(rng.random(256)) * 0.001 + 0.02
    total = 0.0
    for _ in range(40):
        spline = PchipInterpolator(x.astype(float), y)
        lookup = InverseLookup(spline)
        for target in (0.03, 0.08, 0.15, 0.4):
            total += lookup.largest_below(target)
    return total


def _hotpath_channel() -> int:
    import numpy as np

    from ..cellular import CellularChannelModel, ChannelParams
    model = CellularChannelModel(ChannelParams(mean_rate_bps=10e6),
                                 rng=np.random.default_rng(11))
    stepper = model.stepper()
    count = 0
    for _ in range(100):
        count += stepper.advance(0.1).size
    return count


def _hotpath_red_queue() -> int:
    import numpy as np

    from ..netsim import Packet, REDQueue
    rng = np.random.default_rng(3)
    queue = REDQueue(min_th_bytes=2_000_000, max_th_bytes=6_000_000, rng=rng)
    accepted = 0
    for i in range(20_000):
        if queue.push(Packet(flow_id=0, seq=i), i * 1e-4):
            accepted += 1
        if i % 3 == 0:
            queue.pop(i * 1e-4)
    return accepted


def _hotpath_contention() -> int:
    import numpy as np

    from ..cellular import generate_scenario_trace
    from ..experiments.runner import repeat_flows, run_trace_contention
    trace = generate_scenario_trace("campus_stationary", duration=4.0,
                                    technology="3g", seed=5)
    result = run_trace_contention(trace, repeat_flows("verus", 2, r=2.0),
                                  duration=4.0, warmup=1.0, seed=5)
    return sum(r.packets_received for r in result.receivers)


HOTPATHS: Dict[str, Callable[[], Any]] = {
    "engine": _hotpath_engine,
    "interp": _hotpath_interp,
    "channel": _hotpath_channel,
    "red_queue": _hotpath_red_queue,
    "contention": _hotpath_contention,
}


def profile_hotpaths(names: Optional[List[str]] = None,
                     top: int = 15) -> Dict[str, List[dict]]:
    """cProfile each named hot path; returns name -> top stat rows."""
    selected = list(HOTPATHS) if names is None else names
    out: Dict[str, List[dict]] = {}
    for name in selected:
        if name not in HOTPATHS:
            raise ValueError(f"unknown hot path {name!r}; "
                             f"choose from {sorted(HOTPATHS)}")
        _, rows = profile_call(HOTPATHS[name], top=top)
        out[name] = rows
    return out
