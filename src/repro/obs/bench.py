"""Named benchmark suite with content-hashed workloads and compare mode.

Every benchmark is a (setup, run) pair: ``setup`` builds the workload
deterministically from pinned seeds and parameters, the workload is
content-hashed (SHA-256 over canonical bytes, like corpus traces), and
``run`` is what gets timed.  The hash is recorded next to the timing so
a later compare knows whether two numbers measured the same work — a
regression against a *different* workload is not a regression, it is an
incomparable measurement, and the compare mode says so explicitly.

Results are written as schema-versioned ``BENCH_<label>.json`` files
(``repro.bench/1``).  :func:`compare` diffs two result files against
per-benchmark tolerance bands; tolerances live in the result file
itself, so file-vs-file comparison needs no access to this module's
current defaults.

Execution goes through the campaign engine's :func:`run_tasks`, so
``--jobs N`` parallelises benchmarks across processes with the same
crash isolation sweeps get; workload hashes must come out bit-identical
regardless of the job count (setup depends only on pinned seeds, never
on execution order), and the test suite holds us to that.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import __version__ as REPRO_VERSION

BENCH_SCHEMA = "repro.bench/1"

#: Default relative tolerance bands by benchmark kind.  Micro benchmarks
#: time tight loops and jitter less; macro benchmarks run whole
#: simulations and breathe more on shared CI hardware.
DEFAULT_TOLERANCE = {"micro": 0.35, "macro": 0.50}


# ----------------------------------------------------------------------
# Workload hashing
# ----------------------------------------------------------------------
def hash_parts(*parts: Any) -> str:
    """SHA-256 over canonical byte renderings of the workload pieces.

    Arrays contribute dtype + shape + C-order bytes; everything else is
    canonical sorted-key JSON.  The digest identifies workload *content*,
    so equal inputs hash equally across processes, job counts, and runs.
    """
    import numpy as np

    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            arr = np.ascontiguousarray(part)
            digest.update(str(arr.dtype).encode())
            digest.update(str(arr.shape).encode())
            digest.update(arr.tobytes())
        else:
            digest.update(json.dumps(part, sort_keys=True,
                                     separators=(",", ":")).encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Benchmark definitions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchmarkDef:
    """One named benchmark: deterministic setup + timed run.

    ``setup(params)`` returns ``(workload, workload_hash)``;
    ``run(workload)`` executes the measured work and returns a
    JSON-safe checksum (result sanity value, also compared across
    repeats).  ``params`` maps mode name -> parameter dict.
    """

    name: str
    kind: str                    # "micro" | "macro"
    summary: str
    setup: Callable[[dict], Tuple[Any, str]]
    run: Callable[[Any], Any]
    params: Dict[str, dict]
    repeats: Dict[str, int]
    tolerance: Optional[float] = None
    #: Optional reference workload run interleaved with ``run`` (pairs:
    #: baseline, measured, baseline, measured...).  The result then also
    #: carries ``baseline_seconds`` and ``overhead_ratio`` — the median
    #: of per-pair ratios, which cancels the machine drift that makes a
    #: ratio of two *separately timed* benchmarks unreliable.
    baseline_run: Optional[Callable[[Any], Any]] = None

    def band(self) -> float:
        if self.tolerance is not None:
            return self.tolerance
        return DEFAULT_TOLERANCE[self.kind]


def _setup_engine(params: dict) -> Tuple[Any, str]:
    return params, hash_parts("engine.events", params)


def _run_engine(workload: dict) -> int:
    from ..netsim import Simulator
    sim = Simulator()
    counter = [0]

    def tick() -> None:
        counter[0] += 1

    # The data plane schedules through the tuple fast path (call_later),
    # so that is what engine throughput means here; the Event-handle path
    # is covered by sim.verus_direct's timer churn.
    for i in range(workload["events"]):
        sim.call_later(i * 1e-6, tick)
    sim.run()
    return counter[0]


def _setup_droptail(params: dict) -> Tuple[Any, str]:
    return params, hash_parts("queue.droptail", params)


def _run_droptail(workload: dict) -> int:
    from ..netsim import DropTailQueue, Packet
    queue = DropTailQueue()
    for i in range(workload["packets"]):
        queue.push(Packet(flow_id=0, seq=i), 0.0)
    drained = 0
    while queue.pop(0.0) is not None:
        drained += 1
    return drained


def _setup_red(params: dict) -> Tuple[Any, str]:
    return params, hash_parts("queue.red", params)


def _run_red(workload: dict) -> int:
    import numpy as np

    from ..netsim import Packet, REDQueue
    rng = np.random.default_rng(workload["seed"])
    queue = REDQueue(min_th_bytes=2_000_000, max_th_bytes=6_000_000, rng=rng)
    accepted = 0
    for i in range(workload["packets"]):
        if queue.push(Packet(flow_id=0, seq=i), 0.0):
            accepted += 1
    return accepted


def _setup_pchip(params: dict) -> Tuple[Any, str]:
    import numpy as np
    rng = np.random.default_rng(params["seed"])
    x = np.sort(rng.choice(np.arange(1, 2000), size=params["points"],
                           replace=False)).astype(float)
    y = np.cumsum(rng.random(params["points"])) * 0.001 + 0.02
    workload = {"x": x, "y": y, "builds": params["builds"]}
    return workload, hash_parts("interp.pchip", params, x, y)


def _run_pchip(workload: dict) -> float:
    import numpy as np

    from ..interp import PchipInterpolator
    x, y = workload["x"], workload["y"]
    grid = np.linspace(x[0], x[-1], 512)
    total = 0.0
    for _ in range(workload["builds"]):
        spline = PchipInterpolator(x, y)
        total += float(np.sum(spline(grid)))
    return round(total, 6)


def _setup_inverse(params: dict) -> Tuple[Any, str]:
    import numpy as np
    rng = np.random.default_rng(params["seed"])
    x = np.sort(rng.choice(np.arange(1, 2000), size=params["points"],
                           replace=False)).astype(float)
    y = np.cumsum(rng.random(params["points"])) * 0.001 + 0.02
    workload = {"x": x, "y": y, "rounds": params["rounds"],
                "targets": (0.03, 0.08, 0.15, 0.4)}
    return workload, hash_parts("interp.inverse", params, x, y)


def _run_inverse(workload: dict) -> float:
    from ..interp import InverseLookup, PchipInterpolator
    total = 0.0
    for _ in range(workload["rounds"]):
        spline = PchipInterpolator(workload["x"], workload["y"])
        lookup = InverseLookup(spline)
        for target in workload["targets"]:
            total += lookup.largest_below(target)
    return round(total, 6)


def _setup_profile_update(params: dict) -> Tuple[Any, str]:
    import numpy as np
    rng = np.random.default_rng(params["seed"])
    windows = rng.integers(1, 400, size=params["samples"])
    delays = rng.uniform(0.02, 0.3, size=params["samples"])
    workload = {"windows": windows, "delays": delays,
                "rebuild_every": params["rebuild_every"]}
    return workload, hash_parts("profile.update", params, windows, delays)


def _run_profile_update(workload: dict) -> int:
    from ..core import DelayProfiler
    profiler = DelayProfiler()
    windows, delays = workload["windows"], workload["delays"]
    every = workload["rebuild_every"]
    for i in range(windows.size):
        profiler.add_sample(int(windows[i]), float(delays[i]), now=i * 0.001)
        if i % every == every - 1:
            profiler.interpolate(d_min=0.02, now=i * 0.001)
    return profiler.interpolations


def _setup_channel(params: dict) -> Tuple[Any, str]:
    return params, hash_parts("channel.generate", params)


def _run_channel(workload: dict) -> int:
    import numpy as np

    from ..cellular import CellularChannelModel, ChannelParams
    model = CellularChannelModel(
        ChannelParams(mean_rate_bps=workload["rate_bps"]),
        rng=np.random.default_rng(workload["seed"]))
    return model.generate(workload["duration"]).size


def _setup_tracelink(params: dict) -> Tuple[Any, str]:
    import numpy as np

    from ..cellular import CellularChannelModel, ChannelParams
    model = CellularChannelModel(
        ChannelParams(mean_rate_bps=params["rate_bps"]),
        rng=np.random.default_rng(params["seed"]))
    opportunities = model.generate(params["duration"])
    workload = {"opportunities": opportunities, "packets": params["packets"]}
    return workload, hash_parts("tracelink.replay", params, opportunities)


def _run_tracelink(workload: dict) -> int:
    from ..netsim import Packet, Simulator
    from ..netsim.trace_link import TraceLink
    sim = Simulator()
    received = [0]

    def sink(_packet) -> None:
        received[0] += 1

    link = TraceLink(sim, workload["opportunities"], dst=sink, loop=False)
    for i in range(workload["packets"]):
        link.send(Packet(flow_id=0, seq=i))
    sim.run()
    return received[0]


def _setup_verus_direct(params: dict) -> Tuple[Any, str]:
    return params, hash_parts("sim.verus_direct", params)


def _run_verus_direct(workload: dict) -> int:
    from ..core import VerusConfig, VerusReceiver, VerusSender
    from ..netsim import DirectPath, DropTailQueue, Link, Simulator
    sim = Simulator()
    link = Link(sim, rate_bps=workload["rate_bps"], queue=DropTailQueue())
    sender = VerusSender(0, VerusConfig())
    receiver = VerusReceiver(0)
    DirectPath(sim, link, sender, receiver,
               rtt=workload["rtt"], ack_pool=True).run(workload["duration"])
    return receiver.packets_received


def _setup_sprout_forecast(params: dict) -> Tuple[Any, str]:
    import numpy as np
    rng = np.random.default_rng(params["seed"])
    packets = rng.integers(0, params["max_packets"] + 1,
                           size=params["ticks"]).astype(np.int64)
    censored = rng.random(params["ticks"]) < params["censored_frac"]
    workload = {"packets": packets, "censored": censored,
                "rate_cap_bps": params["rate_cap_bps"]}
    return workload, hash_parts("sprout.forecast", params, packets,
                                censored.astype(np.int64))


def _run_sprout_forecast(workload: dict) -> float:
    from ..sprout import SproutForecaster
    # Fresh forecaster per repeat: the belief is stateful, and every
    # repeat must do identical work for the checksum to hold.
    forecaster = SproutForecaster(rate_cap_bps=workload["rate_cap_bps"])
    packets, censored = workload["packets"], workload["censored"]
    total = 0.0
    for i in range(packets.size):
        total += forecaster.on_tick(int(packets[i]),
                                    censored=bool(censored[i]))
    return round(total, 6)


def _setup_sweep_dispatch(params: dict) -> Tuple[Any, str]:
    import os
    import tempfile

    import numpy as np

    from ..campaign.spec import TaskSpec
    from ..traces.corpus import trace_sha256
    from ..traces.formats import write_trace_ms
    rng = np.random.default_rng(params["seed"])
    span_ms = int(params["trace_seconds"] * 1000)
    times_ms = np.sort(rng.integers(
        0, span_ms, size=params["opportunities"])).astype(np.int64)
    # The trace lives in a temp dir, but the workload hash covers its
    # *content* plus the grid parameters — never the path — so runs on
    # different machines/tmpdirs stay comparable.
    tmpdir = tempfile.mkdtemp(prefix="repro-bench-sweep-")
    trace_path = os.path.join(tmpdir, "cell.pps")
    write_trace_ms(trace_path, times_ms, "mahimahi")
    digest = trace_sha256(times_ms)
    payloads = []
    for cell in range(params["cells"]):
        task = TaskSpec(scenario="bench-trace", protocol=params["protocol"],
                        flows=1, duration=params["duration"],
                        seed=1000 + cell, seed_index=cell,
                        rtt=0.05, warmup=params["warmup"],
                        trace_file=trace_path, trace_sha256=digest)
        payloads.append(task.to_dict())
    workload = {"payloads": payloads, "jobs": params["jobs"]}
    return workload, hash_parts("sweep.dispatch", params, times_ms)


def _run_sweep_dispatch(workload: dict) -> float:
    from ..campaign.executor import run_tasks
    from ..campaign.spec import run_simulation_task
    # Cache-cold by construction: no store, and each repeat spawns a
    # fresh worker pool, so per-worker warm state never leaks between
    # repeats — what is measured is dispatch + trace load + simulation.
    run = run_tasks(workload["payloads"], run_simulation_task,
                    jobs=workload["jobs"], retries=0)
    if not run.all_ok:
        bad = next(o for o in run.outcomes if not o.ok)
        raise RuntimeError(f"sweep.dispatch cell {bad.index} "
                           f"{bad.status}: {bad.error}")
    total = 0.0
    for outcome in run.outcomes:
        for flow in outcome.result["flows"]:
            total += flow["stats"]["throughput_bps"]
    return round(total, 3)


def _contention_setup(name: str, params: dict) -> Tuple[Any, str]:
    from ..cellular import generate_scenario_trace
    trace = generate_scenario_trace(params["scenario"],
                                    duration=params["duration"],
                                    technology=params["technology"],
                                    seed=params["seed"])
    workload = dict(params)
    workload["trace"] = trace
    return workload, hash_parts(name, params, trace)


def _setup_contention(params: dict) -> Tuple[Any, str]:
    return _contention_setup("sim.contention", params)


def _run_contention(workload: dict) -> int:
    from ..experiments.runner import repeat_flows, run_trace_contention
    result = run_trace_contention(
        workload["trace"],
        repeat_flows("verus", workload["flows"], r=2.0),
        duration=workload["duration"], warmup=workload["warmup"],
        seed=workload["seed"])
    return sum(r.packets_received for r in result.receivers)


def _setup_contention_telemetry(params: dict) -> Tuple[Any, str]:
    import numpy as np

    from ..cellular import CellularChannelModel, ChannelParams
    model = CellularChannelModel(
        ChannelParams(mean_rate_bps=params["rate_bps"]),
        rng=np.random.default_rng(params["seed"]))
    trace = model.generate(params["duration"])
    workload = dict(params)
    workload["trace"] = trace
    return workload, hash_parts("sim.contention_telemetry", params, trace)


def _run_contention_telemetry(workload: dict) -> int:
    from ..experiments.runner import repeat_flows, run_trace_contention
    from .timeline import TelemetrySession, telemetry
    with telemetry(TelemetrySession()):
        result = run_trace_contention(
            workload["trace"],
            repeat_flows("verus", workload["flows"], r=2.0),
            duration=workload["duration"], warmup=workload["warmup"],
            seed=workload["seed"])
    return sum(r.packets_received for r in result.receivers)


_CONTENTION_PARAMS = {
    "quick": {"scenario": "campus_stationary", "technology": "lte",
              "duration": 4.0, "warmup": 1.0, "flows": 2, "seed": 5},
    "full": {"scenario": "campus_pedestrian", "technology": "lte",
             "duration": 10.0, "warmup": 2.0, "flows": 3, "seed": 5},
}

#: The telemetry pair runs on a saturated LTE-class cell (50 Mbps,
#: ~3800 pkt/s) rather than a named mobility scenario: the cost of a
#: telemetry row is fixed per control epoch, so the relative overhead
#: depends only on how much simulation work each epoch carries.  A fast
#: cell is the regime where performance matters — and the regime the
#: overhead bound is stated for; a starved 3G cell (~500 pkt/s) would
#: multiply the ratio several-fold without a byte of telemetry changing.
#: Legs are kept short (~200 ms) and repeats high so the paired
#: estimator gets many shots at an unpolluted sample of each side.
_TELEMETRY_PARAMS = {
    "quick": {"rate_bps": 50e6, "duration": 1.5, "warmup": 0.5,
              "flows": 2, "seed": 5},
    "full": {"rate_bps": 50e6, "duration": 3.0, "warmup": 1.0,
             "flows": 3, "seed": 5},
}

BENCHMARKS: Dict[str, BenchmarkDef] = {}


def _register(bench: BenchmarkDef) -> None:
    if bench.name in BENCHMARKS:
        raise ValueError(f"duplicate benchmark {bench.name!r}")
    BENCHMARKS[bench.name] = bench


_register(BenchmarkDef(
    name="engine.events", kind="micro",
    summary="heap engine schedule+dispatch throughput (tuple fast path)",
    setup=_setup_engine, run=_run_engine,
    params={"quick": {"events": 30_000}, "full": {"events": 100_000}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="queue.droptail", kind="micro",
    summary="drop-tail queue push/pop cycle",
    setup=_setup_droptail, run=_run_droptail,
    params={"quick": {"packets": 10_000}, "full": {"packets": 10_000}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="queue.red", kind="micro",
    summary="RED EWMA + probabilistic drop path",
    setup=_setup_red, run=_run_red,
    params={"quick": {"packets": 10_000, "seed": 0},
            "full": {"packets": 10_000, "seed": 0}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="interp.pchip", kind="micro",
    summary="PCHIP construction + 512-point grid evaluation",
    setup=_setup_pchip, run=_run_pchip,
    params={"quick": {"points": 256, "builds": 5, "seed": 0},
            "full": {"points": 256, "builds": 20, "seed": 0}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="interp.inverse", kind="micro",
    summary="spline fit + inverse window lookup throughput",
    setup=_setup_inverse, run=_run_inverse,
    params={"quick": {"points": 256, "rounds": 5, "seed": 7},
            "full": {"points": 256, "rounds": 20, "seed": 7}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="profile.update", kind="micro",
    summary="per-ACK delay profiler add_sample + periodic rebuild",
    setup=_setup_profile_update, run=_run_profile_update,
    params={"quick": {"samples": 4_000, "rebuild_every": 1_000, "seed": 1},
            "full": {"samples": 10_000, "rebuild_every": 1_000, "seed": 1}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="channel.generate", kind="micro",
    summary="cellular trace synthesis rate",
    setup=_setup_channel, run=_run_channel,
    params={"quick": {"duration": 20.0, "rate_bps": 10e6, "seed": 2},
            "full": {"duration": 60.0, "rate_bps": 10e6, "seed": 2}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="tracelink.replay", kind="micro",
    summary="trace-link delivery-opportunity replay rate",
    setup=_setup_tracelink, run=_run_tracelink,
    params={"quick": {"duration": 10.0, "rate_bps": 10e6, "seed": 3,
                      "packets": 5_000},
            "full": {"duration": 30.0, "rate_bps": 10e6, "seed": 3,
                     "packets": 20_000}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="sprout.forecast", kind="micro",
    summary="Sprout belief update + cautious horizon budget per tick",
    setup=_setup_sprout_forecast, run=_run_sprout_forecast,
    # Quick mode keeps every tick uncensored: censored observations need
    # scipy's gammainc, and the CI bench lane runs on numpy alone.  Full
    # mode (the local A/B gate) exercises the censored tail path too.
    params={"quick": {"ticks": 300, "max_packets": 40,
                      "censored_frac": 0.0, "rate_cap_bps": 18e6,
                      "seed": 11},
            "full": {"ticks": 1200, "max_packets": 40,
                     "censored_frac": 0.3, "rate_cap_bps": 18e6,
                     "seed": 11}},
    repeats={"quick": 3, "full": 5}))

_register(BenchmarkDef(
    name="sweep.dispatch", kind="macro",
    summary="cache-cold pinned-trace grid through the pooled executor",
    setup=_setup_sweep_dispatch, run=_run_sweep_dispatch,
    params={"quick": {"cells": 8, "protocol": "cubic", "duration": 1.0,
                      "warmup": 0.2, "trace_seconds": 60.0,
                      "opportunities": 120_000, "jobs": 2, "seed": 13},
            "full": {"cells": 24, "protocol": "cubic", "duration": 1.0,
                     "warmup": 0.2, "trace_seconds": 60.0,
                     "opportunities": 120_000, "jobs": 2, "seed": 13}},
    repeats={"quick": 2, "full": 3}))

_register(BenchmarkDef(
    name="sim.verus_direct", kind="macro",
    summary="single Verus flow over a fixed-rate direct path",
    setup=_setup_verus_direct, run=_run_verus_direct,
    params={"quick": {"duration": 5.0, "rate_bps": 10e6, "rtt": 0.05},
            "full": {"duration": 10.0, "rate_bps": 10e6, "rtt": 0.05}},
    repeats={"quick": 2, "full": 3}))

_register(BenchmarkDef(
    name="sim.contention", kind="macro",
    summary="end-to-end multi-flow contention on a pinned scenario trace",
    setup=_setup_contention, run=_run_contention,
    params=_CONTENTION_PARAMS,
    repeats={"quick": 3, "full": 3}))

_register(BenchmarkDef(
    name="sim.contention_telemetry", kind="macro",
    summary="multi-flow contention on a saturated cell, telemetry attached",
    setup=_setup_contention_telemetry, run=_run_contention_telemetry,
    # Paired with the plain run: each repeat interleaves a baseline and
    # an instrumented leg, and overhead_ratio combines two conservative
    # CPU-clock estimators over the interleaved samples (see
    # _bench_task) — immune to drift between separately timed
    # benchmarks.
    baseline_run=_run_contention,
    params=_TELEMETRY_PARAMS,
    repeats={"quick": 16, "full": 16}))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _bench_task(payload: dict) -> dict:
    """Run one named benchmark (module-level so process pools can pickle
    it).  Setup is built once and hashed; only ``run`` is timed."""
    bench = BENCHMARKS[payload["name"]]
    mode = payload["mode"]
    params = bench.params[mode]
    repeats = payload.get("repeats") or bench.repeats[mode]
    workload, workload_hash = bench.setup(params)

    samples: List[float] = []
    baseline_samples: List[float] = []
    cpu_samples: List[float] = []
    cpu_baseline: List[float] = []
    checksum: Any = None
    if bench.baseline_run is not None:
        # One untimed warm-up pair: the first execution of each leg pays
        # import/allocator/cache costs that would otherwise bias
        # whichever leg happens to run first in attempt 0.
        bench.baseline_run(workload)
        bench.run(workload)
    for attempt in range(repeats):
        if bench.baseline_run is not None:
            # Interleave baseline and measured runs so both sides sample
            # the same CPU-frequency/cache weather, alternating which
            # goes first each attempt so within-pair warming effects
            # cancel rather than bias one side.  Each leg is timed on
            # both clocks: wall for the reported seconds, CPU for the
            # overhead ratio (preemption by other processes shows up in
            # wall time but is not cost this code added).
            legs = [("baseline", bench.baseline_run,
                     baseline_samples, cpu_baseline),
                    ("measured", bench.run, samples, cpu_samples)]
            if attempt % 2:
                legs.reverse()
            results = {}
            for leg, fn, wall_sink, cpu_sink in legs:
                wall = time.perf_counter()
                cpu = time.process_time()
                results[leg] = fn(workload)
                cpu_sink.append(time.process_time() - cpu)
                wall_sink.append(time.perf_counter() - wall)
            baseline_result, result = results["baseline"], results["measured"]
        else:
            start = time.perf_counter()
            result = bench.run(workload)
            samples.append(time.perf_counter() - start)
        if attempt == 0:
            checksum = result
        elif result != checksum:
            raise RuntimeError(
                f"benchmark {bench.name!r} is nondeterministic: repeat "
                f"{attempt} returned {result!r}, first run {checksum!r}")
        if bench.baseline_run is not None and baseline_result != result:
            raise RuntimeError(
                f"benchmark {bench.name!r}: measured run returned "
                f"{result!r} but its interleaved baseline returned "
                f"{baseline_result!r} — the instrumented path perturbed "
                f"the workload")
    row = {
        "name": bench.name,
        "kind": bench.kind,
        "summary": bench.summary,
        "mode": mode,
        "params": params,
        "workload_hash": workload_hash,
        "checksum": checksum,
        "repeats": repeats,
        "seconds": min(samples),
        "mean_seconds": sum(samples) / len(samples),
        "samples": [round(s, 6) for s in samples],
        "tolerance": bench.band(),
    }
    if baseline_samples:
        # The overhead ratio is computed on the CPU clock (process_time
        # excludes preemption by unrelated processes; wall-clock noise
        # on a busy host is one-sided and easily 10x the effect being
        # measured) from two estimators of the same quantity:
        #
        #   * median of per-pair deltas — interleaved pairs share
        #     machine weather and differencing cancels additive drift;
        #   * floor-to-floor (best measured leg over best baseline leg)
        #     — each minimum converges on an unpolluted sample of its
        #     side, the timeit best-of-N rationale.
        #
        # Contention noise is strictly additive, so each estimator can
        # only flake *upward*; taking the smaller of the two (clamped
        # at 1.0 — instrumentation cannot make the workload faster)
        # keeps the report honest unless both flake at once.  The
        # wall-clock samples are still reported alongside.
        best_baseline = min(baseline_samples)
        row["baseline_seconds"] = best_baseline
        row["baseline_samples"] = [round(s, 6) for s in baseline_samples]
        best_cpu = min(cpu_baseline)
        if best_cpu > 0:
            deltas = sorted(m - b for m, b in zip(cpu_samples, cpu_baseline))
            median_est = 1.0 + deltas[len(deltas) // 2] / best_cpu
            floor_est = min(cpu_samples) / best_cpu
            row["overhead_ratio"] = round(
                max(1.0, min(median_est, floor_est)), 4)
    return row


def run_bench(names: Optional[Sequence[str]] = None, mode: str = "quick",
              jobs: int = 1, label: str = "local",
              progress: Optional[Callable[[dict], None]] = None) -> dict:
    """Run the named benchmarks (all by default) and return a BENCH doc.

    ``jobs > 1`` distributes benchmarks across worker processes via the
    campaign engine; timings then share cores, so compare same-jobs runs
    against each other.  Workload hashes are execution-order independent
    either way.
    """
    from ..campaign.executor import run_tasks

    if mode not in ("quick", "full"):
        raise ValueError(f"mode must be 'quick' or 'full' (got {mode!r})")
    selected = list(BENCHMARKS) if names is None else list(names)
    for name in selected:
        if name not in BENCHMARKS:
            raise ValueError(f"unknown benchmark {name!r}; choose from "
                             f"{sorted(BENCHMARKS)}")

    def on_progress(outcome, done, total) -> None:
        if progress is not None and outcome.ok:
            progress(outcome.result)

    run = run_tasks([{"name": name, "mode": mode} for name in selected],
                    _bench_task, jobs=jobs, retries=0,
                    progress=on_progress)
    benchmarks: Dict[str, dict] = {}
    failures: Dict[str, str] = {}
    for name, outcome in zip(selected, run.outcomes):
        if outcome.ok:
            benchmarks[outcome.result["name"]] = outcome.result
        else:
            failures[name] = outcome.error or outcome.status
    doc = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "mode": mode,
        "jobs": jobs,
        "repro_version": REPRO_VERSION,
        "benchmarks": benchmarks,
        "failures": failures,
        "derived": _derived(benchmarks),
    }
    return doc


def _derived(benchmarks: Dict[str, dict]) -> dict:
    """Cross-benchmark numbers: rates and the telemetry overhead ratio."""
    derived: dict = {}
    engine = benchmarks.get("engine.events")
    if engine and engine["seconds"] > 0:
        derived["engine_events_per_sec"] = round(
            engine["params"]["events"] / engine["seconds"], 1)
    telem = benchmarks.get("sim.contention_telemetry")
    if telem and "overhead_ratio" in telem:
        # Paired measurement (interleaved baseline/telemetry repeats)
        # beats dividing two independently timed benchmarks, whose
        # separate timing windows see different machine weather.
        derived["telemetry_overhead_ratio"] = telem["overhead_ratio"]
    elif telem and telem.get("baseline_seconds"):
        derived["telemetry_overhead_ratio"] = round(
            telem["seconds"] / telem["baseline_seconds"], 4)
    return derived


def write_bench(doc: dict, path=None, directory=".") -> str:
    """Write ``BENCH_<label>.json``; returns the path written."""
    if path is None:
        path = Path(directory) / f"BENCH_{doc['label']}.json"
    path = Path(path)
    stamped = dict(doc)
    stamped["written_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    path.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
    return str(path)


def load_bench(path) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"{path}: unsupported bench schema "
                         f"{doc.get('schema')!r}")
    return doc


# ----------------------------------------------------------------------
# Compare
# ----------------------------------------------------------------------
def compare(baseline: dict, current: dict,
            max_regression: Optional[float] = None) -> List[dict]:
    """Diff two BENCH docs benchmark-by-benchmark.

    Statuses: ``ok`` (within band), ``regression`` / ``improved``
    (outside band), ``workload-changed`` (hashes differ — timings are
    incomparable), ``missing`` (in baseline only), ``new`` (in current
    only).  The tolerance comes from the *baseline* file so the gate is
    pinned with the numbers it protects; ``max_regression`` caps every
    benchmark's regression band at that fraction (the CI ratchet: with
    0.10, anything more than 10% slower than the committed baseline is a
    regression no matter how lax the per-benchmark band is).  The
    *improved* threshold keeps using the per-benchmark band so a ratchet
    run doesn't spam "improved" for ordinary machine noise.
    """
    rows: List[dict] = []
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    for name in sorted(set(base_benches) | set(cur_benches)):
        base = base_benches.get(name)
        cur = cur_benches.get(name)
        row = {"name": name, "status": "ok",
               "baseline_s": base["seconds"] if base else None,
               "current_s": cur["seconds"] if cur else None,
               "ratio": None, "tolerance": None}
        if base is None:
            row["status"] = "new"
        elif cur is None:
            row["status"] = "missing"
        elif base["workload_hash"] != cur["workload_hash"]:
            row["status"] = "workload-changed"
        else:
            tolerance = float(base.get("tolerance",
                                       DEFAULT_TOLERANCE["micro"]))
            regression_band = tolerance
            if max_regression is not None:
                regression_band = min(regression_band, float(max_regression))
            row["tolerance"] = regression_band
            if base["seconds"] > 0:
                ratio = cur["seconds"] / base["seconds"]
                row["ratio"] = round(ratio, 4)
                if ratio > 1.0 + regression_band:
                    row["status"] = "regression"
                elif ratio < 1.0 - tolerance:
                    row["status"] = "improved"
        rows.append(row)
    return rows


def regressions(rows: Sequence[dict]) -> List[dict]:
    """The rows a perf gate should fail on."""
    return [row for row in rows if row["status"] == "regression"]


def format_compare(rows: Sequence[dict]) -> str:
    """Plain-text compare table (CLI + CI log output)."""
    header = f"{'benchmark':<28s} {'baseline':>10s} {'current':>10s} " \
             f"{'ratio':>7s}  status"
    lines = [header, "-" * len(header)]
    for row in rows:
        base = f"{row['baseline_s'] * 1e3:.2f}ms" \
            if row["baseline_s"] is not None else "-"
        cur = f"{row['current_s'] * 1e3:.2f}ms" \
            if row["current_s"] is not None else "-"
        ratio = f"{row['ratio']:.3f}" if row["ratio"] is not None else "-"
        lines.append(f"{row['name']:<28s} {base:>10s} {cur:>10s} "
                     f"{ratio:>7s}  {row['status']}")
    return "\n".join(lines)
