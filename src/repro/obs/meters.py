"""Hierarchical meters: counters, gauges, log-bucketed histograms.

The registry is the accumulation side of the observability subsystem:
protocol observers and span timers write into it, and a JSON-safe
:meth:`MeterRegistry.snapshot` comes out.  Snapshots are *mergeable* —
two snapshots taken in different processes (e.g. campaign workers) can
be combined with :func:`merge_snapshots` into one consistent view,
which is what makes the meters usable under the campaign engine's
process pool.

Histograms are log-bucketed: a value lands in bucket ``i`` when
``base**i <= value < base**(i+1)``.  Buckets are sparse (a dict), so a
histogram spanning nanoseconds to minutes costs a handful of entries,
and merging two histograms is a per-bucket addition.  Percentiles are
reconstructed by walking the cumulative bucket mass and interpolating
linearly inside the target bucket, clamped to the exact observed
min/max so single-value and single-bucket histograms are exact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

SNAPSHOT_SCHEMA = "repro.meters/1"


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"value": self.value}

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    @classmethod
    def from_dict(cls, payload: dict) -> "Counter":
        counter = cls()
        counter.value = int(payload["value"])
        return counter


class Gauge:
    """Last-written value plus its running min/max envelope."""

    __slots__ = ("value", "min", "max", "updates")

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.updates += 1

    def to_dict(self) -> dict:
        return {"value": self.value, "min": self.min, "max": self.max,
                "updates": self.updates}

    def merge(self, other: "Gauge") -> None:
        """Right-biased merge: the other snapshot's last write wins, the
        min/max envelope covers both."""
        if other.updates:
            self.value = other.value
        for attr, fn in (("min", min), ("max", max)):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                setattr(self, attr, theirs if mine is None else fn(mine, theirs))
        self.updates += other.updates

    @classmethod
    def from_dict(cls, payload: dict) -> "Gauge":
        gauge = cls()
        gauge.value = payload["value"]
        gauge.min = payload["min"]
        gauge.max = payload["max"]
        gauge.updates = int(payload["updates"])
        return gauge


class Histogram:
    """Sparse log-bucketed histogram with exact count/sum/min/max.

    ``base`` sets the bucket growth factor (relative resolution);
    the default ``2 ** 0.25`` keeps any reconstructed percentile within
    about ±9% of the true value.  Non-positive values (a zero-length
    span, a clamped delay) are counted in a dedicated ``zeros`` bucket
    rather than silently dropped.
    """

    __slots__ = ("base", "counts", "zeros", "count", "total", "min", "max",
                 "_log_base")

    def __init__(self, base: float = 2.0 ** 0.25) -> None:
        if base <= 1.0:
            raise ValueError(f"histogram base must exceed 1 (got {base})")
        self.base = float(base)
        self._log_base = math.log(self.base)
        self.counts: Dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0.0:
            self.zeros += 1
            return
        index = int(math.floor(math.log(value) / self._log_base))
        # Float rounding at an exact bucket edge can land one bucket
        # high; nudge back so base**i <= value holds.
        if self.base ** index > value:
            index -= 1
        self.counts[index] = self.counts.get(index, 0) + 1

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------
    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Reconstruct the ``q``-th percentile (``0 <= q <= 100``).

        Returns None for an empty histogram.  Exact at the envelope: the
        0th percentile is the observed min, the 100th the observed max,
        and a histogram whose mass sits in one bucket interpolates
        between the clamped bucket bounds, so a single observation
        reproduces itself exactly.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100] (got {q})")
        if self.count == 0:
            return None
        target = q / 100.0 * self.count
        seen = self.zeros
        if self.zeros and target <= seen:
            # Non-positive values sit below every log bucket.  (Guarded on
            # zeros actually existing: q=0 on an all-positive histogram
            # must fall through and clamp to the observed min instead.)
            return min(0.0, self.min if self.min is not None else 0.0)
        for index in sorted(self.counts):
            bucket = self.counts[index]
            if seen + bucket >= target:
                lo = self.base ** index
                hi = self.base ** (index + 1)
                # Clamp the bucket to the observed envelope so the
                # reconstruction never leaves [min, max].
                lo = max(lo, self.min) if self.min is not None else lo
                hi = min(hi, self.max) if self.max is not None else hi
                if hi <= lo:
                    return float(lo)
                frac = (target - seen) / bucket
                return float(lo + frac * (hi - lo))
            seen += bucket
        return float(self.max) if self.max is not None else None

    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> None:
        if abs(other.base - self.base) > 1e-12:
            raise ValueError(
                f"cannot merge histograms with different bases "
                f"({self.base} != {other.base})")
        for index, bucket in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + bucket
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        for attr, fn in (("min", min), ("max", max)):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                setattr(self, attr, theirs if mine is None else fn(mine, theirs))

    def to_dict(self) -> dict:
        return {
            "base": self.base,
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
            "zeros": self.zeros,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        hist = cls(base=float(payload["base"]))
        hist.counts = {int(k): int(v) for k, v in payload["counts"].items()}
        hist.zeros = int(payload["zeros"])
        hist.count = int(payload["count"])
        hist.total = float(payload["total"])
        hist.min = payload["min"]
        hist.max = payload["max"]
        return hist


class MeterRegistry:
    """Get-or-create registry of named meters.

    Names are hierarchical dotted paths (``engine.events``,
    ``verus.epoch.window``); :meth:`scoped` returns a view that prefixes
    every name, so a subsystem can meter itself without knowing where it
    is mounted.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        meter = self._counters.get(name)
        if meter is None:
            self._check_name(name)
            meter = self._counters[name] = Counter()
        return meter

    def gauge(self, name: str) -> Gauge:
        meter = self._gauges.get(name)
        if meter is None:
            self._check_name(name)
            meter = self._gauges[name] = Gauge()
        return meter

    def histogram(self, name: str, base: float = 2.0 ** 0.25) -> Histogram:
        meter = self._histograms.get(name)
        if meter is None:
            self._check_name(name)
            meter = self._histograms[name] = Histogram(base=base)
        return meter

    def _check_name(self, name: str) -> None:
        if not name:
            raise ValueError("meter name must be non-empty")
        taken = (name in self._counters or name in self._gauges
                 or name in self._histograms)
        if taken:
            raise ValueError(f"meter {name!r} already registered "
                             f"with a different type")

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self, prefix)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> dict:
        """JSON-safe snapshot of every meter (sorted names)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {k: self._counters[k].to_dict()
                         for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].to_dict()
                       for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].to_dict()
                           for k in sorted(self._histograms)},
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "MeterRegistry":
        if payload.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(f"unsupported meter snapshot schema "
                             f"{payload.get('schema')!r}")
        registry = cls()
        for name, body in payload.get("counters", {}).items():
            registry._counters[name] = Counter.from_dict(body)
        for name, body in payload.get("gauges", {}).items():
            registry._gauges[name] = Gauge.from_dict(body)
        for name, body in payload.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_dict(body)
        return registry

    def merge(self, other: "MeterRegistry") -> "MeterRegistry":
        """Fold ``other`` into this registry (in place, returns self)."""
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge(gauge)
        for name, hist in other._histograms.items():
            self.histogram(name, base=hist.base).merge(hist)
        return self


class ScopedRegistry:
    """Prefixing view over a :class:`MeterRegistry`."""

    def __init__(self, registry: MeterRegistry, prefix: str):
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str, base: float = 2.0 ** 0.25) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", base=base)

    def scoped(self, prefix: str) -> "ScopedRegistry":
        return ScopedRegistry(self._registry, f"{self._prefix}.{prefix}")


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge JSON meter snapshots (e.g. from different worker processes)
    into one.  Counters and histograms add; gauges keep the last writer's
    value with a combined min/max envelope."""
    merged = MeterRegistry()
    for snap in snapshots:
        merged.merge(MeterRegistry.from_snapshot(snap))
    return merged.snapshot()
