"""Timeline and meter export: JSONL, CSV, and session bundles.

Follows the :meth:`~repro.netsim.tracing.FlowTracer.export_jsonl`
conventions: one compact JSON object per line (``separators=(",", ":")``),
rows time-ordered, return value is the number of lines written.  CSV
export flattens the union of row keys into a fixed header so ragged
event rows (an ``epoch`` row has different fields from a ``loss`` row)
land in one rectangular file.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .timeline import TelemetrySession

#: Columns every timeline row carries, in export order; event-specific
#: fields follow alphabetically.
_LEAD_COLUMNS = ("time", "event", "source", "flow")


def export_timeline_jsonl(rows: Iterable[dict], path) -> int:
    """One compact JSON object per timeline row.  Returns lines written."""
    count = 0
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, separators=(",", ":"), sort_keys=False)
                     + "\n")
            count += 1
    return count


def export_timeline_csv(rows: Sequence[dict], path) -> int:
    """Rectangular CSV over the union of row keys.  Returns rows written."""
    extra = sorted({key for row in rows for key in row}
                   - set(_LEAD_COLUMNS))
    header = [*_LEAD_COLUMNS, *extra]
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=header, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def export_meters_json(registry, path) -> None:
    """Pretty-printed meter snapshot (one file, human-diffable)."""
    Path(path).write_text(json.dumps(registry.snapshot(), indent=2,
                                     sort_keys=True) + "\n")


def write_session(session: TelemetrySession, directory,
                  prefix: str = "telemetry",
                  csv_too: bool = False) -> List[str]:
    """Write a session's artifacts next to experiment results.

    Emits ``<prefix>_timeline.jsonl`` and ``<prefix>_summary.json``
    (meters + spans + ring-buffer accounting), plus an optional
    ``<prefix>_timeline.csv``.  Returns the written paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[str] = []

    rows = session.rows()
    timeline_path = directory / f"{prefix}_timeline.jsonl"
    export_timeline_jsonl(rows, timeline_path)
    written.append(str(timeline_path))

    if csv_too:
        csv_path = directory / f"{prefix}_timeline.csv"
        export_timeline_csv(rows, csv_path)
        written.append(str(csv_path))

    summary_path = directory / f"{prefix}_summary.json"
    summary_path.write_text(json.dumps(session.summary(), indent=2,
                                       sort_keys=True) + "\n")
    written.append(str(summary_path))
    return written
