"""Observability: meters, timelines, profilers, benchmarks, export.

The subsystem has two consumers:

* **Telemetry** (``--telemetry`` on ``repro run`` / ``repro sweep``):
  a :class:`TelemetrySession` attaches ring-buffered
  :class:`TimelineRecorder` observers to every flow the experiment
  runner builds, accumulates engine counters into a
  :class:`MeterRegistry`, and exports JSONL/CSV artifacts next to the
  results.
* **Benchmarking** (``repro bench``): the named suite in
  :mod:`repro.obs.bench` emits schema-versioned ``BENCH_<label>.json``
  files with content-hashed workloads, and ``compare`` diffs two files
  against per-benchmark tolerance bands.

Importing :mod:`repro.obs` is cheap and pulls in no simulation modules;
benchmark and profiler workloads import lazily inside their functions.
"""

from .bench import (
    BENCH_SCHEMA,
    BENCHMARKS,
    compare,
    format_compare,
    load_bench,
    regressions,
    run_bench,
    write_bench,
)
from .export import (
    export_meters_json,
    export_timeline_csv,
    export_timeline_jsonl,
    write_session,
)
from .meters import (
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MeterRegistry,
    merge_snapshots,
)
from .profiler import SPANS_SCHEMA, Spans, profile_call, profile_hotpaths
from .timeline import (
    TIMELINE_SCHEMA,
    EventSampler,
    RingBuffer,
    TelemetrySession,
    TimelineRecorder,
    current_session,
    telemetry,
)

__all__ = [
    "BENCH_SCHEMA",
    "BENCHMARKS",
    "Counter",
    "EventSampler",
    "Gauge",
    "Histogram",
    "MeterRegistry",
    "RingBuffer",
    "SNAPSHOT_SCHEMA",
    "SPANS_SCHEMA",
    "Spans",
    "TIMELINE_SCHEMA",
    "TelemetrySession",
    "TimelineRecorder",
    "compare",
    "current_session",
    "export_meters_json",
    "export_timeline_csv",
    "export_timeline_jsonl",
    "format_compare",
    "load_bench",
    "merge_snapshots",
    "profile_call",
    "profile_hotpaths",
    "regressions",
    "run_bench",
    "telemetry",
    "write_bench",
    "write_session",
]
