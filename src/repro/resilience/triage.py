"""Failure triage: a small error taxonomy and the deduplicated SoakReport.

Every soak cell ends in exactly one *kind*:

=============  ========================================================
``ok``         ran to completion, no retries, no monitor fired
``flaky``      failed at least one attempt but ultimately succeeded
``crash``      raised (or killed its worker) until retries ran out
``hang``       stopped making progress — either the executor's wall
               deadline fired or the watchdog saw heartbeats go stale
``oom``        the watchdog killed the worker for breaching its RSS
               budget
``invariant``  the run completed but a :mod:`repro.check.monitors`
               invariant monitor fired
``degraded``   the session tore itself down early (dead peer, blackout
               that never healed) and returned a partial result
=============  ========================================================

Failures deduplicate into :class:`FailureSignature` groups keyed by a
normalised traceback / invariant / watchdog-reason digest, so a crasher
that fires on forty cells is one report line with one reproduction
command, not forty.  :class:`SoakReport` renders the groups and decides
the exit code: any signature other than ``flaky`` is a real finding.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: The taxonomy, in severity order (worst first).
FAILURE_KINDS = ("crash", "hang", "oom", "invariant", "degraded", "flaky")

#: Kinds that indicate the *cell itself* could not execute and should be
#: quarantined once retries are exhausted (a monitor firing or a degraded
#: session is a finding about the system under test, not a poison task).
POISON_KINDS = ("crash", "hang", "oom")

#: Watchdog kill reasons are prefixed with their kind so the executor can
#: carry them through its generic ``error`` string.
_KIND_PREFIX = re.compile(r"^\[(crash|hang|oom)\]")

_HEX_ADDR = re.compile(r"0x[0-9a-fA-F]+")
_NUMBERS = re.compile(r"\d+(?:\.\d+)?")


def normalize_error(error: str) -> str:
    """Strip the volatile parts of an error string — addresses, elapsed
    seconds, observed RSS — so identical failures hash identically
    across runs.  Every number goes: two kills of the same leak at
    372MB and 410MB are one failure class, not two.  (The address
    placeholder is digit-free so the number pass leaves it alone.)"""
    text = _HEX_ADDR.sub("ADDR", error)
    return _NUMBERS.sub("N", text)


def signature_of(kind: str, detail: str) -> str:
    """Stable 12-hex digest for one failure class."""
    body = f"{kind}|{normalize_error(detail)}"
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]


def classify(status: str, error: Optional[str], result: Optional[dict],
             attempts: int = 1) -> str:
    """Map one executor outcome (+ its result payload) onto the taxonomy.

    ``status`` is the executor's ``TaskOutcome.status`` (plus the soak
    harness's ``quarantined``); ``result`` is the cell's JSON payload
    when it ran.
    """
    if status == "timeout":
        return "hang"
    if status == "quarantined":
        # The quarantine entry remembers its original kind; default to
        # crash if an old entry predates the field.
        return (result or {}).get("kind", "crash")
    if status in ("ok", "cached"):
        if result:
            invariant = result.get("invariant") or {}
            if invariant.get("violations"):
                return "invariant"
            if result.get("degraded"):
                return "degraded"
        if attempts > 1:
            return "flaky"
        return "ok"
    # failed: watchdog kills tag their reason with the kind.
    match = _KIND_PREFIX.match(error or "")
    if match:
        return match.group(1)
    return "crash"


def failure_detail(kind: str, error: Optional[str],
                   result: Optional[dict]) -> str:
    """The string a failure's signature is derived from."""
    if kind == "invariant" and result:
        invariant = result.get("invariant") or {}
        monitors = sorted({v.get("monitor", "?")
                           for v in invariant.get("violations", [])})
        return "invariant:" + ",".join(monitors)
    if kind == "degraded" and result:
        return "degraded:" + str(result.get("degraded_code")
                                 or result.get("degraded_reason") or "")
    return error or kind


@dataclass
class SoakRecord:
    """One soak cell's ledger line (JSON-safe)."""

    draw: int
    key: str
    status: str
    kind: str
    signature: Optional[str]
    cell: dict
    error: Optional[str] = None
    attempts: int = 1
    seconds: float = 0.0
    recovered: Optional[bool] = None
    bundle: Optional[str] = None
    repro: Optional[str] = None

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, payload: dict) -> "SoakRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class FailureSignature:
    """One deduplicated failure class across a soak run."""

    signature: str
    kind: str
    count: int = 0
    draws: List[int] = field(default_factory=list)
    detail: str = ""
    repro: Optional[str] = None
    bundle: Optional[str] = None

    def to_dict(self) -> dict:
        return {"signature": self.signature, "kind": self.kind,
                "count": self.count, "draws": self.draws[:8],
                "detail": self.detail, "repro": self.repro,
                "bundle": self.bundle}


class SoakReport:
    """Triage rollup of a soak ledger: per-kind counts, deduplicated
    failure signatures, and the run verdict."""

    def __init__(self, records: Sequence[SoakRecord]):
        self.records = list(records)
        self.kind_counts: Dict[str, int] = {}
        self.signatures: Dict[str, FailureSignature] = {}
        for record in self.records:
            self.kind_counts[record.kind] = \
                self.kind_counts.get(record.kind, 0) + 1
            if record.kind in ("ok",):
                continue
            signature = record.signature or signature_of(record.kind, "")
            group = self.signatures.get(signature)
            if group is None:
                group = FailureSignature(
                    signature=signature, kind=record.kind,
                    detail=normalize_error(
                        failure_detail(record.kind, record.error, None)
                        if record.error else record.kind),
                    repro=record.repro, bundle=record.bundle)
                self.signatures[signature] = group
            group.count += 1
            group.draws.append(record.draw)
            if group.repro is None:
                group.repro = record.repro
            if group.bundle is None:
                group.bundle = record.bundle

    @property
    def ok(self) -> bool:
        """True iff nothing worse than flakiness was observed."""
        return all(group.kind == "flaky"
                   for group in self.signatures.values())

    def cells(self) -> int:
        return len(self.records)

    def rows(self) -> List[dict]:
        """Per-signature table rows, worst kind first."""
        order = {kind: rank for rank, kind in enumerate(FAILURE_KINDS)}
        groups = sorted(self.signatures.values(),
                        key=lambda g: (order.get(g.kind, 99), -g.count))
        return [group.to_dict() for group in groups]

    def to_dict(self) -> dict:
        return {
            "cells": self.cells(),
            "kinds": dict(sorted(self.kind_counts.items())),
            "signatures": self.rows(),
            "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable summary block (the table is printed separately
        via :func:`repro.experiments.format_table`)."""
        parts = [f"soak: {self.cells()} cells"]
        for kind in ("ok", *FAILURE_KINDS):
            count = self.kind_counts.get(kind, 0)
            if count:
                parts.append(f"{kind}: {count}")
        lines = ["  ".join(parts)]
        for group in self.rows():
            lines.append(f"  [{group['kind']}] {group['signature']} "
                         f"x{group['count']}: {group['detail']}")
            if group["repro"]:
                lines.append(f"    repro: {group['repro']}")
        return "\n".join(lines)
