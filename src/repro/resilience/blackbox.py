"""Flight recorder: armed telemetry + content-addressed crash bundles.

:class:`ArmedSession` extends the obs :class:`TelemetrySession` the way
a cockpit recorder extends a dashboard: besides the bounded
:class:`~repro.obs.timeline.TimelineRecorder` ring and the
:class:`~repro.obs.meters.MeterRegistry`, every attach also wires the
conformance law monitors (:mod:`repro.check.monitors`) into a shared
:class:`~repro.check.report.InvariantReport` — so a soak cell that
*completes* but violates eq. 4/6 is still a recorded failure.

When a cell dies, times out, or trips a monitor, :func:`dump_bundle`
writes a crash bundle: the last-N timeline events as JSONL, the task
payload, seed, normalised traceback, meter snapshot and environment.
Bundles are content-addressed over the *identity* of the failure
(schema, kind, signature, task, seed) — canonical JSON, SHA-256 — so
re-running the same seeded failure lands on the same bundle directory
instead of piling up duplicates, and CI can assert the hash is
bit-identical across runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import tempfile
import traceback as traceback_module
from pathlib import Path
from typing import Any, List, Optional, Sequence

from ..campaign.spec import _canonical_json
from ..check.monitors import (
    MonotoneClockMonitor,
    TcpLawMonitor,
    VerusLawMonitor,
)
from ..check.report import InvariantReport
from ..obs.export import export_timeline_jsonl
from ..obs.timeline import TelemetrySession

BUNDLE_SCHEMA = "repro.crash-bundle/1"

#: Timeline events retained in a bundle (the tail of the ring).
BUNDLE_EVENTS = 512


class ArmedSession(TelemetrySession):
    """A telemetry session with the invariant monitors armed.

    Drop-in for :func:`repro.obs.timeline.telemetry`: the experiment
    runners only see the ``attach``/``finalize`` contract, so arming is
    invisible to them.  Each attached sender additionally gets the law
    monitor matching its protocol family (the
    :func:`repro.check.scenarios.run_audited` pairing), and the
    simulator gets a monotone-clock monitor.
    """

    def __init__(self, timeline_capacity: int = BUNDLE_EVENTS,
                 report: Optional[InvariantReport] = None):
        super().__init__(timeline_capacity=timeline_capacity)
        self.report = report if report is not None else InvariantReport()

    def attach(self, sim, senders: Sequence[Any],
               specs: Optional[Sequence[Any]] = None,
               receivers: Sequence[Any] = ()) -> None:
        super().attach(sim, senders, specs, receivers)
        from ..core.sender import VerusSender
        from ..tcp.base import TcpSender
        for sender in senders:
            if isinstance(sender, VerusSender):
                sender.observers.append(VerusLawMonitor(self.report))
            elif isinstance(sender, TcpSender):
                sender.observers.append(TcpLawMonitor(self.report))
        sim.add_monitor(MonotoneClockMonitor(self.report))

    def tail_rows(self, limit: int = BUNDLE_EVENTS) -> List[dict]:
        """The most recent ``limit`` timeline rows, time-ordered."""
        rows = self.rows()
        return rows[-limit:] if limit else rows


def normalize_traceback(exc: BaseException) -> List[str]:
    """Traceback frames as stable ``basename:lineno:funcname`` strings.

    Absolute paths differ between machines and checkouts; basenames and
    line numbers identify the failure just as well and keep bundle
    signatures portable.
    """
    frames = traceback_module.extract_tb(exc.__traceback__)
    out = [f"{Path(f.filename).name}:{f.lineno}:{f.name}" for f in frames]
    out.append(f"{type(exc).__name__}: {exc}")
    return out


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "pid": os.getpid(),
    }


def bundle_hash(kind: str, signature: str, task: Any,
                seed: Optional[int]) -> str:
    """The bundle's content address: the *identity* of the failure only,
    so volatile payload (timestamps, pids, local paths) never shifts it."""
    body = _canonical_json({
        "schema": BUNDLE_SCHEMA,
        "kind": kind,
        "signature": signature,
        "task": task,
        "seed": seed,
    })
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def _write_atomic(path: Path, body: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".bundle-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(body)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def dump_bundle(directory: os.PathLike, *, kind: str, signature: str,
                task: Any, seed: Optional[int] = None,
                error: Optional[str] = None,
                frames: Optional[List[str]] = None,
                invariant: Optional[dict] = None,
                session: Optional[TelemetrySession] = None,
                timeline_rows: Optional[Sequence[dict]] = None,
                repro: Optional[str] = None) -> str:
    """Write one crash bundle; return its directory path.

    Idempotent per failure identity: if the content-addressed directory
    already exists (same kind/signature/task/seed seen before, possibly
    in a previous run) the existing bundle is kept untouched.
    """
    digest = bundle_hash(kind, signature, task, seed)
    root = Path(directory)
    bundle_dir = root / digest[:12]
    if (bundle_dir / "bundle.json").exists():
        return str(bundle_dir)
    bundle_dir.mkdir(parents=True, exist_ok=True)

    rows: Sequence[dict] = ()
    meters = None
    if timeline_rows is not None:
        rows = list(timeline_rows)[-BUNDLE_EVENTS:]
    elif session is not None:
        rows = (session.tail_rows() if isinstance(session, ArmedSession)
                else session.rows()[-BUNDLE_EVENTS:])
    if session is not None:
        meters = session.registry.snapshot()

    export_timeline_jsonl(rows, bundle_dir / "timeline.jsonl")
    body = {
        "schema": BUNDLE_SCHEMA,
        "hash": digest,
        "kind": kind,
        "signature": signature,
        "task": task,
        "seed": seed,
        "error": error,
        "traceback": frames or [],
        "invariant": invariant,
        "meters": meters,
        "timeline_events": len(rows),
        "repro": repro,
        "env": _environment(),
    }
    _write_atomic(bundle_dir / "bundle.json",
                  json.dumps(body, indent=1, sort_keys=True) + "\n")
    return str(bundle_dir)


def load_bundle(bundle_dir: os.PathLike) -> dict:
    with (Path(bundle_dir) / "bundle.json").open(
            "r", encoding="utf-8") as fh:
        return json.load(fh)
