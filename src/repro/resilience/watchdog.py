"""Worker watchdogs: heartbeat files, a kill-and-requeue supervisor, and
the persistent poison-task quarantine.

The campaign executor can already survive workers that *die*; this
module covers workers that are merely *stuck*.  Each supervised task
writes a heartbeat file — ``{pid, token, time, rss}`` refreshed by a
daemon thread — and the :class:`WorkerWatchdog` plugs into the
executor's supervisor seam (:func:`repro.campaign.executor.run_tasks`'s
``supervisor`` argument): every poll it reads the heartbeat directory,
declares a task *hung* when its beats go stale and *oom* when its RSS
breaches the budget, and SIGKILLs the offending worker.  The kill
breaks the process pool, which the executor already knows how to
rebuild — but because the watchdog can *attribute* the kill to one
task, only the offender consumes a retry (with capped exponential
backoff); its innocent in-flight siblings are requeued for free.

:class:`Quarantine` is the durable poison list: cells that keep failing
deterministically land in ``quarantine.json`` with their failure
signature and a ready-to-paste reproduction command, and later soak
runs skip them instead of burning retries on a known crasher.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

HEARTBEAT_SCHEMA = "repro.heartbeat/1"

#: Worker-side refresh period.  The supervisor's ``stall_after`` should
#: be several multiples of this so scheduler jitter never looks hung.
HEARTBEAT_INTERVAL = 0.2

#: Ceiling on the offender's requeue backoff (seconds).
KILL_BACKOFF_CAP = 2.0


def _rss_bytes() -> Optional[int]:
    """Current RSS, best effort: /proc on Linux, ru_maxrss elsewhere."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; either way this is only the
        # fallback path, so take the conservative (larger) reading.
        return int(peak) * 1024 if peak < 1 << 32 else int(peak)
    except Exception:
        return None


class Heartbeat:
    """Worker-side liveness beacon: one JSON file, atomically refreshed.

    The first beat is written synchronously before the task starts (so
    the supervisor learns the worker's pid immediately); a daemon thread
    keeps it fresh.  ``stop()`` silences the beacon — which is exactly
    what a genuinely hung worker looks like, so the injected-hang soak
    task calls it on purpose.
    """

    def __init__(self, directory: os.PathLike, token: str,
                 interval: float = HEARTBEAT_INTERVAL):
        self.path = Path(directory) / f"{token}.json"
        self.token = token
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.beats = 0

    def beat(self, **extra: Any) -> None:
        payload = {
            "schema": HEARTBEAT_SCHEMA,
            "pid": os.getpid(),
            "token": self.token,
            "time": time.time(),
            "rss": _rss_bytes(),
        }
        payload.update(extra)
        body = json.dumps(payload, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   prefix=f".{self.token}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.beats += 1

    def start(self) -> "Heartbeat":
        self.beat()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name=f"heartbeat-{self.token}")
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.beat()
            except OSError:
                # A vanished directory must never crash the task itself.
                return

    def stop(self, unlink: bool = False) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None
        if unlink:
            try:
                self.path.unlink()
            except OSError:
                pass

    @classmethod
    def from_directive(cls, directive: dict) -> "Heartbeat":
        """Build from the ``_heartbeat`` payload directive the
        supervisor's :meth:`WorkerWatchdog.wrap` injected."""
        return cls(directive["dir"], directive["token"],
                   interval=directive.get("interval", HEARTBEAT_INTERVAL))


class WorkerWatchdog:
    """Supervisor for the campaign executor's process pool.

    Implements the executor's supervisor seam:

    * :meth:`wrap` — called at submission; injects the ``_heartbeat``
      directive and registers the (token → task) mapping;
    * :meth:`poll` — called from the executor's poll loop; reads the
      heartbeat directory and kills hung / over-budget workers;
    * :meth:`take_kills` — consumed by the executor when the pool breaks,
      to attribute the break to the task the watchdog shot;
    * :meth:`release` — called when a task finishes normally.
    """

    def __init__(self, directory: os.PathLike, *,
                 stall_after: float = 2.0,
                 rss_limit_bytes: Optional[int] = None,
                 poll_interval: float = 0.25,
                 interval: float = HEARTBEAT_INTERVAL,
                 kill_fn=None):
        if stall_after <= 0:
            raise ValueError("stall_after must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stall_after = stall_after
        self.rss_limit_bytes = rss_limit_bytes
        self.poll_interval = poll_interval
        self.interval = min(interval, stall_after / 4.0)
        self._kill = kill_fn or self._sigkill
        self._active: Dict[str, dict] = {}     # token -> {index, submitted}
        self._pending_kills: Dict[int, str] = {}
        self._last_poll = 0.0
        self.kills: List[dict] = []            # audit trail of every shot

    # -- executor seam ---------------------------------------------------
    def wrap(self, index: int, attempts: int, payload: Any) -> Any:
        token = f"t{index}a{attempts}"
        self._active[token] = {"index": index, "submitted": time.time()}
        if isinstance(payload, dict):
            payload = dict(payload)
            payload["_heartbeat"] = {"dir": str(self.directory),
                                     "token": token,
                                     "interval": self.interval}
        return payload

    def release(self, index: int) -> None:
        for token in [t for t, info in self._active.items()
                      if info["index"] == index]:
            del self._active[token]
            try:
                (self.directory / f"{token}.json").unlink()
            except OSError:
                pass

    def poll(self) -> None:
        now = time.time()
        if now - self._last_poll < self.poll_interval:
            return
        self._last_poll = now
        for token, info in list(self._active.items()):
            beat = self._read(token)
            if beat is None:
                # No first beat yet: the task is queued behind a busy
                # worker (or doesn't heartbeat at all) — nothing to kill.
                continue
            age = now - float(beat.get("time", 0.0))
            rss = beat.get("rss")
            if age > self.stall_after:
                self._shoot(token, info, beat, "hang",
                            f"[hang] no heartbeat for {age:.1f}s "
                            f"(stall threshold {self.stall_after:g}s)")
            elif (self.rss_limit_bytes is not None and rss is not None
                    and rss > self.rss_limit_bytes):
                self._shoot(token, info, beat, "oom",
                            f"[oom] rss {rss / 1e6:.0f}MB over the "
                            f"{self.rss_limit_bytes / 1e6:.0f}MB budget")

    def take_kills(self) -> Dict[int, str]:
        """Kill reasons by task index, consumed once per pool break."""
        kills, self._pending_kills = self._pending_kills, {}
        return kills

    # -- internals -------------------------------------------------------
    def _read(self, token: str) -> Optional[dict]:
        try:
            with (self.directory / f"{token}.json").open(
                    "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    @staticmethod
    def _sigkill(pid: int) -> None:
        os.kill(pid, signal.SIGKILL)

    def _shoot(self, token: str, info: dict, beat: dict, kind: str,
               reason: str) -> None:
        pid = beat.get("pid")
        if pid:
            try:
                self._kill(int(pid))
            except (ProcessLookupError, PermissionError):
                pass
        self._pending_kills[info["index"]] = reason
        self.kills.append({"index": info["index"], "token": token,
                           "pid": pid, "kind": kind, "reason": reason,
                           "rss": beat.get("rss")})
        del self._active[token]
        try:
            (self.directory / f"{token}.json").unlink()
        except OSError:
            pass


class Quarantine:
    """Durable poison-task list, persisted as ``quarantine.json``.

    Entries are keyed by the cell's content address, so the same grid
    cell is recognised across soak runs regardless of when it is drawn.
    """

    SCHEMA = "repro.quarantine/1"

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self.entries: Dict[str, dict] = {}
        self.load()

    def load(self) -> None:
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.entries = {}
            return
        if doc.get("schema") != self.SCHEMA:
            self.entries = {}
            return
        self.entries = dict(doc.get("entries", {}))

    def save(self) -> None:
        doc = {"schema": self.SCHEMA,
               "entries": dict(sorted(self.entries.items()))}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(doc, indent=1, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   prefix=".quarantine-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, key: str) -> Optional[dict]:
        return self.entries.get(key)

    def add(self, key: str, *, kind: str, signature: str, repro: str,
            cell: dict, error: Optional[str] = None) -> dict:
        """Record (or re-confirm) one poison cell and persist."""
        entry = self.entries.get(key)
        if entry is None:
            entry = {"key": key, "kind": kind, "signature": signature,
                     "repro": repro, "cell": cell, "error": error,
                     "first_seen": time.time(), "hits": 0}
            self.entries[key] = entry
        entry["hits"] += 1
        self.save()
        return entry

    def clear(self) -> None:
        self.entries = {}
        try:
            self.path.unlink()
        except OSError:
            pass
