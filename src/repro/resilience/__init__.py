"""Resilience subsystem: soak harness, watchdogs, flight recorder, triage.

The endurance layer over the campaign engine — see ARCHITECTURE.md §12.
:mod:`.soak` draws SeedSequence-reproducible scenario cells and runs
them under :mod:`.watchdog` supervision; :mod:`.blackbox` records crash
bundles; :mod:`.triage` classifies and deduplicates what went wrong.
"""

from .blackbox import (
    BUNDLE_SCHEMA,
    ArmedSession,
    bundle_hash,
    dump_bundle,
    load_bundle,
    normalize_traceback,
)
from .soak import (
    SoakAxes,
    SoakResult,
    SoakSpec,
    build_axes,
    cell_key,
    draw_cell,
    draw_digest,
    find_cell,
    load_ledger,
    replay_cell,
    run_soak,
    run_soak_cell,
)
from .triage import (
    FAILURE_KINDS,
    POISON_KINDS,
    FailureSignature,
    SoakRecord,
    SoakReport,
    classify,
    failure_detail,
    normalize_error,
    signature_of,
)
from .watchdog import Heartbeat, Quarantine, WorkerWatchdog

__all__ = [
    "ArmedSession", "BUNDLE_SCHEMA", "FAILURE_KINDS", "FailureSignature",
    "Heartbeat", "POISON_KINDS", "Quarantine", "SoakAxes", "SoakRecord",
    "SoakReport", "SoakResult", "SoakSpec", "WorkerWatchdog",
    "build_axes", "bundle_hash", "cell_key", "classify", "draw_cell",
    "draw_digest", "dump_bundle", "failure_detail", "find_cell",
    "load_bundle", "load_ledger", "normalize_error", "normalize_traceback",
    "replay_cell", "run_soak", "run_soak_cell", "signature_of",
]
