"""The soak harness: budgeted, reproducible endurance runs.

A soak run keeps drawing random scenario cells — protocol × fault
schedule × channel (synth scenario or corpus trace) — and pushing them
through the campaign executor under a :class:`WorkerWatchdog`, until a
wall-clock or cell budget elapses.  *Random* here never means
*unrepeatable*: draw ``i`` of base seed ``s`` is produced by dedicated
``SeedSequence(s, spawn_key=...)`` streams keyed on ``i`` alone, so two
runs with the same seed draw bit-identical cells regardless of batching,
job count or how far the budget let each run get.  ``repro soak`` prints
a ``scenario draw <sha256>`` digest over the drawn cells so CI can
assert exactly that.

Every outcome is appended to a JSONL ledger in the state directory and
classified by :mod:`.triage`; cells that die for executable reasons
(crash / hang / oom) after exhausting retries land in the
:class:`~repro.resilience.watchdog.Quarantine` with a ready-to-run
reproduction command, and crash bundles land in ``bundles/`` via
:mod:`.blackbox`.  A re-run over the same state dir redraws the same
sequence: previously-ok cells come back cached from the result store,
poisoned cells are skipped without burning retries, and a larger budget
extends the window with new work; ``--fresh`` clears the ledger and the
poison list.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..campaign.executor import run_tasks
from ..campaign.spec import _canonical_json
from ..campaign.store import ResultStore
from ..cellular import SCENARIO_NAMES
from ..experiments.runner import PROTOCOL_NAMES
from ..faults.chaos import ChaosTask, run_chaos_task
from ..faults.spec import FAULT_PRESETS
from .blackbox import ArmedSession, dump_bundle, normalize_traceback
from .triage import (
    POISON_KINDS,
    SoakRecord,
    SoakReport,
    classify,
    failure_detail,
    signature_of,
)

SOAK_SCHEMA = "repro.soak/1"
LEDGER_NAME = "ledger.jsonl"
QUARANTINE_NAME = "quarantine.json"

#: Fault presets a soak draws from: every named schedule.  "none" stays
#: in so a fraction of cells exercise the undisturbed path too.
SOAK_FAULTS = tuple(FAULT_PRESETS)

_INJECT_MODES = ("crash", "hang", "oom")


def _sized_injection(inject: Optional[dict],
                     rss_limit_mb: Optional[int]) -> Optional[dict]:
    """Resolve an injection directive against the run's budgets: an
    ``oom`` injection without an explicit size allocates just past the
    active RSS budget, so it trips the watchdog rather than idling under
    the ceiling.  Deterministic in the spec, so same-spec runs salt
    their cell keys identically."""
    if not inject:
        return inject
    if inject.get("mode") == "oom" and "mb" not in inject:
        inject = dict(inject)
        inject["mb"] = (rss_limit_mb or 128) + 128
    return inject

#: Worker-raised crash markers the parent parses back out of the
#: executor's ``error`` string (see :func:`run_soak_cell`).
_SIG_RE = re.compile(r"sig=([0-9a-f]{12})")
_BUNDLE_RE = re.compile(r"bundle=([^\s']+)")


@dataclass
class SoakSpec:
    """Everything one soak run needs, JSON-safe for the ledger header."""

    seed: int = 0
    budget_cells: Optional[int] = 50
    budget_seconds: Optional[float] = None
    protocols: Sequence[str] = ("verus", "sprout", "cubic", "newreno")
    faults: Sequence[str] = SOAK_FAULTS
    scenarios: Sequence[str] = tuple(SCENARIO_NAMES)
    corpus: Optional[str] = None        # corpus dir: traces replace scenarios
    duration: float = 4.0
    flows: int = 1
    rtt: float = 0.01
    deadline: float = 1.5
    jobs: int = 2
    timeout: Optional[float] = 60.0
    retries: int = 1
    stall_after: float = 2.0
    rss_limit_mb: Optional[int] = 1024
    state_dir: str = ".repro-soak"
    #: draw index -> injection directive (test/acceptance hook), e.g.
    #: ``{0: {"mode": "hang"}, 2: {"mode": "crash"}}``.
    inject: Dict[int, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for protocol in self.protocols:
            if protocol not in PROTOCOL_NAMES:
                raise ValueError(f"unknown protocol {protocol!r}")
        for fault in self.faults:
            if fault not in FAULT_PRESETS:
                raise ValueError(f"unknown fault preset {fault!r}")
        if self.budget_cells is None and self.budget_seconds is None:
            raise ValueError("need a cell or wall-clock budget")
        for draw, directive in self.inject.items():
            if directive.get("mode") not in _INJECT_MODES:
                raise ValueError(f"injection at draw {draw}: mode must be "
                                 f"one of {_INJECT_MODES}")


# ----------------------------------------------------------------------
# Drawing cells
# ----------------------------------------------------------------------
@dataclass
class SoakAxes:
    """The resolved grid axes one run draws from."""

    protocols: Tuple[str, ...]
    faults: Tuple[str, ...]
    #: (label, trace_file, trace_sha256) triples; synth scenarios carry
    #: (name, None, None).
    channels: Tuple[Tuple[str, Optional[str], Optional[str]], ...]


def build_axes(spec: SoakSpec) -> SoakAxes:
    if spec.corpus is not None:
        from ..traces.corpus import load_corpus
        corpus = load_corpus(spec.corpus)
        corpus.materialize()
        channels = tuple(
            (name, str((corpus.root / corpus.entry(name).file).resolve()),
             corpus.entry(name).sha256)
            for name in corpus.names())
        if not channels:
            raise ValueError(f"corpus {spec.corpus} has no traces")
    else:
        channels = tuple((name, None, None) for name in spec.scenarios)
    return SoakAxes(protocols=tuple(spec.protocols),
                    faults=tuple(spec.faults), channels=channels)


def draw_cell(spec: SoakSpec, axes: SoakAxes, draw: int) -> ChaosTask:
    """Cell for draw index ``draw`` — a pure function of (seed, axes,
    draw), independent of batching and of every other draw."""
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=spec.seed, spawn_key=(0, draw)))
    protocol = axes.protocols[int(rng.integers(len(axes.protocols)))]
    fault = axes.faults[int(rng.integers(len(axes.faults)))]
    label, trace_file, trace_sha = \
        axes.channels[int(rng.integers(len(axes.channels)))]
    seed = int(np.random.SeedSequence(
        entropy=spec.seed, spawn_key=(1, draw)).generate_state(1)[0])
    return ChaosTask(
        protocol=protocol, fault=fault, duration=spec.duration,
        seed=seed, seed_index=draw, backend="sim", scenario=label,
        flows=spec.flows, rtt=spec.rtt,
        warmup=min(1.0, spec.duration / 10.0), deadline=spec.deadline,
        trace_file=trace_file, trace_sha256=trace_sha)


def cell_key(cell: ChaosTask, inject: Optional[dict]) -> str:
    """Quarantine/cache key: the cell's content address, salted with the
    injection directive when one is active (an injected cell is a
    different task from its clean twin and must never share its cache
    entry or poison-list slot)."""
    if not inject:
        return cell.key()
    body = _canonical_json({"soak_inject": inject, "cell": cell.key()})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def draw_digest(cells: Sequence[ChaosTask]) -> str:
    """SHA-256 over the canonical JSON of all drawn cells — the value CI
    asserts is bit-identical across same-seed runs."""
    body = _canonical_json({"schema": SOAK_SCHEMA,
                            "cells": [c.to_dict() for c in cells]})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The worker side
# ----------------------------------------------------------------------
def _run_injection(directive: dict, heartbeat) -> dict:
    """Deterministic misbehaviour for acceptance tests and CI smoke."""
    mode = directive["mode"]
    if mode == "crash":
        raise RuntimeError("injected deterministic crash "
                           f"({directive.get('tag', 'soak')})")
    seconds = float(directive.get("seconds", 120.0))
    if mode == "hang":
        # A hung worker stops making progress *and* stops heartbeating.
        if heartbeat is not None:
            heartbeat.stop()
        time.sleep(seconds)
        return {"injected": "hang", "survived": True}
    # oom: allocate real memory and keep heartbeating so the supervisor
    # sees the RSS *climb* rather than a stall.  Chunked with sleeps —
    # one giant memset would hold the GIL long enough to starve the
    # heartbeat thread and read as a hang instead.
    target = int(directive.get("mb", 96))
    ballast: List[bytearray] = []
    allocated = 0
    deadline = time.monotonic() + seconds
    while allocated < target and time.monotonic() < deadline:
        chunk = min(16, target - allocated)
        ballast.append(bytearray(chunk << 20))
        allocated += chunk
        time.sleep(0.02)
    while time.monotonic() < deadline:
        time.sleep(0.05)
    return {"injected": "oom", "survived": True, "mb": allocated}


def run_soak_cell(payload: dict) -> dict:
    """Execute one soak cell under the armed flight recorder.

    Module-level so the pool can pickle it.  Underscore keys are runtime
    directives: ``_heartbeat`` (from the watchdog's ``wrap``), ``_soak``
    (bundle dir, repro line, optional injection).  On a catchable crash
    the worker dumps its own bundle — it still holds the timeline — and
    re-raises with the signature and bundle path embedded in the message
    for the parent to parse back out.
    """
    from .watchdog import Heartbeat

    heartbeat = None
    directive = payload.get("_heartbeat")
    if directive:
        heartbeat = Heartbeat.from_directive(directive).start()
    soak = payload.get("_soak") or {}
    clean = {k: v for k, v in payload.items() if not k.startswith("_")}
    try:
        inject = soak.get("inject")
        if inject:
            return _run_injection(inject, heartbeat)
        session = ArmedSession()
        from ..obs.timeline import telemetry
        try:
            with telemetry(session):
                result = run_chaos_task(clean)
        except Exception as exc:
            bundles = soak.get("bundles")
            if bundles:
                frames = normalize_traceback(exc)
                signature = signature_of("crash", "\n".join(frames))
                bundle = dump_bundle(
                    bundles, kind="crash", signature=signature,
                    task=clean, seed=clean.get("seed"), error=repr(exc),
                    frames=frames, session=session,
                    repro=soak.get("repro"))
                raise RuntimeError(
                    f"[crash] sig={signature} bundle={bundle} "
                    f"{type(exc).__name__}: {exc}") from exc
            raise
        result["invariant"] = session.report.to_dict()
        bundles = soak.get("bundles")
        if bundles and not session.report.ok:
            monitors = ",".join(session.report.monitors_violated())
            signature = signature_of("invariant", f"invariant:{monitors}")
            result["signature"] = signature
            result["bundle"] = dump_bundle(
                bundles, kind="invariant", signature=signature,
                task=clean, seed=clean.get("seed"),
                invariant=result["invariant"], session=session,
                repro=soak.get("repro"))
        elif bundles and result.get("degraded"):
            code = (result.get("degraded_code")
                    or result.get("degraded_reason") or "")
            signature = signature_of("degraded", f"degraded:{code}")
            result["signature"] = signature
            result["bundle"] = dump_bundle(
                bundles, kind="degraded", signature=signature,
                task=clean, seed=clean.get("seed"),
                error=result.get("degraded_reason"), session=session,
                repro=soak.get("repro"))
        return result
    finally:
        if heartbeat is not None:
            heartbeat.stop()


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
@dataclass
class SoakResult:
    """One run's worth of records plus the rollup and draw digest."""

    records: List[SoakRecord]
    report: SoakReport
    digest: str
    draws: int
    skipped: int
    stats: dict


def _repro_line(spec: SoakSpec, key: str) -> str:
    return (f"repro soak --state-dir {spec.state_dir} "
            f"--seed {spec.seed} --replay {key[:12]}")


def _ledger_path(state_dir) -> Path:
    return Path(state_dir) / LEDGER_NAME


def load_ledger(state_dir) -> List[SoakRecord]:
    """The ledger, deduplicated to the latest record per draw (a re-run
    over the same state dir appends fresh records for the same draws —
    cached, quarantined, or re-executed — and the latest verdict wins)."""
    latest: Dict[int, SoakRecord] = {}
    try:
        with _ledger_path(state_dir).open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    record = SoakRecord.from_dict(json.loads(line))
                    latest[record.draw] = record
    except OSError:
        pass
    return [latest[d] for d in sorted(latest)]


def _append_ledger(state_dir, records: Sequence[SoakRecord]) -> None:
    path = _ledger_path(state_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record.to_dict(), sort_keys=True,
                                separators=(",", ":")) + "\n")


def _parse_worker_markers(error: Optional[str]
                          ) -> Tuple[Optional[str], Optional[str]]:
    if not error:
        return None, None
    sig = _SIG_RE.search(error)
    bundle = _BUNDLE_RE.search(error)
    return (sig.group(1) if sig else None,
            bundle.group(1) if bundle else None)


def _record_outcome(spec: SoakSpec, draw: int, cell: ChaosTask, key: str,
                    inject: Optional[dict], outcome,
                    bundles_dir: Path) -> SoakRecord:
    """Classify one executor outcome; dump a parent-side bundle when the
    worker could not (killed, timed out, died uncleanly)."""
    result = outcome.result if outcome.ok else None
    kind = classify(outcome.status, outcome.error, result,
                    attempts=outcome.attempts)
    repro = _repro_line(spec, key)
    if kind in ("ok",):
        return SoakRecord(
            draw=draw, key=key, status=outcome.status, kind="ok",
            signature=None, cell={"task": cell.to_dict(), "inject": inject},
            attempts=outcome.attempts, seconds=outcome.seconds,
            recovered=bool(result and result.get("recovered")))
    signature, bundle = _parse_worker_markers(outcome.error)
    if signature is None:
        if result is not None and result.get("signature"):
            signature = result["signature"]
            bundle = result.get("bundle")
        else:
            signature = signature_of(
                kind, failure_detail(kind, outcome.error, result))
    if bundle is None and kind in POISON_KINDS:
        # The worker is gone (watchdog kill, timeout, hard death): the
        # parent writes the bundle from what it still knows.
        bundle = dump_bundle(
            bundles_dir, kind=kind, signature=signature,
            task=cell.to_dict(), seed=cell.seed, error=outcome.error,
            repro=repro)
    return SoakRecord(
        draw=draw, key=key, status=outcome.status, kind=kind,
        signature=signature, cell={"task": cell.to_dict(), "inject": inject},
        error=outcome.error, attempts=outcome.attempts,
        seconds=outcome.seconds,
        recovered=bool(result and result.get("recovered")),
        bundle=bundle, repro=repro)


def run_soak(spec: SoakSpec, *, fresh: bool = False,
             progress=None, log=None) -> SoakResult:
    """Run one budgeted soak; returns this run's records and rollup.

    ``progress(outcome, done, total)`` is forwarded to the executor per
    batch; ``log(str)`` receives one line per batch and the final draw
    digest line.
    """
    from .watchdog import Quarantine, WorkerWatchdog

    state = Path(spec.state_dir)
    state.mkdir(parents=True, exist_ok=True)
    quarantine = Quarantine(state / QUARANTINE_NAME)
    if fresh:
        quarantine.clear()
        try:
            _ledger_path(state).unlink()
        except OSError:
            pass
    bundles_dir = state / "bundles"
    store = ResultStore(str(state / "cache"))

    # Every run draws the same sequence from draw 0: the draw is a pure
    # function of (seed, draw index), so a re-run over the same state
    # dir redraws identical cells — previously-ok ones come back cached
    # from the result store, poisoned ones are skipped by the
    # quarantine, and only genuinely new work executes.
    next_draw = 0
    axes = build_axes(spec)
    started = time.monotonic()
    batch_size = max(4, spec.jobs * 4)
    all_cells: List[ChaosTask] = []
    records: List[SoakRecord] = []
    skipped = 0
    agg: Dict[str, int] = {"executed": 0, "cached": 0, "failed": 0,
                           "timeouts": 0, "retries": 0, "pool_restarts": 0}
    draws_done = 0

    def over_budget() -> bool:
        if spec.budget_cells is not None and draws_done >= spec.budget_cells:
            return True
        if spec.budget_seconds is not None and \
                time.monotonic() - started >= spec.budget_seconds:
            return True
        return False

    while not over_budget():
        count = batch_size
        if spec.budget_cells is not None:
            count = min(count, spec.budget_cells - draws_done)
        draws = list(range(next_draw, next_draw + count))
        next_draw += count
        draws_done += count
        cells = [draw_cell(spec, axes, d) for d in draws]
        all_cells.extend(cells)
        injections = [_sized_injection(spec.inject.get(d), spec.rss_limit_mb)
                      for d in draws]
        keys = [cell_key(c, inj) for c, inj in zip(cells, injections)]

        batch_records: Dict[int, SoakRecord] = {}
        run_draws, run_cells, run_keys, run_payloads = [], [], [], []
        run_injs: List[Optional[dict]] = []
        for d, cell, inj, key in zip(draws, cells, injections, keys):
            entry = quarantine.get(key)
            if entry is not None:
                # Known poison: skip without submitting (and without
                # burning retries); count the sighting.
                quarantine.add(key, kind=entry["kind"],
                               signature=entry["signature"],
                               repro=entry["repro"], cell=entry["cell"])
                skipped += 1
                batch_records[d] = SoakRecord(
                    draw=d, key=key, status="quarantined",
                    kind=entry["kind"], signature=entry["signature"],
                    cell={"task": cell.to_dict(), "inject": inj},
                    error=entry.get("error"), attempts=0,
                    repro=entry["repro"], )
                continue
            payload = cell.to_dict()
            payload["_soak"] = {"bundles": str(bundles_dir),
                                "repro": _repro_line(spec, key)}
            if inj:
                payload["_soak"]["inject"] = inj
            run_draws.append(d)
            run_cells.append(cell)
            run_keys.append(key)
            run_payloads.append(payload)
            run_injs.append(inj)

        if run_payloads:
            watchdog = WorkerWatchdog(
                state / "hb", stall_after=spec.stall_after,
                rss_limit_bytes=(None if spec.rss_limit_mb is None
                                 else spec.rss_limit_mb << 20))
            run = run_tasks(run_payloads, run_soak_cell, jobs=spec.jobs,
                            timeout=spec.timeout, retries=spec.retries,
                            store=store, keys=run_keys, resume=True,
                            progress=progress, supervisor=watchdog)
            for stat in agg:
                agg[stat] += getattr(run.stats, stat)
            for d, cell, key, inj, outcome in zip(run_draws, run_cells,
                                                  run_keys, run_injs,
                                                  run.outcomes):
                record = _record_outcome(spec, d, cell, key, inj,
                                         outcome, bundles_dir)
                batch_records[d] = record
                if record.kind in POISON_KINDS and \
                        record.status in ("failed", "timeout"):
                    quarantine.add(key, kind=record.kind,
                                   signature=record.signature or "",
                                   repro=record.repro or "",
                                   cell={"task": cell.to_dict(),
                                         "inject": inj},
                                   error=record.error)

        ordered = [batch_records[d] for d in draws]
        records.extend(ordered)
        _append_ledger(state, ordered)
        if log is not None:
            report_so_far = SoakReport(records)
            log(f"soak: {draws_done} cells drawn, "
                f"{len(report_so_far.signatures)} signatures, "
                f"{skipped} quarantined-skips")

    digest = draw_digest(all_cells)
    if log is not None:
        log(f"scenario draw {digest}")
    return SoakResult(records=records, report=SoakReport(records),
                      digest=digest, draws=draws_done, skipped=skipped,
                      stats=agg)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def find_cell(state_dir, key_prefix: str) -> Optional[dict]:
    """Look up one recorded cell by key prefix, poison list first."""
    from .watchdog import Quarantine

    quarantine = Quarantine(Path(state_dir) / QUARANTINE_NAME)
    for key, entry in quarantine.entries.items():
        if key.startswith(key_prefix):
            return {"key": key, "cell": entry["cell"]}
    for record in load_ledger(state_dir):
        if record.key.startswith(key_prefix):
            return {"key": record.key, "cell": record.cell}
    return None


def replay_cell(spec: SoakSpec, key_prefix: str,
                progress=None) -> SoakRecord:
    """Re-run one recorded cell under full supervision.

    Runs through the pooled executor with the watchdog armed (jobs=1
    would run serial and could not preempt a replayed hang), bypassing
    the result cache so the cell actually executes.
    """
    from .watchdog import WorkerWatchdog

    found = find_cell(spec.state_dir, key_prefix)
    if found is None:
        raise KeyError(f"no soaked cell with key prefix {key_prefix!r} "
                       f"in {spec.state_dir}")
    cell = ChaosTask.from_dict(found["cell"]["task"])
    inject = found["cell"].get("inject")
    state = Path(spec.state_dir)
    payload = cell.to_dict()
    payload["_soak"] = {"bundles": str(state / "bundles"),
                        "repro": _repro_line(spec, found["key"])}
    if inject:
        payload["_soak"]["inject"] = inject
    watchdog = WorkerWatchdog(
        state / "hb", stall_after=spec.stall_after,
        rss_limit_bytes=(None if spec.rss_limit_mb is None
                         else spec.rss_limit_mb << 20))
    run = run_tasks([payload], run_soak_cell, jobs=2,
                    timeout=spec.timeout, retries=spec.retries,
                    progress=progress, supervisor=watchdog)
    return _record_outcome(spec, -1, cell, found["key"], inject,
                           run.outcomes[0], state / "bundles")
