"""Conformance subsystem: invariant monitors, golden traces, differential
harness, and mutation smoke.

Entry points:

* :func:`run_conformance` — the full ``repro check`` pipeline;
* :func:`run_audited` — one protocol's scenario with all monitors attached;
* :func:`run_mutation_smoke` — seeded defects vs the oracle net;
* :func:`run_differential` — one sim ↔ live comparison.
"""

from .differential import DifferentialResult, run_differential
from .golden import (
    compare_golden,
    default_golden_dir,
    golden_path,
    load_golden,
    render_golden,
    write_golden,
)
from .monitors import (
    MonotoneClockMonitor,
    QueueAccountingMonitor,
    TcpLawMonitor,
    VerusLawMonitor,
    audit_conservation,
)
from .mutation import MUTANTS, Mutant, MutantResult, run_mutation_smoke
from .report import InvariantReport, Violation
from .runner import (
    CheckRow,
    ConformanceResult,
    run_check_task,
    run_conformance,
)
from .scenarios import (
    CHECK_PROTOCOLS,
    AuditedRun,
    CheckScenario,
    build_scenario,
    run_audited,
)

__all__ = [
    "AuditedRun",
    "CHECK_PROTOCOLS",
    "CheckRow",
    "CheckScenario",
    "ConformanceResult",
    "DifferentialResult",
    "InvariantReport",
    "MUTANTS",
    "MonotoneClockMonitor",
    "Mutant",
    "MutantResult",
    "QueueAccountingMonitor",
    "TcpLawMonitor",
    "VerusLawMonitor",
    "Violation",
    "audit_conservation",
    "build_scenario",
    "compare_golden",
    "default_golden_dir",
    "golden_path",
    "load_golden",
    "render_golden",
    "run_audited",
    "run_check_task",
    "run_conformance",
    "run_differential",
    "run_mutation_smoke",
    "write_golden",
]
