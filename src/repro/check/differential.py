"""Differential sim ↔ live harness.

The same seeded scenario — identical trace, identical flow specs — runs
through the discrete-event simulator and the live UDP loopback path, and
the resulting per-flow statistics are compared within calibrated
envelopes.  The two backends share the protocol objects but nothing else
(scheduling, clocks, packet transport all differ), so the envelope is
deliberately generous: it catches a backend that stops resembling the
other (an order-of-magnitude throughput gap, nonsensical delays), not
scheduler-level noise.

On hosts without UDP loopback (sandboxed CI runners) the harness reports
``skipped`` rather than failing: hermeticity is handled by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: Sim and live per-flow throughputs must agree within this factor — the
#: same envelope the live test suite has used since the UDP path landed.
THROUGHPUT_RATIO = 3.0
#: Sanity bounds on the live path's mean one-way delay (seconds).
MAX_LIVE_DELAY = 5.0


@dataclass
class DifferentialResult:
    """Outcome of one sim ↔ live comparison."""

    protocol: str
    status: str = "fail"            # ok | skipped | fail
    messages: List[str] = field(default_factory=list)
    sim_throughput_bps: float = 0.0
    live_throughput_bps: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "skipped")

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "status": self.status,
            "messages": list(self.messages),
            "sim_throughput_bps": self.sim_throughput_bps,
            "live_throughput_bps": self.live_throughput_bps,
        }


def run_differential(protocol: str = "verus", duration: float = 3.0,
                     seed: int = 11,
                     scenario: str = "city_stationary") -> DifferentialResult:
    """Run one protocol through both backends and compare the stats."""
    from ..cellular import generate_scenario_trace
    from ..experiments.runner import FlowSpec, run_trace_contention
    from ..live import LiveSessionError, run_live_session

    outcome = DifferentialResult(protocol=protocol)
    options = {"r": 2.0} if protocol == "verus" else {}
    specs = [FlowSpec(protocol=protocol, options=options)]
    trace = generate_scenario_trace(scenario, duration=max(duration, 1.0),
                                    technology="3g", seed=seed)
    warmup = min(1.0, duration / 5.0)

    sim_result = run_trace_contention(trace, specs, duration=duration,
                                      warmup=warmup, seed=seed)
    sim_stats = sim_result.stats(0)
    outcome.sim_throughput_bps = sim_stats.throughput_bps

    try:
        live_result = run_live_session(specs, trace=trace, duration=duration,
                                       warmup=warmup, seed=seed)
    except (LiveSessionError, OSError) as exc:
        outcome.status = "skipped"
        outcome.messages.append(f"live backend unavailable: {exc}")
        return outcome

    live_stats = live_result.stats(0)
    outcome.live_throughput_bps = live_stats.throughput_bps

    if live_result.degraded:
        outcome.messages.append(
            f"live session degraded: {live_result.degraded_reason}")
    if sim_stats.packets_received == 0:
        outcome.messages.append("sim backend delivered no packets")
    if live_stats.packets_received == 0:
        outcome.messages.append("live backend delivered no packets")
    if sim_stats.throughput_bps > 0 and live_stats.throughput_bps > 0:
        ratio = sim_stats.throughput_bps / live_stats.throughput_bps
        if not (1.0 / THROUGHPUT_RATIO <= ratio <= THROUGHPUT_RATIO):
            outcome.messages.append(
                f"throughput envelope: sim {sim_stats.throughput_mbps:.2f} "
                f"Mbps vs live {live_stats.throughput_mbps:.2f} Mbps "
                f"(ratio {ratio:.2f}, allowed x{THROUGHPUT_RATIO:g})")
    if not 0.0 <= live_stats.mean_delay <= MAX_LIVE_DELAY:
        outcome.messages.append(
            f"live mean delay {live_stats.mean_delay:.3f}s outside "
            f"[0, {MAX_LIVE_DELAY:g}]s")

    outcome.status = "fail" if outcome.messages else "ok"
    return outcome
