"""Runtime invariant monitors.

Three attachment seams feed these monitors:

* :meth:`Simulator.add_monitor <repro.netsim.engine.Simulator.add_monitor>`
  runs a callable before every event — :class:`MonotoneClockMonitor` uses
  it to audit the scheduler itself;
* ``SenderProtocol.observers`` receives control-law events (``on_epoch``,
  ``on_setpoint``, ``on_loss``, ``on_window``) emitted by the concrete
  senders — :class:`VerusLawMonitor` and :class:`TcpLawMonitor` check the
  paper's §4 algorithm and the TCP skeleton against them;
* end-of-run audits (:func:`audit_conservation`,
  :class:`QueueAccountingMonitor`) reconcile packet counters across taps,
  queue statistics, and link statistics.

All monitors write into one shared
:class:`~repro.check.report.InvariantReport` and never mutate the system
under test.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from .report import InvariantReport

#: Slack for floating-point comparisons on windows/delays.
EPS = 1e-9


def _finite(value: Optional[float]) -> bool:
    return value is not None and math.isfinite(value)


class MonotoneClockMonitor:
    """Event times handed to the scheduler seam must never go backwards."""

    name = "monotone-clock"

    def __init__(self, report: InvariantReport):
        self.report = report
        self._last = float("-inf")

    def __call__(self, time: float) -> None:
        self.report.count(self.name)
        if time < self._last - EPS:
            self.report.violate(self.name, time,
                                f"event time {time:.9f} precedes "
                                f"{self._last:.9f}")
        self._last = max(self._last, time)


class VerusLawMonitor:
    """Checks the Verus control law (§4) at its observer events.

    * ``on_loss`` — eq. 6: the post-loss window must not exceed
      ``max(min_window, M × W_loss)``;
    * ``on_setpoint`` — eq. 4: ``D_est`` stays finite and at or above the
      ``D_min`` the update actually used;
    * ``on_epoch`` — the window stays positive, within the configured
      bounds, and the retransmission backlog never exceeds the in-flight
      set it is drawn from.
    """

    def __init__(self, report: InvariantReport):
        self.report = report

    # -- observer events ------------------------------------------------
    def on_loss(self, sender, *, time: float, w_loss: float,
                w_after: float, kind: str, **extra) -> None:
        cfg = sender.config
        self.report.count("loss-decrease")
        allowed = max(cfg.min_window, cfg.multiplicative_decrease * w_loss)
        if w_after > allowed + EPS:
            self.report.violate(
                "loss-decrease", time, flow_id=sender.flow_id,
                message=f"{kind} loss at W={w_loss:.3f} left window at "
                        f"{w_after:.3f} > M*W={allowed:.3f}")
        if not w_after > 0:
            self.report.violate("window-bounds", time, flow_id=sender.flow_id,
                                message=f"post-loss window {w_after!r} "
                                        f"not positive")

    def on_setpoint(self, sender, *, time: float, d_est: float,
                    d_min: float, d_max: float, window: float,
                    **extra) -> None:
        self.report.count("dest-bounds")
        if not _finite(d_est):
            self.report.violate("dest-bounds", time, flow_id=sender.flow_id,
                                message=f"D_est is {d_est!r}")
            return
        if d_est < d_min - EPS:
            self.report.violate(
                "dest-bounds", time, flow_id=sender.flow_id,
                message=f"D_est={d_est * 1e3:.3f}ms below the "
                        f"D_min={d_min * 1e3:.3f}ms floor eq. 4 used")
        cfg = sender.config
        self.report.count("window-bounds")
        if not (_finite(window)
                and cfg.min_window - EPS <= window <= cfg.max_window + EPS):
            self.report.violate(
                "window-bounds", time, flow_id=sender.flow_id,
                message=f"epoch window {window!r} outside "
                        f"[{cfg.min_window}, {cfg.max_window}]")

    def on_epoch(self, sender, *, time: float, window: float, d_est,
                 mode: str, inflight: int, pending_rtx: int,
                 **extra) -> None:
        self.report.count("window-bounds")
        if not (_finite(window) and window > 0):
            self.report.violate("window-bounds", time, flow_id=sender.flow_id,
                                message=f"window {window!r} in mode {mode}")
        self.report.count("inflight-accounting")
        if pending_rtx > inflight:
            self.report.violate(
                "inflight-accounting", time, flow_id=sender.flow_id,
                message=f"{pending_rtx} pending retransmissions exceed "
                        f"{inflight} in-flight records")


class TcpLawMonitor:
    """Checks the shared TCP skeleton at its observer events.

    * ``on_loss`` — multiplicative decrease: a loss event must not leave
      the target window above the pre-loss window (the ssthresh floor of
      2 segments is the only tolerated exception);
    * ``on_window`` — cwnd stays positive and finite, ssthresh stays at
      or above the 2-segment floor.
    """

    #: RFC floor every ssthresh computation in the skeleton respects.
    SSTHRESH_FLOOR = 2.0

    def __init__(self, report: InvariantReport):
        self.report = report

    def on_loss(self, sender, *, time: float, w_loss: float,
                w_after: float, kind: str, **extra) -> None:
        self.report.count("loss-decrease")
        decreased = w_after <= w_loss - EPS
        at_floor = w_after <= self.SSTHRESH_FLOOR + EPS
        if not (decreased or at_floor):
            self.report.violate(
                "loss-decrease", time, flow_id=sender.flow_id,
                message=f"{kind} at cwnd={w_loss:.3f} set the target to "
                        f"{w_after:.3f} (no decrease)")

    def on_window(self, sender, *, time: float, window: float,
                  ssthresh: float, flight: int, **extra) -> None:
        self.report.count("window-bounds")
        if not (_finite(window) and window > 0):
            self.report.violate("window-bounds", time, flow_id=sender.flow_id,
                                message=f"cwnd {window!r}")
        if ssthresh < self.SSTHRESH_FLOOR - EPS:
            self.report.violate(
                "window-bounds", time, flow_id=sender.flow_id,
                message=f"ssthresh {ssthresh!r} below the 2-segment floor")
        self.report.count("inflight-accounting")
        if flight < 0:
            self.report.violate("inflight-accounting", time,
                                flow_id=sender.flow_id,
                                message=f"negative flight {flight}")


class QueueAccountingMonitor:
    """Reconciles a queue's counters with its actual contents.

    Called periodically (from the audited run's sampling timer) and once
    after the drain phase: ``enqueued == dequeued + occupancy`` must hold
    at all times, in packets and in bytes, and the byte gauge must equal
    the sum of the queued packets' sizes.
    """

    name = "queue-accounting"

    def __init__(self, report: InvariantReport, queue, label: str = "queue"):
        self.report = report
        self.queue = queue
        self.label = label

    def audit(self, time: float) -> None:
        queue, stats = self.queue, self.queue.stats
        self.report.count(self.name)
        if stats.enqueued != stats.dequeued + len(queue):
            self.report.violate(
                self.name, time,
                message=f"{self.label}: enqueued={stats.enqueued} != "
                        f"dequeued={stats.dequeued} + occupancy={len(queue)}")
        actual_bytes = sum(p.size for p in queue._queue)
        if queue.bytes != actual_bytes:
            self.report.violate(
                self.name, time,
                message=f"{self.label}: byte gauge {queue.bytes} != "
                        f"summed contents {actual_bytes}")
        if stats.bytes_enqueued != stats.bytes_dequeued + queue.bytes:
            self.report.violate(
                self.name, time,
                message=f"{self.label}: bytes_enqueued="
                        f"{stats.bytes_enqueued} != bytes_dequeued="
                        f"{stats.bytes_dequeued} + gauge={queue.bytes}")


def audit_conservation(report: InvariantReport, counts: Dict[str, int],
                       time: float) -> None:
    """End-of-run packet conservation across the audited path.

    ``counts`` comes from :func:`repro.check.scenarios.run_audited`: tap
    counters at the four observation points plus queue/link statistics.
    After the drain phase every data packet the sender emitted must be
    accounted for as delivered, queue-dropped, or stochastically lost —
    and the lossless reverse path must conserve acknowledgements exactly.
    """
    report.count("conservation", 4)
    sent = counts["sent_data"]
    explained = (counts["link_delivered"] + counts["queue_dropped"]
                 + counts["stochastic_losses"] + counts["queue_len"])
    if sent != explained:
        report.violate(
            "conservation", time,
            message=f"{sent} data packets sent but only {explained} "
                    f"accounted for (delivered={counts['link_delivered']}, "
                    f"dropped={counts['queue_dropped']}, "
                    f"lost={counts['stochastic_losses']}, "
                    f"queued={counts['queue_len']})")
    if counts["received_data"] != counts["link_delivered"]:
        report.violate(
            "conservation", time,
            message=f"link claims {counts['link_delivered']} deliveries but "
                    f"the receiver tap saw {counts['received_data']}")
    if counts["queue_len"] != 0:
        report.violate("conservation", time,
                       message=f"{counts['queue_len']} packets still queued "
                               f"after the drain phase")
    if counts["acks_in"] != counts["acks_out"]:
        report.violate(
            "conservation", time,
            message=f"lossless reverse path lost acknowledgements: "
                    f"{counts['acks_out']} sent, {counts['acks_in']} arrived")
