"""Mutation smoke: seeded defects that the oracles must catch.

Each mutant monkeypatches one well-defined piece of the implementation —
disable Verus's eq. 6 loss decrease, break the profile inversion, skip the
eq. 4 set-point floor, leak packets out of the link's delivery accounting,
disable Cubic's multiplicative decrease — runs the protocol's audited
check scenario, and records which oracles (invariant monitors, the golden
trace, the conservation ledger) noticed.  A mutant nobody catches means
the conformance net has a hole, and :func:`run_mutation_smoke` reports it
as a failure.

Patches are applied with try/finally restoration so a crashing mutant can
never leave the live classes defaced for subsequent code.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .golden import compare_golden, default_golden_dir, golden_path, load_golden
from .scenarios import build_scenario, run_audited


@contextmanager
def _patched(owner, attr: str, replacement):
    original = getattr(owner, attr)
    setattr(owner, attr, replacement)
    try:
        yield
    finally:
        setattr(owner, attr, original)


@dataclass(frozen=True)
class Mutant:
    """One seeded defect."""

    name: str
    protocol: str
    description: str
    #: Zero-argument callable returning the active patch context manager.
    apply: Callable = field(compare=False)
    #: Optional self-contained detector for defects the audited check
    #: scenarios cannot see (e.g. cache-coherence bugs off the golden
    #: protocols' paths).  Called as ``probe(apply)``: it computes any
    #: clean-code reference first, enters ``apply()`` itself, and
    #: returns the list of oracle labels that noticed the defect.
    probe: Optional[Callable] = field(default=None, compare=False)


def _no_loss_decrease():
    """Eq. 6 disabled: a loss keeps the window that caused it."""
    from ..core.loss_handler import LossHandler

    def on_loss(self, w_loss):
        if self.in_recovery:
            return self._recovery_window
        self.losses += 1
        self.in_recovery = True
        self._recovery_window = max(self.min_window, w_loss)
        return self._recovery_window

    return _patched(LossHandler, "on_loss", on_loss)


def _broken_inversion():
    """Fig 5 inverse lookup ignores the target and pins at the domain max."""
    from ..interp.inverse import InverseLookup

    def largest_below(self, target):
        return float(self.f.domain[1])

    return _patched(InverseLookup, "largest_below", largest_below)


def _dest_floor_skip():
    """Eq. 4 without its D_min floors: the set-point may sink below the
    propagation floor (and keep sinking)."""
    from ..core.window_estimator import WindowEstimator

    def update_set_point(self, delta_d, d_max, d_min):
        if self.d_est is None:
            raise RuntimeError("set-point not initialised")
        if d_min <= 0:
            raise ValueError("d_min must be positive")
        if d_max / d_min > self.r:
            self.d_est -= self.delta2
            self.last_branch = "ratio"
        elif delta_d > 0:
            self.d_est -= self.delta1
            self.last_branch = "backoff"
        else:
            self.d_est += self.delta2
            self.last_branch = "increase"
        return self.d_est

    return _patched(WindowEstimator, "update_set_point", update_set_point)


def _conservation_leak():
    """The link silently discards every 23rd delivery without counting it
    anywhere — exactly the accounting bug the conservation ledger exists
    to catch."""
    from ..netsim.link import Link

    original = Link._deliver
    state = {"n": 0}

    def _deliver(self, packet):
        state["n"] += 1
        if state["n"] % 23 == 0:
            return
        original(self, packet)

    return _patched(Link, "_deliver", _deliver)


def _stale_interpolation_cache():
    """Perf defect: profile updates stop invalidating the interpolation
    cache.  The revision-keyed cache in DelayProfiler.interpolate() then
    keeps serving the old curve while fresh (window, delay) samples pile
    into the point set unseen — the window lookup steers on stale data
    until an unrelated key component (the d_min anchor) happens to move."""
    from ..core.delay_profiler import DelayProfiler

    def add_sample(self, window, delay, now=0.0):
        if self.updates_frozen:
            return
        if delay <= 0:
            raise ValueError(f"delay must be positive (got {delay})")
        key = max(0, int(round(window)))
        # Seeded defect: the revision bump is missing here.
        self._touch_counter += 1
        self._touched[key] = self._touch_counter
        self._touched_time[key] = now
        current = self._points.get(key)
        if current is None:
            self._points[key] = delay
        else:
            self._points[key] = (1 - self.ewma) * current + self.ewma * delay
        if len(self._points) > self.max_points:
            self._evict()

    return _patched(DelayProfiler, "add_sample", add_sample)


def _dirty_freelist_ack():
    """Perf defect: the ACK freelist hands back a recycled packet without
    reassigning ``ack_seq``.  First-allocation ACKs are correct, so the
    bug only appears once recycling starts — every pooled ACK then
    acknowledges whatever sequence its previous life did."""
    from ..netsim.packet import Packet, PacketPool

    def acquire_ack(self, data, now, ack_seq, size):
        free = self._free
        if free:
            self.reused += 1
            ack = free.pop()
            ack.flow_id = data.flow_id
            ack.seq = data.seq
            ack.size = size
            ack.sent_time = now
            ack.is_ack = True
            # Seeded defect: ack.ack_seq keeps its previous-life value.
            ack.echo_sent_time = data.sent_time
            ack.window_at_send = data.window_at_send
            ack.retransmission = data.retransmission
            ack.enqueue_time = 0.0
            ack.ecn = False
            ack.payload = None
            return ack
        self.allocated += 1
        return Packet(
            flow_id=data.flow_id,
            seq=data.seq,
            size=size,
            sent_time=now,
            is_ack=True,
            ack_seq=ack_seq,
            echo_sent_time=data.sent_time,
            window_at_send=data.window_at_send,
            retransmission=data.retransmission,
        )

    return _patched(PacketPool, "acquire_ack", acquire_ack)


def _tracelink_wrap_off_by_one():
    """Perf defect: the wraparound branch advances the replay cycle
    counter twice — exactly what happens if the inlined fast path *and*
    the retained ``_next_opportunity_time`` helper each bump ``_cycle``.
    Every loop then skips one full trace period of opportunities, so the
    link goes silent for a period after each seam."""
    from ..netsim.trace_link import TraceLink

    def _opportunity(self):
        self._index += 1
        budget = self.bytes_per_opportunity
        queue = self.queue
        now = self.sim.now
        served_any = False
        while budget > 0:
            head = queue.peek()
            if head is None or head.size > budget:
                break
            packet = queue.pop(now)
            budget -= packet.size
            served_any = True
            self._deliver(packet)
        if not served_any:
            self.wasted_opportunities += 1
        i = self._index
        if i >= self._n:
            if not self.loop:
                return
            self._index = i = 0
            # Seeded defect: the cycle counter is bumped twice at the seam.
            self._cycle += 2
            self._cycle_base = self._origin + self._cycle * self._period
        when = self._cycle_base + self._times_list[i]
        if when < now:
            when = now
        self.sim.call_at(when, self._opportunity)

    return _patched(TraceLink, "_opportunity", _opportunity)


def _stale_likelihood_cache():
    """Perf defect: the Sprout likelihood cache's hit path ignores the
    packet-count key and serves whichever row was inserted last.  The
    first tick (cold cache) is correct, so the bug only appears once a
    row exists — every later observation then updates the belief with
    some other tick's likelihood."""
    from ..sprout import forecast as forecast_mod

    original = forecast_mod.RateBelief.observe

    def observe(self, packets, censored=False):
        if not censored and packets >= 0 and self._lik_cache:
            # Seeded defect: cache hit keyed on "most recent" instead of
            # the packet count.
            stale_key = next(reversed(self._lik_cache))
            return original(self, stale_key, censored=False)
        return original(self, packets, censored=censored)

    return _patched(forecast_mod.RateBelief, "observe", observe)


def _probe_stale_likelihood_cache(apply):
    """Oracle: per-tick budgets on a fixed arrival stream must match the
    clean implementation exactly — any cache-coherence defect in the
    forecaster shows up as a budget divergence."""
    from ..sprout.forecast import SproutForecaster

    counts = [5, 9, 5, 2, 9, 14, 2, 7, 9, 3]

    def budgets():
        forecaster = SproutForecaster(rate_cap_bps=18e6)
        return [forecaster.on_tick(count) for count in counts]

    reference = budgets()
    with apply():
        mutated = budgets()
    if mutated != reference:
        return ["probe:forecast-budget-divergence"]
    return []


def _stale_worker_trace_memo():
    """Perf defect: the worker's trace memo skips the stat-signature
    check, so a memo hit survives mid-sweep corpus mutation — cells keep
    simulating a trace that no longer exists on disk, silently."""
    from ..campaign import spec as campaign_spec

    original = campaign_spec._load_task_trace

    def load(task):
        entry = campaign_spec._TRACE_MEMO.get(
            (task.trace_file, task.trace_sha256))
        if entry is not None:
            # Seeded defect: the file's stat signature is never checked.
            return entry[1].copy()
        return original(task)

    return _patched(campaign_spec, "_load_task_trace", load)


def _probe_stale_trace_memo(apply):
    """Oracle: after the corpus file changes on disk, a load pinned to
    the *old* content hash must refuse (the clean memo re-verifies and
    raises); serving bytes that differ from the on-disk trace means the
    memo handed out stale content."""
    import os
    import tempfile
    from types import SimpleNamespace

    import numpy as np

    from ..campaign import spec as campaign_spec
    from ..traces.corpus import trace_sha256
    from ..traces.formats import read_trace_ms

    def write_trace(path, step):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(str(t) for t in range(0, 1000, step)) + "\n")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "cell.trace")
        write_trace(path, 10)
        pin = trace_sha256(read_trace_ms(path, fmt="mahimahi"))
        task = SimpleNamespace(trace_file=path, trace_sha256=pin)
        campaign_spec._TRACE_MEMO.clear()
        try:
            campaign_spec._load_task_trace(task)  # clean load seeds memo
            write_trace(path, 25)                 # corpus mutates mid-sweep
            with apply():
                try:
                    served = campaign_spec._load_task_trace(task)
                except ValueError:
                    return []   # refused like clean code: defect inert
            disk = read_trace_ms(path, fmt="mahimahi").astype(float) / 1000.0
            if served.shape != disk.shape \
                    or not np.array_equal(served, disk):
                return ["probe:memo-served-stale-trace"]
            return []
        finally:
            campaign_spec._TRACE_MEMO.clear()


def _cubic_no_decrease():
    """Cubic's loss response disabled: ssthresh is set to the pre-loss
    window, so a congestion signal no longer reduces the rate."""
    from ..tcp.cubic import CubicSender

    def ssthresh_on_loss(self):
        return self.cwnd

    return _patched(CubicSender, "ssthresh_on_loss", ssthresh_on_loss)


MUTANTS: List[Mutant] = [
    Mutant(name="verus-no-loss-decrease", protocol="verus",
           description="eq. 6 disabled (loss keeps the window)",
           apply=_no_loss_decrease),
    Mutant(name="verus-broken-inversion", protocol="verus",
           description="profile inverse pinned at the domain maximum",
           apply=_broken_inversion),
    Mutant(name="verus-dest-floor-skip", protocol="verus",
           description="eq. 4 set-point floor removed",
           apply=_dest_floor_skip),
    Mutant(name="link-conservation-leak", protocol="verus",
           description="link drops every 23rd delivery uncounted",
           apply=_conservation_leak),
    Mutant(name="cubic-no-decrease", protocol="cubic",
           description="Cubic multiplicative decrease disabled",
           apply=_cubic_no_decrease),
    Mutant(name="stale-interpolation-cache", protocol="verus",
           description="profile updates stop invalidating the curve cache",
           apply=_stale_interpolation_cache),
    Mutant(name="dirty-freelist-ack", protocol="verus",
           description="recycled pooled ACK keeps its previous ack_seq",
           apply=_dirty_freelist_ack),
    Mutant(name="tracelink-wrap-off-by-one", protocol="verus-trace",
           description="trace replay skips each cycle's first opportunity",
           apply=_tracelink_wrap_off_by_one),
    Mutant(name="stale-likelihood-cache", protocol="sprout",
           description="forecaster cache serves the wrong packet-count row",
           apply=_stale_likelihood_cache,
           probe=_probe_stale_likelihood_cache),
    Mutant(name="stale-worker-trace-memo", protocol="campaign",
           description="trace memo ignores mid-sweep corpus mutation",
           apply=_stale_worker_trace_memo,
           probe=_probe_stale_trace_memo),
]


@dataclass
class MutantResult:
    """Which oracles caught one mutant."""

    name: str
    protocol: str
    description: str
    caught_by: List[str] = field(default_factory=list)
    error: str = ""

    @property
    def caught(self) -> bool:
        return bool(self.caught_by)

    def to_dict(self) -> dict:
        return {"name": self.name, "protocol": self.protocol,
                "description": self.description,
                "caught_by": list(self.caught_by), "error": self.error}


def run_mutation_smoke(mutants: List[Mutant] = None,
                       golden_dir=None) -> List[MutantResult]:
    """Run every mutant through its audited scenario; report the catches."""
    if mutants is None:
        mutants = MUTANTS
    golden_dir = golden_dir if golden_dir is not None else default_golden_dir()
    results: List[MutantResult] = []
    for mutant in mutants:
        outcome = MutantResult(name=mutant.name, protocol=mutant.protocol,
                               description=mutant.description)
        if mutant.probe is not None:
            # Self-contained detector: the probe computes its clean-code
            # reference, applies the patch itself, and reports catches.
            try:
                outcome.caught_by.extend(mutant.probe(mutant.apply))
            except Exception as exc:
                outcome.caught_by.append("exception")
                outcome.error = repr(exc)
            results.append(outcome)
            continue
        scenario = build_scenario(mutant.protocol)
        try:
            with mutant.apply():
                run = run_audited(scenario)
        except Exception as exc:   # a crash is a (crude) detection too
            outcome.caught_by.append("exception")
            outcome.error = repr(exc)
            results.append(outcome)
            continue
        for monitor in run.report.monitors_violated():
            outcome.caught_by.append(f"invariant:{monitor}")
        blessed = load_golden(golden_path(golden_dir, mutant.protocol))
        if blessed is not None and compare_golden(blessed, scenario, run.rows):
            outcome.caught_by.append("golden")
        results.append(outcome)
    return results
