"""Structured invariant reporting for the conformance subsystem.

Every monitor in :mod:`repro.check.monitors` writes into one shared
:class:`InvariantReport`: a counter per invariant (how many times it was
evaluated — a report with zero checks is *not* evidence of correctness)
plus a list of :class:`Violation` records.  The report is JSON-safe so it
survives the campaign executor's process boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Violation:
    """One failed invariant check."""

    monitor: str
    time: float
    message: str
    flow_id: int = 0

    def to_dict(self) -> dict:
        return {"monitor": self.monitor, "time": self.time,
                "message": self.message, "flow_id": self.flow_id}

    @classmethod
    def from_dict(cls, payload: dict) -> "Violation":
        return cls(**payload)


@dataclass
class InvariantReport:
    """Aggregated outcome of every monitor attached to one audited run."""

    violations: List[Violation] = field(default_factory=list)
    #: invariant name -> number of times it was evaluated
    checks: Dict[str, int] = field(default_factory=dict)
    #: Cap on stored violations; a broken invariant fires on nearly every
    #: event, and ten thousand copies of the same message help nobody.
    max_violations: int = 200
    truncated: int = 0

    def count(self, monitor: str, n: int = 1) -> None:
        self.checks[monitor] = self.checks.get(monitor, 0) + n

    def violate(self, monitor: str, time: float, message: str,
                flow_id: int = 0) -> None:
        if len(self.violations) >= self.max_violations:
            self.truncated += 1
            return
        self.violations.append(Violation(monitor=monitor, time=time,
                                         message=message, flow_id=flow_id))

    @property
    def ok(self) -> bool:
        return not self.violations and self.truncated == 0

    def total_checks(self) -> int:
        return sum(self.checks.values())

    def monitors_violated(self) -> List[str]:
        """Distinct monitor names that reported at least one violation."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.monitor not in seen:
                seen.append(violation.monitor)
        return seen

    def summary(self) -> str:
        if self.ok:
            return (f"ok ({self.total_checks()} checks across "
                    f"{len(self.checks)} invariants)")
        head = "; ".join(f"{v.monitor}@{v.time:.3f}s: {v.message}"
                         for v in self.violations[:3])
        extra = len(self.violations) + self.truncated - 3
        tail = f" (+{extra} more)" if extra > 0 else ""
        return f"{len(self.violations) + self.truncated} violations: {head}{tail}"

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checks": dict(self.checks),
            "truncated": self.truncated,
            "violations": [v.to_dict() for v in self.violations],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InvariantReport":
        report = cls(checks=dict(payload.get("checks", {})),
                     truncated=int(payload.get("truncated", 0)))
        report.violations = [Violation.from_dict(v)
                             for v in payload.get("violations", [])]
        return report
