"""Golden-trace oracle: content-addressed reference traces with banded diffs.

A golden file under ``tests/golden/`` pins one protocol's behaviour on its
check scenario as epoch-level ``(t, W, D_est, delay)`` rows.  The file
records the scenario's content address, so a scenario edit is detected as
"re-bless needed" rather than misreported as behavioural drift, and a
tolerance band, so the diff fails loudly on drift without chasing noise.

Files are written in canonical JSON (sorted keys, compact separators,
trailing newline): the same deterministic run always produces the same
bytes, which is what makes ``--bless`` idempotent and the acceptance
criterion "bit-identical across runs" checkable with a plain file compare.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .scenarios import CheckScenario

GOLDEN_SCHEMA = 1
COLUMNS = ("time", "window", "set_point", "delay")

#: Per-column tolerance bands: a cell matches when it is within ``abs`` or
#: within ``rel`` of the blessed value.  Time is sampled on a fixed grid
#: and must match almost exactly; the behavioural columns get a small
#: relative band so a legitimate refactor of float evaluation order does
#: not force a re-bless.
DEFAULT_TOLERANCE: Dict[str, Dict[str, float]] = {
    "time": {"rel": 0.0, "abs": 1e-6},
    "window": {"rel": 0.05, "abs": 0.5},
    "set_point": {"rel": 0.05, "abs": 0.002},
    "delay": {"rel": 0.10, "abs": 0.005},
}

#: Fraction of rows allowed outside the band before the diff fails.  Zero:
#: the runs are deterministic, so any out-of-band cell is genuine drift.
MAX_BAD_FRACTION = 0.0


def default_golden_dir() -> Path:
    """``tests/golden/`` of the repository this package lives in."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def golden_path(golden_dir, protocol: str) -> Path:
    return Path(golden_dir) / f"{protocol}.json"


def render_golden(scenario: CheckScenario,
                  rows: Sequence[Sequence[float]]) -> str:
    """Canonical file content for a golden trace (deterministic bytes)."""
    payload = {
        "schema": GOLDEN_SCHEMA,
        "protocol": scenario.protocol,
        "scenario": scenario.to_dict(),
        "scenario_key": scenario.key(),
        "columns": list(COLUMNS),
        "tolerance": DEFAULT_TOLERANCE,
        "rows": [list(row) for row in rows],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def write_golden(path, scenario: CheckScenario,
                 rows: Sequence[Sequence[float]]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_golden(scenario, rows))
    return path


def load_golden(path) -> Optional[dict]:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _within(value: float, blessed: float, band: Dict[str, float]) -> bool:
    diff = abs(value - blessed)
    return (diff <= band.get("abs", 0.0)
            or diff <= band.get("rel", 0.0) * abs(blessed))


def compare_golden(blessed: Optional[dict], scenario: CheckScenario,
                   rows: Sequence[Sequence[float]],
                   max_messages: int = 5) -> List[str]:
    """Diff fresh ``rows`` against a blessed trace.

    Returns a list of human-readable drift messages; empty means the
    trace matches within tolerance.
    """
    if blessed is None:
        return [f"no golden trace for {scenario.protocol!r} "
                f"(run `repro check --bless`)"]
    if blessed.get("schema") != GOLDEN_SCHEMA:
        return [f"golden schema {blessed.get('schema')!r} != "
                f"{GOLDEN_SCHEMA} (re-bless)"]
    if blessed.get("scenario_key") != scenario.key():
        return ["check scenario definition changed since the trace was "
                "blessed (re-bless)"]
    blessed_rows = blessed.get("rows", [])
    if len(blessed_rows) != len(rows):
        return [f"row count changed: blessed {len(blessed_rows)}, "
                f"fresh {len(rows)}"]
    tolerance = blessed.get("tolerance", DEFAULT_TOLERANCE)
    messages: List[str] = []
    bad = 0
    for i, (ref, fresh) in enumerate(zip(blessed_rows, rows)):
        for column, ref_v, fresh_v in zip(COLUMNS, ref, fresh):
            band = tolerance.get(column, {"rel": 0.0, "abs": 0.0})
            if not _within(fresh_v, ref_v, band):
                bad += 1
                if len(messages) < max_messages:
                    messages.append(
                        f"row {i} (t={ref[0]:.3f}s) {column}: "
                        f"blessed {ref_v:.6g}, got {fresh_v:.6g} "
                        f"(band rel={band.get('rel', 0)} "
                        f"abs={band.get('abs', 0)})")
                break
    allowed = int(MAX_BAD_FRACTION * len(rows))
    if bad <= allowed:
        return []
    if bad > len(messages):
        messages.append(f"... {bad} of {len(rows)} rows out of band")
    return messages
