"""Audited check scenarios: deterministic runs with every monitor attached.

A :class:`CheckScenario` pins one protocol to a fully-specified,
content-addressable network setup: a schedule-driven bottleneck (so the
control law is exercised by genuine capacity changes), a bounded drop-tail
queue (so congestion drops occur), and seeded stochastic loss (so the
loss-recovery invariants fire).  :func:`run_audited` wires the path by
hand — taps at all four observation points, invariant monitors on every
seam — runs it, drains it, and returns the invariant report plus the
epoch-level ``(t, W, D_est, delay)`` rows the golden-trace oracle diffs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

import numpy as np

from ..campaign.spec import _canonical_json
from ..core.sender import VerusSender
from ..experiments.runner import FlowSpec, make_endpoints
from ..netsim.engine import PeriodicTimer, Simulator
from ..netsim.link import DelayLine, LinkPhase, LinkSchedule, VariableLink
from ..netsim.packet import PacketPool
from ..netsim.queues import DropTailQueue
from ..netsim.trace_link import TraceLink
from ..netsim.topology import pooled_ack_sink
from ..netsim.tracing import FlowTracer
from ..tcp.base import TcpSender
from .monitors import (
    MonotoneClockMonitor,
    QueueAccountingMonitor,
    TcpLawMonitor,
    VerusLawMonitor,
    audit_conservation,
)
from .report import InvariantReport

#: Scenarios with a pinned definition and a golden trace.  Most entries
#: are protocol names; "verus-trace" pins the same Verus sender to a
#: looped cellular-trace bottleneck instead of the schedule-driven link,
#: so the trace-replay machinery (wraparound included) sits under the
#: golden oracle too.
CHECK_PROTOCOLS = ("verus", "cubic", "vegas", "verus-trace")

#: Scenario name -> flow protocol, for scenario names that pin a variant
#: of one protocol to a different network substrate.
_FLOW_PROTOCOLS = {"verus-trace": "verus"}


def _flow_protocol(scenario_name: str) -> str:
    return _FLOW_PROTOCOLS.get(scenario_name, scenario_name)

#: Capacity multipliers applied to ``rate_bps``, one link phase each.
#: The repeating down/up pattern forces the window to track both
#: directions of capacity change within one run.
PHASE_FACTORS = (1.0, 0.5, 1.5, 0.75)


@dataclass(frozen=True)
class CheckScenario:
    """One content-addressed conformance run."""

    protocol: str
    seed: int = 7
    duration: float = 8.0
    rate_bps: float = 8e6
    rtt: float = 0.04
    queue_bytes: int = 120_000
    loss_rate: float = 0.004
    phase_seconds: float = 2.0
    sample_interval: float = 0.1
    drain: float = 2.0
    options: Tuple[Tuple[str, Any], ...] = ()
    #: "variable" (schedule-driven VariableLink) or "trace" (looped
    #: TraceLink over a short pinned cellular trace, so replay
    #: wraparound happens many times inside one audited run).
    bottleneck: str = "variable"

    def __post_init__(self) -> None:
        if isinstance(self.options, dict):
            object.__setattr__(self, "options",
                               tuple(sorted(self.options.items())))

    def to_dict(self) -> dict:
        payload = {
            "protocol": self.protocol,
            "seed": self.seed,
            "duration": self.duration,
            "rate_bps": self.rate_bps,
            "rtt": self.rtt,
            "queue_bytes": self.queue_bytes,
            "loss_rate": self.loss_rate,
            "phase_seconds": self.phase_seconds,
            "sample_interval": self.sample_interval,
            "drain": self.drain,
            "options": {k: v for k, v in self.options},
        }
        # Included only when non-default so every pre-existing scenario
        # keeps its content address (and therefore its blessed golden).
        if self.bottleneck != "variable":
            payload["bottleneck"] = self.bottleneck
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CheckScenario":
        payload = dict(payload)
        payload["options"] = tuple(sorted(payload.get("options", {}).items()))
        return cls(**payload)

    def key(self) -> str:
        """Content address of the scenario definition.

        Unlike campaign cache keys this deliberately excludes the repro
        version: a golden trace should be invalidated by behaviour
        changes (which the diff detects) or scenario changes (which this
        key detects), never by a version bump alone.
        """
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode("utf-8")).hexdigest()


def build_scenario(protocol: str, **overrides) -> CheckScenario:
    """The pinned check scenario for ``protocol`` (plus overrides)."""
    if protocol not in CHECK_PROTOCOLS:
        raise ValueError(f"no check scenario for {protocol!r}; "
                         f"choose from {CHECK_PROTOCOLS}")
    options = {"r": 2.0} if _flow_protocol(protocol) == "verus" else {}
    params = dict(protocol=protocol, options=options)
    if protocol == "verus-trace":
        params["bottleneck"] = "trace"
        params["rate_bps"] = 2e6
    params.update(overrides)
    return CheckScenario(**params)


@dataclass
class AuditedRun:
    """Everything one audited scenario run produced."""

    scenario: CheckScenario
    report: InvariantReport
    #: Sampled ``[t, window, set_point, delay]`` rows (the golden trace).
    rows: List[List[float]]
    counts: Dict[str, int]
    sender: Any = None
    receiver: Any = None
    tracer: Any = field(default=None, repr=False)


def _round(value: float) -> float:
    """Stable short form for golden rows: 10 significant digits keeps the
    JSON tidy while staying far above simulation noise."""
    return float(f"{value:.10g}")


def _window_of(sender) -> float:
    if isinstance(sender, VerusSender):
        return float(sender.window)
    if isinstance(sender, TcpSender):
        return float(sender.cwnd)
    return float(getattr(sender, "window", 0.0) or 0.0)


def _setpoint_of(sender) -> float:
    if isinstance(sender, VerusSender):
        d_est = sender.window_estimator.d_est
        return float(d_est) if d_est is not None else 0.0
    if isinstance(sender, TcpSender):
        return float(sender.srtt) if sender.srtt is not None else 0.0
    return 0.0


#: Span of the pinned replay trace for "trace" bottleneck scenarios.
#: Deliberately short relative to ``duration`` + ``drain`` so the looped
#: replay wraps around many times inside one audited run — the seam
#: arithmetic (cycle base, continuation gap) is then squarely inside the
#: golden oracle's blast radius.
TRACE_SPAN_SECONDS = 1.5


def _check_trace(scenario: CheckScenario) -> np.ndarray:
    """The pinned delivery-opportunity trace for a trace-bottleneck
    scenario: derived only from scenario fields (``rate_bps`` sets the
    trace's mean rate), so the scenario's content address covers it.
    The rate is chosen low enough that the flow saturates the link and
    the queue stays loaded — replay-schedule defects then perturb
    delivery timing directly instead of hiding behind an idle link."""
    from ..cellular import generate_scenario_trace

    return generate_scenario_trace("city_stationary",
                                   duration=TRACE_SPAN_SECONDS,
                                   technology="3g", seed=scenario.seed,
                                   mean_rate_bps=scenario.rate_bps)


def run_audited(scenario: CheckScenario) -> AuditedRun:
    """Run ``scenario`` with every invariant monitor attached."""
    sim = Simulator()
    rng = np.random.default_rng(scenario.seed)
    spec = FlowSpec(protocol=_flow_protocol(scenario.protocol),
                    options=dict(scenario.options))
    sender, receiver = make_endpoints(spec, 0)

    queue = DropTailQueue(capacity_bytes=scenario.queue_bytes)
    if scenario.bottleneck == "trace":
        link = TraceLink(sim, _check_trace(scenario), queue=queue,
                         delay=scenario.rtt / 2.0, loop=True,
                         loss_rate=scenario.loss_rate, rng=rng,
                         name="check-bottleneck")
    else:
        phases = [LinkPhase(duration=scenario.phase_seconds,
                            rate_bps=scenario.rate_bps * factor,
                            delay=scenario.rtt / 2.0,
                            loss_rate=scenario.loss_rate)
                  for factor in PHASE_FACTORS]
        link = VariableLink(sim, LinkSchedule(phases, repeat=True),
                            queue=queue, rng=rng, name="check-bottleneck")

    # Forward path: sender -> tap -> bottleneck -> tap -> receiver.
    # Reverse path: receiver -> tap -> delay line -> tap -> sender.
    tracer = FlowTracer(clock=lambda: sim.now)
    link.dst = tracer.tap("receiver-in", dst=receiver.on_data)
    sender.attach(sim, tracer.tap("sender-out", dst=link.send))
    # The ACK freelist runs *under* the tracing taps here, so the golden
    # comparison doubles as proof that pooling is invisible to tracing.
    ack_pool = PacketPool()
    receiver.ack_pool = ack_pool
    ack_in = tracer.tap("sender-ack-in",
                        dst=pooled_ack_sink(sender.on_ack, ack_pool))
    reverse = DelayLine(sim, scenario.rtt / 2.0, dst=ack_in)
    receiver.attach(sim, tracer.tap("receiver-ack-out", dst=reverse.send))

    report = InvariantReport()
    clock_monitor = MonotoneClockMonitor(report)
    sim.add_monitor(clock_monitor)
    if isinstance(sender, VerusSender):
        sender.observers.append(VerusLawMonitor(report))
    elif isinstance(sender, TcpSender):
        sender.observers.append(TcpLawMonitor(report))
    queue_monitor = QueueAccountingMonitor(report, queue, label="bottleneck")

    rows: List[List[float]] = []

    def sample() -> None:
        queue_monitor.audit(sim.now)
        delay = receiver.deliveries[-1][2] if receiver.deliveries else 0.0
        rows.append([_round(sim.now), _round(_window_of(sender)),
                     _round(_setpoint_of(sender)), _round(delay)])

    sampler = PeriodicTimer(sim, scenario.sample_interval, sample)
    sender.start()
    sampler.start()
    sim.run(until=scenario.duration)

    sampler.stop()
    if sender.running:
        sender.stop()
    # Drain: let the queue empty and every in-flight packet/ACK land, so
    # the conservation ledger balances exactly.
    sim.run(until=scenario.duration + scenario.drain)
    sim.remove_monitor(clock_monitor)

    out_tap = tracer.taps["sender-out"]
    in_tap = tracer.taps["receiver-in"]
    counts = {
        "sent_data": out_tap.count(is_ack=False),
        "received_data": in_tap.count(is_ack=False),
        "acks_out": tracer.taps["receiver-ack-out"].count(is_ack=True),
        "acks_in": ack_in.count(is_ack=True),
        "link_delivered": link.delivered,
        "queue_dropped": queue.stats.dropped,
        "stochastic_losses": link.stochastic_losses,
        "queue_len": len(queue),
        "events": sim.events_processed,
    }
    audit_conservation(report, counts, time=sim.now)
    queue_monitor.audit(sim.now)

    return AuditedRun(scenario=scenario, report=report, rows=rows,
                      counts=counts, sender=sender, receiver=receiver,
                      tracer=tracer)
