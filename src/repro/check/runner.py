"""Conformance runner: audited scenarios through the campaign executor.

:func:`run_check_task` is the module-level (picklable) task function, so
the per-protocol audited runs parallelise through the same crash-isolated
process pool the sweep and chaos matrices use.  Determinism does the rest:
a ``--jobs N`` conformance run produces bit-identical golden rows to a
serial one because each task's result depends only on its scenario.

:func:`run_conformance` is the full ``repro check`` pipeline: audited
runs (invariants + golden diff or ``--bless``), then the sim ↔ live
differential harness, then the mutation smoke.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..campaign.executor import ExecutorStats, run_tasks
from .differential import DifferentialResult, run_differential
from .golden import (
    compare_golden,
    default_golden_dir,
    golden_path,
    load_golden,
    write_golden,
)
from .mutation import MutantResult, run_mutation_smoke
from .scenarios import CHECK_PROTOCOLS, CheckScenario, build_scenario, run_audited

#: Protocols exercised by the differential harness (each costs its
#: ``duration`` in wall-clock seconds, so the default list is short).
DIFFERENTIAL_PROTOCOLS = ("verus", "cubic")


def run_check_task(payload: dict) -> dict:
    """Execute one audited scenario; JSON-safe result (pool-friendly)."""
    scenario = CheckScenario.from_dict(payload)
    run = run_audited(scenario)
    return {
        "protocol": scenario.protocol,
        "scenario_key": scenario.key(),
        "invariants": run.report.to_dict(),
        "rows": run.rows,
        "counts": run.counts,
    }


@dataclass
class CheckRow:
    """Outcome of one protocol's audited run + golden diff."""

    protocol: str
    status: str = "fail"            # ok | blessed | fail
    invariant_summary: str = ""
    checks: int = 0
    golden_status: str = ""
    messages: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "blessed")

    def to_dict(self) -> dict:
        return {"protocol": self.protocol, "status": self.status,
                "invariants": self.invariant_summary, "checks": self.checks,
                "golden": self.golden_status}


@dataclass
class ConformanceResult:
    """Everything one ``repro check`` run produced."""

    rows: List[CheckRow] = field(default_factory=list)
    differential: List[DifferentialResult] = field(default_factory=list)
    mutants: List[MutantResult] = field(default_factory=list)
    blessed_paths: List[str] = field(default_factory=list)
    stats: Optional[ExecutorStats] = None

    @property
    def ok(self) -> bool:
        return (all(row.ok for row in self.rows)
                and all(d.ok for d in self.differential)
                and all(m.caught for m in self.mutants))


def run_conformance(protocols: Optional[Sequence[str]] = None,
                    golden_dir=None, jobs: int = 1, bless: bool = False,
                    with_differential: bool = True,
                    with_mutation: bool = True,
                    differential_duration: float = 3.0,
                    log: Optional[Callable[[str], None]] = None
                    ) -> ConformanceResult:
    """Run the conformance pipeline; see the module docstring."""
    say = log if log is not None else (lambda message: None)
    protocols = list(protocols) if protocols else list(CHECK_PROTOCOLS)
    golden_dir = golden_dir if golden_dir is not None else default_golden_dir()
    result = ConformanceResult()

    scenarios = [build_scenario(protocol) for protocol in protocols]
    say(f"auditing {len(scenarios)} scenario(s) with jobs={jobs}")
    run = run_tasks([s.to_dict() for s in scenarios], run_check_task,
                    jobs=jobs)
    result.stats = run.stats

    for scenario, outcome in zip(scenarios, run.outcomes):
        row = CheckRow(protocol=scenario.protocol)
        if not outcome.ok:
            row.invariant_summary = f"task {outcome.status}"
            row.messages.append(outcome.error or outcome.status)
            result.rows.append(row)
            continue
        payload = outcome.result
        invariants = payload["invariants"]
        row.checks = sum(invariants["checks"].values())
        violations = invariants["violations"]
        if invariants["ok"]:
            row.invariant_summary = "ok"
        else:
            total = len(violations) + invariants.get("truncated", 0)
            row.invariant_summary = f"{total} violations"
            row.messages.extend(
                f"{v['monitor']}@{v['time']:.3f}s: {v['message']}"
                for v in violations[:5])
        if bless:
            path = write_golden(golden_path(golden_dir, scenario.protocol),
                                scenario, payload["rows"])
            result.blessed_paths.append(str(path))
            row.golden_status = "blessed"
        else:
            blessed = load_golden(golden_path(golden_dir, scenario.protocol))
            drift = compare_golden(blessed, scenario, payload["rows"])
            row.golden_status = "ok" if not drift else "drift"
            row.messages.extend(drift)
        invariants_ok = invariants["ok"]
        golden_ok = row.golden_status in ("ok", "blessed")
        if invariants_ok and golden_ok:
            row.status = "blessed" if bless else "ok"
        result.rows.append(row)

    if with_differential:
        for protocol in DIFFERENTIAL_PROTOCOLS:
            say(f"differential sim<->live: {protocol} "
                f"({differential_duration:g}s wall clock)")
            result.differential.append(
                run_differential(protocol, duration=differential_duration))

    if with_mutation:
        say("mutation smoke: seeded defects vs the oracles")
        result.mutants = run_mutation_smoke(golden_dir=golden_dir)

    return result
