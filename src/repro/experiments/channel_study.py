"""§3 channel measurements: Figs 1–4 and the predictor study.

These experiments characterise the *channel*, not any congestion
controller: burst arrival patterns (Fig 1), burst size / inter-arrival
distributions across operators and technologies (Fig 2), competing-traffic
delay impact (Fig 3), windowed throughput variability (Fig 4) and the
failure of simple predictors (§3, "Channel Unpredictability").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cellular import (
    CellularChannelModel,
    CompetingUser,
    compare_predictors,
    detect_bursts,
    log_pdf,
    operator_presets,
    scenario_params,
)
from ..cellular.bursts import BurstStats
from ..metrics import flow_stats, windowed_throughput
from ..netsim import Simulator, SinkReceiver, TraceLink, OnOffSource, DropTailQueue
from ..netsim.flow import SenderProtocol


# ----------------------------------------------------------------------
# Fig 1 — burst arrival pattern on an LTE 10 Mbps downlink
# ----------------------------------------------------------------------
@dataclass
class BurstArrivalResult:
    """A window of per-packet (arrival time, delay) points, as in Fig 1."""

    times: np.ndarray
    delays: np.ndarray
    stats: BurstStats


def fig1_burst_arrivals(duration: float = 90.0, window: Tuple[float, float] = (85.0, 85.3),
                        seed: int = 7) -> BurstArrivalResult:
    """Send a smooth 10 Mbps stream over an LTE channel and observe the
    bursty arrival pattern with per-packet delays, as Fig 1 does."""
    params = scenario_params("city_stationary", technology="lte",
                             mean_rate_bps=12e6)
    model = CellularChannelModel(params, rng=np.random.default_rng(seed))
    trace = model.generate(duration)

    sim = Simulator()
    link = TraceLink(sim, trace, delay=0.03, loop=False)
    source = OnOffSource(0, rate_bps=10e6)
    sink = SinkReceiver(0)
    sink.attach(sim, lambda packet: None)
    link.dst = sink.on_data
    source.attach(sim, link.send)
    sim.schedule_at(0.0, source.start)
    sim.run(until=duration)

    rows = [(t, d) for (t, s, d, b) in sink.deliveries
            if window[0] <= t <= window[1]]
    times = np.array([r[0] for r in rows])
    delays = np.array([r[1] for r in rows])
    all_times = np.array([t for (t, s, d, b) in sink.deliveries])
    return BurstArrivalResult(times=times, delays=delays,
                              stats=detect_bursts(all_times))


# ----------------------------------------------------------------------
# Fig 2 — burst size and inter-arrival PDFs, 2 operators × {3G, LTE}
# ----------------------------------------------------------------------
@dataclass
class BurstPdfResult:
    """Per-configuration burst statistics and log-binned PDFs."""

    stats: Dict[str, BurstStats]
    size_pdfs: Dict[str, Tuple[np.ndarray, np.ndarray]]
    interarrival_pdfs: Dict[str, Tuple[np.ndarray, np.ndarray]]

    def summary_rows(self) -> List[dict]:
        rows = []
        for label, stats in self.stats.items():
            row = {"config": label}
            row.update(stats.summary())
            rows.append(row)
        return rows


def fig2_burst_pdfs(duration: float = 300.0, seed: int = 11) -> BurstPdfResult:
    """Five-minute stationary downlink traces for Du/Etisalat × 3G/LTE,
    reduced to burst-size and inter-arrival distributions (Fig 2)."""
    stats: Dict[str, BurstStats] = {}
    size_pdfs = {}
    inter_pdfs = {}
    for i, (label, params) in enumerate(sorted(operator_presets().items())):
        model = CellularChannelModel(params, rng=np.random.default_rng(seed + i))
        trace = model.generate(duration)
        burst = detect_bursts(trace)
        stats[label] = burst
        size_pdfs[label] = log_pdf(burst.sizes_bytes)
        inter_pdfs[label] = log_pdf(burst.inter_arrivals * 1e3)  # ms
    return BurstPdfResult(stats=stats, size_pdfs=size_pdfs,
                          interarrival_pdfs=inter_pdfs)


# ----------------------------------------------------------------------
# Fig 3 — impact of competing traffic on packet delay
# ----------------------------------------------------------------------
@dataclass
class CompetingTrafficResult:
    """Average user-1 delay with user 2 OFF vs ON, per user-1 rate."""

    rows: List[dict]

    def as_rows(self) -> List[dict]:
        return self.rows


def fig3_competing_traffic(user1_rates_mbps: Tuple[float, ...] = (1.0, 5.0, 10.0),
                           capacity_mbps: float = 21.0,
                           duration: float = 240.0,
                           on_off_period: float = 60.0,
                           seed: int = 23) -> CompetingTrafficResult:
    """User 1 receives CBR at 1/5/10 Mbps over a 3G cell while user 2
    toggles a 10 Mbps flow every minute; reports user 1's average packet
    delay in OFF vs ON periods (Fig 3)."""
    rows = []
    for k, rate in enumerate(user1_rates_mbps):
        user2 = CompetingUser.on_off(rate_bps=10e6, period=on_off_period,
                                     duration=duration, start_on=False)
        params = scenario_params("city_stationary", technology="3g",
                                 mean_rate_bps=capacity_mbps * 1e6)
        model = CellularChannelModel(params, rng=np.random.default_rng(seed + k))
        trace = model.generate(duration, capacity_bps=capacity_mbps * 1e6,
                               competitors=[user2])

        sim = Simulator()
        link = TraceLink(sim, trace, delay=0.03, loop=False,
                         queue=DropTailQueue())
        source = OnOffSource(0, rate_bps=rate * 1e6)
        sink = SinkReceiver(0)
        sink.attach(sim, lambda packet: None)
        link.dst = sink.on_data
        source.attach(sim, link.send)
        sim.schedule_at(0.0, source.start)
        sim.run(until=duration)

        on_delays, off_delays = [], []
        for (t, s, d, b) in sink.deliveries:
            if t < 5.0:
                continue
            if user2.demand_at(t) > 0:
                on_delays.append(d)
            else:
                off_delays.append(d)
        rows.append({
            "user1_rate_mbps": rate,
            "avg_delay_off_ms": float(np.mean(off_delays) * 1e3) if off_delays else float("nan"),
            "avg_delay_on_ms": float(np.mean(on_delays) * 1e3) if on_delays else float("nan"),
        })
    return CompetingTrafficResult(rows=rows)


# ----------------------------------------------------------------------
# Fig 4 — windowed throughput + §3 predictor comparison
# ----------------------------------------------------------------------
@dataclass
class UnpredictabilityResult:
    """Windowed throughput series plus predictor scores."""

    window_100ms: Tuple[np.ndarray, np.ndarray]
    window_20ms: Tuple[np.ndarray, np.ndarray]
    predictor_rows: List[dict]

    def variability(self, series: np.ndarray) -> float:
        """Coefficient of variation of a throughput series."""
        mean = float(np.mean(series))
        return float(np.std(series)) / mean if mean > 0 else float("inf")


def fig4_throughput_windows(duration: float = 180.0, seed: int = 31
                            ) -> UnpredictabilityResult:
    """A 3G stationary 10 Mbps downlink binned at 100 ms and 20 ms
    (Fig 4), plus the linear / k-step predictor study of §3."""
    params = scenario_params("city_stationary", technology="3g",
                             mean_rate_bps=10e6)
    model = CellularChannelModel(params, rng=np.random.default_rng(seed))
    trace = model.generate(duration)
    deliveries = [(t, i, 0.0, params.packet_bytes)
                  for i, t in enumerate(trace)]

    w100 = windowed_throughput(deliveries, 0.100, end=duration)
    w20 = windowed_throughput(deliveries, 0.020, end=duration)

    predictor_rows = []
    for label, (_, series), horizon in (("100ms_1step", w100, 1),
                                        ("20ms_1step", w20, 1),
                                        ("20ms_5step", w20, 5)):
        for score in compare_predictors(series, horizon=horizon):
            predictor_rows.append({
                "series": label,
                "predictor": score.name,
                "rmse_mbps": score.rmse / 1e6,
                "rmse_vs_naive": score.rmse_vs_naive,
            })
    return UnpredictabilityResult(window_100ms=w100, window_20ms=w20,
                                  predictor_rows=predictor_rows)
