"""Plain-text rendering of experiment results.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(rows: Sequence[Dict], columns: Optional[List[str]] = None,
                 title: str = "") -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(val.ljust(w) for val, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Iterable, ys: Iterable,
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 24) -> str:
    """Render an (x, y) series compactly, subsampled for readability."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    step = max(1, len(xs) // max_points)
    pairs = [f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs[::step], ys[::step])]
    return f"{name} [{x_label} -> {y_label}]: " + " ".join(pairs)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
