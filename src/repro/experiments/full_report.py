"""One-shot reproduction report: run every experiment, emit markdown.

``python -m repro report`` (or :func:`generate_report`) runs each paper
item at configurable fidelity, evaluates the same shape checks the
benchmarks assert, and writes a self-contained markdown report — the
artefact a reproduction study would attach to a paper review.

Items are submitted through the campaign executor
(:func:`repro.campaign.run_tasks`), which provides the uniform failure
path — one crashed figure becomes a failed row instead of aborting the
report — and, with ``jobs > 1``, runs items on a process pool.
"""

from __future__ import annotations

import io
from contextlib import redirect_stdout
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .report import format_table


@dataclass
class ItemResult:
    """Outcome of one reproduced figure/table."""

    item: str
    description: str
    shape_ok: bool
    details: List[str] = field(default_factory=list)
    seconds: float = 0.0
    error: Optional[str] = None


def _fig3(duration: float) -> ItemResult:
    from .channel_study import fig3_competing_traffic
    result = fig3_competing_traffic(duration=max(duration, 120.0))
    jumps = [row["avg_delay_on_ms"] - row["avg_delay_off_ms"]
             for row in result.rows]
    ok = all(j > 0 for j in jumps) and jumps[-1] == max(jumps)
    details = [f"{row['user1_rate_mbps']:.0f} Mbps: "
               f"{row['avg_delay_off_ms']:.0f} -> {row['avg_delay_on_ms']:.0f} ms"
               for row in result.rows]
    return ItemResult("fig3", "competing traffic raises delay", ok, details)


def _fig4(duration: float) -> ItemResult:
    from .channel_study import fig4_throughput_windows
    result = fig4_throughput_windows(duration=duration)
    cv100 = result.variability(result.window_100ms[1])
    cv20 = result.variability(result.window_20ms[1])
    ok = cv20 > cv100 > 0.2
    return ItemResult("fig4", "throughput variability across windows", ok,
                      [f"CV@100ms={cv100:.2f}", f"CV@20ms={cv20:.2f}"])


def _fig9(duration: float) -> ItemResult:
    from .macro import check_fig9_shape, fig9_r_tradeoff
    points = fig9_r_tradeoff(duration=duration, repetitions=1,
                             technologies=("3g",))
    checks = check_fig9_shape(points)
    details = [f"{p.protocol}: {p.mean_throughput_mbps:.2f} Mbps @ "
               f"{p.mean_delay_ms:.0f} ms" for p in points]
    return ItemResult("fig9", "R trades delay for throughput",
                      all(checks.values()), details)


def _fig10(duration: float) -> ItemResult:
    from .tracedriven import fig10_mobility, summarize_fig10
    points = fig10_mobility(flows=5, duration=duration,
                            scenarios=("campus_pedestrian",))
    rows = summarize_fig10(points)
    by_proto = {r["protocol"]: r for r in rows}
    ok = (by_proto["verus_r2"]["mean_delay_ms"]
          < by_proto["cubic"]["mean_delay_ms"] / 2.5)
    details = [f"{r['protocol']}: {r['mean_throughput_mbps']:.2f} Mbps @ "
               f"{r['mean_delay_ms']:.0f} ms" for r in rows]
    return ItemResult("fig10", "order-of-magnitude delay gap vs TCP", ok,
                      details)


def _table1(duration: float) -> ItemResult:
    from .tracedriven import table1_fairness
    rows = table1_fairness(user_counts=(2, 10), duration=duration,
                           scenarios=("campus_pedestrian", "city_driving"))
    ok = all(0.0 < row[key] <= 1.0 for row in rows
             for key in row if key != "users")
    details = [str(row) for row in rows]
    return ItemResult("table1", "windowed Jain fairness", ok, details)


def _fig11(duration: float) -> ItemResult:
    from .micro import fig11_rapid_change
    result = fig11_rapid_change("II", duration=max(duration, 160.0))
    verus = result.stats["verus"]["throughput_bps"]
    sprout = result.stats["sprout"]["throughput_bps"]
    ok = verus > 0.9 * sprout
    return ItemResult(
        "fig11", "rapid change: Verus >= Sprout throughput", ok,
        [f"verus={verus / 1e6:.2f} Mbps", f"sprout={sprout / 1e6:.2f} Mbps"])


def _fig13(duration: float) -> ItemResult:
    # RTT-fairness needs the windowed D_min to converge (~2 window
    # horizons per flow), so it runs at its benchmark duration.
    from .micro import fig13_rtt_fairness
    result = fig13_rtt_fairness(duration=max(duration, 120.0))
    ok = (result["jain"] > 0.55
          and min(s.throughput_bps for s in result["stats"]) > 2e6)
    details = [f"jain={result['jain']:.3f}",
               f"max/min={result['max_over_min']:.2f}"]
    return ItemResult("fig13", "RTT fairness", ok, details)


def _fig15(duration: float) -> ItemResult:
    from .tracedriven import fig15_delay_ratio, fig15_static_profile
    rows = fig15_static_profile(scenarios=("city_driving", "shopping_mall"),
                                flows=3, duration=duration)
    ratio = fig15_delay_ratio(rows)
    ok = ratio < 1.1
    return ItemResult("fig15", "profile updates keep delay low", ok,
                      [f"updating/static delay ratio={ratio:.2f}"])


ITEMS: Dict[str, Callable[[float], ItemResult]] = {
    "fig3": _fig3,
    "fig4": _fig4,
    "fig9": _fig9,
    "fig10": _fig10,
    "table1": _table1,
    "fig11": _fig11,
    "fig13": _fig13,
    "fig15": _fig15,
}


def run_report_item(payload: dict) -> ItemResult:
    """Execute one report item, stdout silenced.

    Module-level so the campaign executor can ship it to pool workers;
    exceptions propagate into the executor's failure path.
    """
    with redirect_stdout(io.StringIO()):
        return ITEMS[payload["item"]](payload["duration"])


def generate_report(duration: float = 45.0,
                    items: Optional[List[str]] = None,
                    jobs: int = 1) -> str:
    """Run the selected (default: all) report items and return markdown.

    ``jobs`` > 1 fans the items out over the campaign engine's process
    pool; the default of 1 runs them serially in-process, exactly as
    before.
    """
    from ..campaign import run_tasks

    chosen = items if items is not None else list(ITEMS)
    for name in chosen:
        if name not in ITEMS:
            raise ValueError(f"unknown report item {name!r}; "
                             f"choose from {sorted(ITEMS)}")
    run = run_tasks([{"item": name, "duration": duration} for name in chosen],
                    run_report_item, jobs=jobs, retries=0)
    results: List[ItemResult] = []
    for name, outcome in zip(chosen, run.outcomes):
        if outcome.ok:
            result = outcome.result
        else:
            result = ItemResult(name, "crashed", False, error=outcome.error)
        result.seconds = outcome.seconds
        results.append(result)

    lines = ["# Verus reproduction report", ""]
    passed = sum(1 for r in results if r.shape_ok)
    lines.append(f"Shape checks passed: **{passed}/{len(results)}** "
                 f"(duration setting: {duration:.0f} s per run)")
    lines.append("")
    lines.append("| item | claim | shape | runtime |")
    lines.append("|---|---|---|---|")
    for result in results:
        mark = "✓" if result.shape_ok else "✗"
        lines.append(f"| {result.item} | {result.description} | {mark} | "
                     f"{result.seconds:.0f}s |")
    lines.append("")
    for result in results:
        lines.append(f"## {result.item}")
        if result.error:
            lines.append(f"ERROR: {result.error}")
        for detail in result.details:
            lines.append(f"- {detail}")
        lines.append("")
    return "\n".join(lines)
