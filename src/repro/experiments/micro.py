"""§7 micro-evaluation: Figs 11–14 on the tc-shaped dumbbell substitute.

* Fig 11 — rapidly changing network: every 5 s the link's capacity, RTT
  and loss rate are redrawn (scenario I: 10–100 Mbps; scenario II:
  2–20 Mbps, where the Sprout implementation cap stops mattering).
* Fig 12 — seven Verus flows arriving 30 s apart on a 90 Mbps bottleneck.
* Fig 13 — three Verus flows with RTTs 20/50/100 ms on 60 Mbps.
* Fig 14 — three Verus then three Cubic flows staggered onto 60 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics import flow_stats, jain_index, windowed_throughput
from ..netsim import LinkPhase, LinkSchedule
from .runner import (
    ExperimentResult,
    FlowSpec,
    repeat_flows,
    run_fixed_dumbbell,
    run_variable_dumbbell,
)


def rapid_change_schedule(duration: float, rate_lo_bps: float,
                          rate_hi_bps: float, seed: int,
                          period: float = 5.0) -> LinkSchedule:
    """The paper's §7 changing-network generator: every five seconds the
    capacity, RTT (10–100 ms one-way split) and loss (0–1%) are redrawn."""
    rng = np.random.default_rng(seed)
    return LinkSchedule.random_walk(
        duration=duration, period=period,
        rate_range_bps=(rate_lo_bps, rate_hi_bps),
        delay_range=(0.005, 0.050),  # one-way; RTT 10..100 ms
        loss_range=(0.0, 0.01),
        rng=rng)


@dataclass
class RapidChangeResult:
    """Per-protocol throughput/delay series against the capacity series."""

    schedule: LinkSchedule
    series: Dict[str, Tuple[np.ndarray, np.ndarray]]  # label -> (t, bps)
    delays: Dict[str, Tuple[np.ndarray, np.ndarray]]
    stats: Dict[str, dict]

    def utilization(self, label: str) -> float:
        """Fraction of the average scheduled capacity the protocol used."""
        mean_capacity = float(np.mean([p.rate_bps for p in self.schedule.phases]))
        return self.stats[label]["throughput_bps"] / mean_capacity


def fig11_rapid_change(scenario: str = "I", duration: float = 240.0,
                       seed: int = 3, window: float = 1.0
                       ) -> RapidChangeResult:
    """Fig 11: single flows of each protocol over the changing link.

    Scenario I varies capacity 10–100 Mbps (Sprout's 18 Mbps cap bites);
    scenario II varies 2–20 Mbps (Sprout recovers, Verus still ahead).
    """
    if scenario == "I":
        rates = (10e6, 100e6)
        protocols = [("verus", {"r": 2.0}), ("cubic", {}), ("vegas", {}),
                     ("sprout", {})]
    elif scenario == "II":
        rates = (2e6, 20e6)
        protocols = [("verus", {"r": 2.0}), ("sprout", {})]
    else:
        raise ValueError("scenario must be 'I' or 'II'")

    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    delays: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    stats: Dict[str, dict] = {}
    for protocol, options in protocols:
        schedule = rapid_change_schedule(duration, *rates, seed=seed)
        spec = FlowSpec(protocol=protocol, options=dict(options))
        result = run_variable_dumbbell(schedule, [spec], duration=duration,
                                       queue_bytes=2_000_000, seed=seed)
        deliveries = result.deliveries(0)
        t, tput = windowed_throughput(deliveries, window, end=duration)
        from ..metrics import windowed_delay
        td, dl = windowed_delay(deliveries, window, end=duration)
        series[protocol] = (t, tput)
        delays[protocol] = (td, dl)
        stat = result.stats(0)
        stats[protocol] = {
            "throughput_bps": stat.throughput_bps,
            "mean_delay_ms": stat.mean_delay_ms,
        }
    return RapidChangeResult(schedule=schedule, series=series,
                             delays=delays, stats=stats)


# ----------------------------------------------------------------------
@dataclass
class ArrivalResult:
    """Per-flow windowed throughput over time plus fairness numbers."""

    result: ExperimentResult
    series: Dict[int, Tuple[np.ndarray, np.ndarray]]
    final_jain: float
    first_flow_initial_share: float


def fig12_new_flows(flows: int = 7, stagger: float = 30.0,
                    rate_bps: float = 90e6, duration: Optional[float] = None,
                    window: float = 1.0, seed: int = 17) -> ArrivalResult:
    """Fig 12: a new Verus flow joins every 30 s on a 90 Mbps bottleneck;
    earlier flows shed bandwidth and the allocation stays fair."""
    if duration is None:
        duration = stagger * flows + 30.0
    specs = repeat_flows("verus", flows, start_stagger=stagger, r=2.0)
    result = run_fixed_dumbbell(rate_bps, specs, duration=duration,
                                rtt=0.02, queue_bytes=1_500_000, seed=seed)
    series = {
        i: windowed_throughput(result.deliveries(i), window, end=duration)
        for i in range(flows)
    }
    # Fairness over the final stretch when everyone is active.
    tail_start = (flows - 1) * stagger + 10.0
    tail = [flow_stats(result.deliveries(i), start=tail_start,
                       end=duration).throughput_bps
            for i in range(flows)]
    # Share of the link the first flow takes while alone.
    alone = flow_stats(result.deliveries(0), start=5.0,
                       end=stagger).throughput_bps
    return ArrivalResult(result=result, series=series,
                         final_jain=jain_index(tail),
                         first_flow_initial_share=alone / rate_bps)


def fig13_rtt_fairness(rtts: Sequence[float] = (0.020, 0.050, 0.100),
                       rate_bps: float = 60e6, duration: float = 120.0,
                       window: float = 1.0, seed: int = 19) -> dict:
    """Fig 13: Verus flows with different RTTs share close to equally
    (near max-min fair, unlike RTT-biased loss-based TCP)."""
    specs = [FlowSpec("verus", label=f"verus_{int(r * 1e3)}ms", rtt=r,
                      options={"r": 2.0})
             for r in rtts]
    result = run_fixed_dumbbell(rate_bps, specs, duration=duration,
                                rtt=0.02, queue_bytes=1_500_000, seed=seed)
    stats = result.all_stats()
    tputs = [s.throughput_bps for s in stats]
    return {
        "stats": stats,
        "jain": jain_index(tputs),
        "max_over_min": max(tputs) / max(min(tputs), 1.0),
        "series": {s.label: windowed_throughput(result.deliveries(i), window,
                                                end=duration)
                   for i, s in enumerate(stats)},
    }


def fig14_vs_cubic(rate_bps: float = 60e6, stagger: float = 30.0,
                   duration: float = 210.0, window: float = 1.0,
                   seed: int = 29) -> dict:
    """Fig 14: three Verus flows join at t=0/30/60 s, three Cubic flows at
    t=90/120/150 s; the bottleneck ends up shared about equally."""
    # The lifetime D_min (paper-literal) keeps Verus's delay tolerance
    # anchored to the uncongested path, which is what yields the paper's
    # near-equal sharing with loss-driven Cubic; see EXPERIMENTS.md.
    specs = [FlowSpec("verus", label=f"verus_{i+1}", start_at=i * stagger,
                      options={"r": 6.0, "dmin_window": None})
             for i in range(3)]
    specs += [FlowSpec("cubic", label=f"cubic_{i+1}",
                       start_at=(i + 3) * stagger)
              for i in range(3)]
    # 900 KB (~120 ms at 60 Mbps) sits at the coexistence point: deeper
    # buffers let Cubic's standing queue exceed Verus's R·D_min tolerance
    # (Verus yields), shallower ones turn Cubic's loss sawtooth against
    # it (Verus dominates).  See EXPERIMENTS.md.
    result = run_fixed_dumbbell(rate_bps, specs, duration=duration,
                                rtt=0.02, queue_bytes=900_000, seed=seed)
    tail_start = 5 * stagger + 10.0
    tail = {s.label: flow_stats(result.deliveries(i), start=tail_start,
                                end=duration).throughput_bps
            for i, s in enumerate(specs)}
    verus_share = sum(v for k, v in tail.items() if k.startswith("verus"))
    cubic_share = sum(v for k, v in tail.items() if k.startswith("cubic"))
    return {
        "result": result,
        "tail_throughputs_bps": tail,
        "verus_total_bps": verus_share,
        "cubic_total_bps": cubic_share,
        "verus_to_cubic_ratio": verus_share / max(cubic_share, 1.0),
        "jain_all": jain_index(list(tail.values())),
        "series": {s.label: windowed_throughput(result.deliveries(i), window,
                                                end=duration)
                   for i, s in enumerate(specs)},
    }
