"""Experiment harness: one entry point per paper figure/table.

============  =============================================
Paper item    Function
============  =============================================
Fig 1         :func:`channel_study.fig1_burst_arrivals`
Fig 2         :func:`channel_study.fig2_burst_pdfs`
Fig 3         :func:`channel_study.fig3_competing_traffic`
Fig 4 / §3    :func:`channel_study.fig4_throughput_windows`
Fig 5         :func:`profile_study.fig5_example_profile`
Fig 7         :func:`profile_study.fig7_profile_evolution`
Fig 8         :func:`macro.fig8_realworld`
Fig 9         :func:`macro.fig9_r_tradeoff`
Fig 10        :func:`tracedriven.fig10_mobility`
Table 1       :func:`tracedriven.table1_fairness`
Fig 11        :func:`micro.fig11_rapid_change`
Fig 12        :func:`micro.fig12_new_flows`
Fig 13        :func:`micro.fig13_rtt_fairness`
Fig 14        :func:`micro.fig14_vs_cubic`
Fig 15        :func:`tracedriven.fig15_static_profile`
§5.3 sweeps   :mod:`sensitivity`
============  =============================================
"""

from . import (
    channel_study,
    full_report,
    macro,
    micro,
    profile_study,
    sensitivity,
    short_flows,
    tracedriven,
    uplink,
)
from .report import format_series, format_table
from .runner import (
    PROTOCOL_NAMES,
    ExperimentResult,
    FlowSpec,
    make_endpoints,
    repeat_flows,
    run_fixed_dumbbell,
    run_trace_contention,
    run_variable_dumbbell,
    summary_stats,
)

__all__ = [
    "ExperimentResult",
    "FlowSpec",
    "PROTOCOL_NAMES",
    "channel_study",
    "format_series",
    "format_table",
    "full_report",
    "macro",
    "make_endpoints",
    "micro",
    "profile_study",
    "repeat_flows",
    "run_fixed_dumbbell",
    "run_trace_contention",
    "run_variable_dumbbell",
    "sensitivity",
    "short_flows",
    "summary_stats",
    "tracedriven",
    "uplink",
]
