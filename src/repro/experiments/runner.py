"""Experiment runners: wire protocols onto topologies and collect stats.

Three topology archetypes cover every experiment in the paper:

* **trace-driven contention** (§6.2): N flows share a cellular
  :class:`~repro.netsim.trace_link.TraceLink` behind the paper's RED queue;
* **fixed dumbbell** (§7): N flows share a constant-rate bottleneck, as in
  the ``tc``-shaped Ethernet micro-evaluations;
* **variable dumbbell** (§7 "rapidly changing networks"): the bottleneck
  follows a :class:`~repro.netsim.link.LinkSchedule`.

Protocols are referred to by name (``verus``, ``cubic``, ``newreno``,
``vegas``, ``sprout``) via :func:`make_endpoints`, so experiment code and
benchmarks stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import VerusConfig, VerusReceiver, VerusSender
from ..metrics import FlowStats, flow_stats
from ..netsim import (
    Dumbbell,
    Link,
    LinkSchedule,
    REDQueue,
    Simulator,
    TraceLink,
    VariableLink,
)
from ..netsim.flow import ReceiverProtocol, SenderProtocol
from ..pcc import PccReceiver, PccSender
from ..sprout import SproutForecaster, SproutReceiver, SproutSender
from ..tcp import (
    BinomialSender,
    CompoundSender,
    CubicSender,
    LedbatSender,
    NewRenoSender,
    TcpReceiver,
    VegasSender,
)

PROTOCOL_NAMES = ("verus", "cubic", "newreno", "vegas", "sprout",
                  "pcc", "ledbat", "compound", "binomial")


@dataclass
class FlowSpec:
    """Declarative description of one flow in an experiment."""

    protocol: str
    label: str = ""
    start_at: float = 0.0
    rtt: Optional[float] = None
    options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {PROTOCOL_NAMES}")
        if not self.label:
            self.label = self.protocol


def make_endpoints(spec: FlowSpec, flow_id: int
                   ) -> Tuple[SenderProtocol, ReceiverProtocol]:
    """Instantiate the sender/receiver pair for a flow spec."""
    opts = dict(spec.options)
    if spec.protocol == "verus":
        config = opts.pop("config", None)
        if config is None:
            config = VerusConfig(**opts)
        return VerusSender(flow_id, config), VerusReceiver(flow_id)
    if spec.protocol == "cubic":
        return CubicSender(flow_id, **opts), TcpReceiver(flow_id)
    if spec.protocol == "newreno":
        return NewRenoSender(flow_id, **opts), TcpReceiver(flow_id)
    if spec.protocol == "vegas":
        return VegasSender(flow_id, **opts), TcpReceiver(flow_id)
    if spec.protocol == "sprout":
        sender_opts = {k: opts.pop(k) for k in ("rate_cap_bps",)
                       if k in opts}
        forecaster = SproutForecaster(**opts) if opts else None
        return (SproutSender(flow_id, **sender_opts),
                SproutReceiver(flow_id, forecaster))
    if spec.protocol == "pcc":
        return PccSender(flow_id, **opts), PccReceiver(flow_id)
    if spec.protocol == "ledbat":
        return LedbatSender(flow_id, **opts), TcpReceiver(flow_id)
    if spec.protocol == "compound":
        return CompoundSender(flow_id, **opts), TcpReceiver(flow_id)
    if spec.protocol == "binomial":
        return BinomialSender(flow_id, **opts), TcpReceiver(flow_id)
    raise ValueError(f"unknown protocol {spec.protocol!r}")


@dataclass
class ExperimentResult:
    """Everything an experiment produced, per flow."""

    specs: List[FlowSpec]
    senders: List[SenderProtocol]
    receivers: List[ReceiverProtocol]
    duration: float
    warmup: float
    #: Set when the run ended early or lost a peer (live path teardown,
    #: fault-injected blackout that never healed, ...).  Stats computed
    #: from a degraded result cover only the time actually run.
    degraded: bool = False
    degraded_reason: Optional[str] = None
    #: Structured code from the resilience taxonomy ("hang", "degraded",
    #: ...) alongside the human-readable reason string above, so triage
    #: does not have to parse prose.
    degraded_code: Optional[str] = None

    def deliveries(self, flow_id: int):
        return self.receivers[flow_id].deliveries

    def per_flow_deliveries(self) -> Dict[int, list]:
        return {i: r.deliveries for i, r in enumerate(self.receivers)}

    def stats(self, flow_id: int) -> FlowStats:
        spec = self.specs[flow_id]
        return flow_stats(self.receivers[flow_id].deliveries,
                          flow_id=flow_id, label=spec.label,
                          start=max(self.warmup, spec.start_at),
                          end=self.duration)

    def all_stats(self) -> List[FlowStats]:
        return [self.stats(i) for i in range(len(self.specs))]

    def stats_by_label(self) -> Dict[str, List[FlowStats]]:
        grouped: Dict[str, List[FlowStats]] = {}
        for stat in self.all_stats():
            grouped.setdefault(stat.label, []).append(stat)
        return grouped

    def summary(self) -> dict:
        """JSON-safe summary of the experiment: per-flow statistics plus
        the spec each flow ran under.  Live sender/receiver objects (and
        their delivery logs) are dropped, so the payload can be persisted
        by the campaign result store and reloaded with
        :func:`summary_stats`."""
        return {
            "duration": float(self.duration),
            "warmup": float(self.warmup),
            "degraded": bool(self.degraded),
            "degraded_reason": self.degraded_reason,
            "degraded_code": self.degraded_code,
            "flows": [
                {
                    "protocol": spec.protocol,
                    "label": spec.label,
                    "start_at": float(spec.start_at),
                    "stats": stat.to_dict(),
                }
                for spec, stat in zip(self.specs, self.all_stats())
            ],
        }


def summary_stats(summary: dict) -> List[FlowStats]:
    """Rehydrate the :class:`FlowStats` list from a ``summary()`` payload."""
    return [FlowStats.from_dict(flow["stats"]) for flow in summary["flows"]]


def _run_dumbbell(sim: Simulator, bottleneck, specs: Sequence[FlowSpec],
                  duration: float, default_rtt: float,
                  warmup: float) -> ExperimentResult:
    # ACKs on the clean reverse path are dead once the sender's handler
    # returns, so every plain (fault-free) experiment recycles them.
    bell = Dumbbell(sim, bottleneck, default_rtt=default_rtt, ack_pool=True)
    senders, receivers = [], []
    for flow_id, spec in enumerate(specs):
        sender, receiver = make_endpoints(spec, flow_id)
        bell.add_flow(sender, receiver, rtt=spec.rtt, start_at=spec.start_at)
        senders.append(sender)
        receivers.append(receiver)
    # Telemetry seam: when a session is active (repro run/sweep
    # --telemetry), attach timeline recorders to every flow.  The local
    # import keeps repro.obs out of the hot import path, and the common
    # no-session case costs one None check per experiment.
    from ..obs.timeline import current_session
    session = current_session()
    if session is not None:
        session.attach(sim, senders, specs=specs, receivers=receivers)
    sim.run(until=duration)
    if session is not None:
        session.finalize(sim)
    return ExperimentResult(list(specs), senders, receivers, duration, warmup)


def run_trace_contention(trace: np.ndarray, specs: Sequence[FlowSpec],
                         duration: float, rtt: float = 0.01,
                         access_delay: float = 0.005,
                         use_red: bool = True,
                         loss_rate: float = 0.0,
                         warmup: float = 5.0,
                         seed: int = 0) -> ExperimentResult:
    """§6.2 setup: flows share a replayed cellular trace behind RED.

    The RED queue uses the paper's parameters (min 3 Mbit, max 9 Mbit,
    drop probability 10%); ``access_delay`` models the core-network path
    between the server and the base station.
    """
    sim = Simulator()
    rng = np.random.default_rng(seed)
    queue = REDQueue.paper_config(rng=rng) if use_red else None
    bottleneck = TraceLink(sim, trace, queue=queue, delay=access_delay,
                           loop=True, loss_rate=loss_rate, rng=rng)
    return _run_dumbbell(sim, bottleneck, specs, duration, rtt, warmup)


def run_fixed_dumbbell(rate_bps: float, specs: Sequence[FlowSpec],
                       duration: float, rtt: float = 0.05,
                       queue_bytes: Optional[int] = None,
                       loss_rate: float = 0.0,
                       warmup: float = 5.0,
                       seed: int = 0) -> ExperimentResult:
    """§7 setup: constant-rate Ethernet bottleneck (the tc testbed)."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    from ..netsim import DropTailQueue
    queue = DropTailQueue(capacity_bytes=queue_bytes)
    bottleneck = Link(sim, rate_bps, queue=queue, loss_rate=loss_rate, rng=rng)
    return _run_dumbbell(sim, bottleneck, specs, duration, rtt, warmup)


def run_variable_dumbbell(schedule: LinkSchedule, specs: Sequence[FlowSpec],
                          duration: float, rtt: float = 0.02,
                          queue_bytes: Optional[int] = 3_000_000,
                          warmup: float = 5.0,
                          seed: int = 0) -> ExperimentResult:
    """§7 "rapidly changing network": schedule-driven bottleneck."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    from ..netsim import DropTailQueue
    queue = DropTailQueue(capacity_bytes=queue_bytes)
    bottleneck = VariableLink(sim, schedule, queue=queue, rng=rng)
    return _run_dumbbell(sim, bottleneck, specs, duration, rtt, warmup)


def repeat_flows(protocol: str, count: int, label: Optional[str] = None,
                 start_stagger: float = 0.0, **options) -> List[FlowSpec]:
    """Convenience: N identical flows, optionally staggered in time."""
    if count < 1:
        raise ValueError("count must be at least 1")
    return [FlowSpec(protocol=protocol,
                     label=label if label is not None else protocol,
                     start_at=i * start_stagger, options=dict(options))
            for i in range(count)]
