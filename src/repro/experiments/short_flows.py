"""§7 "Short Flows": flow-completion time for finite transfers.

The paper argues Verus naturally handles short flows: a transfer that
never leaves slow start behaves like legacy TCP, and one that does gets
the delay profile's fast adaptation.  This experiment quantifies that as
flow-completion time (FCT) over a range of transfer sizes on a cellular
channel, for Verus vs the TCP baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cellular import generate_scenario_trace
from ..core import VerusConfig, VerusReceiver, VerusSender
from ..netsim import REDQueue, Simulator, TraceLink
from ..netsim.topology import Dumbbell
from ..tcp import CubicSender, NewRenoSender, TcpReceiver

#: Transfer sizes swept by default: a small web object up to a video chunk.
DEFAULT_SIZES_BYTES = (50_000, 200_000, 1_000_000, 5_000_000)


def _make_finite_flow(protocol: str, flow_id: int, size: int):
    if protocol == "verus":
        return (VerusSender(flow_id, VerusConfig(), transfer_bytes=size),
                VerusReceiver(flow_id))
    if protocol == "cubic":
        return (CubicSender(flow_id, transfer_bytes=size),
                TcpReceiver(flow_id))
    if protocol == "newreno":
        return (NewRenoSender(flow_id, transfer_bytes=size),
                TcpReceiver(flow_id))
    raise ValueError(f"short-flow experiment does not support {protocol!r}")


def measure_fct(protocol: str, size_bytes: int, trace: np.ndarray,
                rtt: float = 0.05, timeout: float = 120.0,
                seed: int = 0) -> Optional[float]:
    """Flow-completion time of one finite transfer over a trace.

    Returns None when the transfer does not finish within ``timeout``.
    """
    sim = Simulator()
    rng = np.random.default_rng(seed)
    link = TraceLink(sim, trace, queue=REDQueue.paper_config(rng=rng),
                     delay=0.005, loop=True, rng=rng)
    bell = Dumbbell(sim, link, default_rtt=rtt)
    sender, receiver = _make_finite_flow(protocol, 0, size_bytes)
    bell.add_flow(sender, receiver)
    sim.run(until=timeout)
    return sender.completion_time


def fct_sweep(sizes: Sequence[int] = DEFAULT_SIZES_BYTES,
              protocols: Sequence[str] = ("verus", "cubic", "newreno"),
              scenario: str = "campus_pedestrian",
              technology: str = "3g",
              cell_rate_bps: float = 10e6,
              duration: float = 120.0,
              repetitions: int = 3,
              seed: int = 37) -> List[Dict]:
    """FCT per (protocol, size), averaged over channel seeds."""
    rows: List[Dict] = []
    for size in sizes:
        row: Dict[str, object] = {"size_kb": size // 1000}
        for protocol in protocols:
            fcts = []
            for rep in range(repetitions):
                trace = generate_scenario_trace(
                    scenario, duration=duration, technology=technology,
                    mean_rate_bps=cell_rate_bps, seed=seed + 13 * rep)
                fct = measure_fct(protocol, size, trace,
                                  timeout=duration, seed=seed + rep)
                if fct is not None:
                    fcts.append(fct)
            row[f"{protocol}_fct_s"] = (float(np.mean(fcts)) if fcts
                                        else float("nan"))
        rows.append(row)
    return rows


def verus_competitive_ratio(rows: List[Dict],
                            baseline: str = "cubic") -> float:
    """Geometric-mean FCT ratio Verus/baseline across sizes (< 1 = faster)."""
    ratios = []
    for row in rows:
        verus = row.get("verus_fct_s")
        base = row.get(f"{baseline}_fct_s")
        if verus and base and np.isfinite(verus) and np.isfinite(base):
            ratios.append(verus / base)
    if not ratios:
        return float("nan")
    return float(np.exp(np.mean(np.log(ratios))))
