"""§6.1 real-world macro evaluation: Figs 8 and 9.

The paper's setup: three phones, each running three flows of one protocol
at a time, on Etisalat 3G and LTE downlinks; two-minute runs repeated five
times; flows averaged.  Here the "real world" is the synthetic cellular
channel (DESIGN.md substitution table); each protocol's nine flows share
one cell through the base station's deep drop-tail buffer, repeated over
independent channel seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cellular import CellularChannelModel, scenario_params
from ..metrics import aggregate_stats
from .runner import FlowSpec, repeat_flows, run_trace_contention

#: Cell capacities for the macro experiments (whole-cell, shared by 9 flows).
MACRO_RATE_BPS = {"3g": 16e6, "lte": 40e6}

#: Replacement channel source: ``(technology, repetition) -> seconds
#: array``.  Lets the macro experiments run over pinned corpus traces
#: (e.g. the committed fig8 mini-corpus) instead of fresh synthesis.
TraceProvider = Callable[[str, int], np.ndarray]


@dataclass
class MacroPoint:
    """One protocol's averaged (delay, throughput) point, as in Fig 8/9."""

    protocol: str
    technology: str
    mean_throughput_mbps: float
    mean_delay_ms: float
    runs: int

    def as_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "technology": self.technology,
            "throughput_mbps": round(self.mean_throughput_mbps, 3),
            "delay_ms": round(self.mean_delay_ms, 1),
        }


def _macro_trace(technology: str, duration: float, seed: int) -> np.ndarray:
    params = scenario_params("city_stationary", technology=technology,
                             mean_rate_bps=MACRO_RATE_BPS[technology])
    model = CellularChannelModel(params, rng=np.random.default_rng(seed))
    return model.generate(duration)


def _run_protocol(protocol: str, technology: str, duration: float,
                  repetitions: int, flows: int, seed: int,
                  options: Optional[dict] = None,
                  trace_provider: Optional[TraceProvider] = None
                  ) -> MacroPoint:
    options = dict(options or {})
    if protocol == "verus":
        # Paper-literal lifetime D_min: the macro scenario (homogeneous
        # flows starting together on one cell) needs no windowed-floor
        # rescue, and the windowed floor's creep would inflate the R=6
        # operating delay beyond what the paper shows.
        options.setdefault("dmin_window", None)
    throughputs: List[float] = []
    delays: List[float] = []
    for rep in range(repetitions):
        if trace_provider is not None:
            trace = trace_provider(technology, rep)
        else:
            trace = _macro_trace(technology, duration, seed + 101 * rep)
        specs = repeat_flows(protocol, flows, **options)
        # No residual stochastic loss: cellular link layers hide radio
        # loss behind HARQ/RLC retransmission, which is exactly why
        # loss-based TCP gets to bloat the base-station buffer (and why
        # the paper measures multi-second Cubic delays).
        result = run_trace_contention(trace, specs, duration=duration,
                                      use_red=False, seed=seed + rep,
                                      loss_rate=0.0)
        agg = aggregate_stats(result.all_stats())
        throughputs.append(agg["mean_throughput_mbps"])
        delays.append(agg["mean_delay_ms"])
    return MacroPoint(protocol=options.get("label", protocol),
                      technology=technology,
                      mean_throughput_mbps=float(np.mean(throughputs)),
                      mean_delay_ms=float(np.mean(delays)),
                      runs=repetitions)


def fig8_realworld(duration: float = 60.0, repetitions: int = 2,
                   flows: int = 9, seed: int = 42,
                   technologies: Sequence[str] = ("3g", "lte"),
                   trace_provider: Optional[TraceProvider] = None
                   ) -> List[MacroPoint]:
    """Fig 8: Cubic, Vegas, Verus (R=6) and Sprout on 3G and LTE.

    The paper's observations to reproduce: Verus delay is an order of
    magnitude below Cubic/Vegas; Verus throughput is comparable to or
    slightly above Cubic; Verus sits near Sprout with slightly higher
    throughput and delay.

    ``trace_provider`` replaces per-repetition synthesis with replayed
    traces (every protocol still sees the same channel per repetition).
    """
    protocols = [
        ("cubic", {}),
        ("vegas", {}),
        ("verus", {"r": 6.0, "label": "verus_r6"}),
        ("sprout", {}),
    ]
    points = []
    for technology in technologies:
        for protocol, options in protocols:
            opts = dict(options)
            label = opts.pop("label", protocol)
            point = _run_protocol(protocol, technology, duration,
                                  repetitions, flows, seed,
                                  {**opts, "label": label},
                                  trace_provider=trace_provider)
            points.append(point)
    return points


def fig9_r_tradeoff(duration: float = 60.0, repetitions: int = 2,
                    flows: int = 9, seed: int = 77,
                    r_values: Sequence[float] = (2.0, 4.0, 6.0),
                    technologies: Sequence[str] = ("3g", "lte")
                    ) -> List[MacroPoint]:
    """Fig 9: the R knob trades delay for throughput monotonically."""
    points = []
    for technology in technologies:
        for r in r_values:
            point = _run_protocol("verus", technology, duration, repetitions,
                                  flows, seed, {"r": r, "label": f"verus_r{int(r)}"})
            points.append(point)
    return points


def check_fig8_shape(points: List[MacroPoint]) -> Dict[str, bool]:
    """Shape assertions from the paper, per technology."""
    checks = {}
    for technology in {p.technology for p in points}:
        by_proto = {p.protocol: p for p in points if p.technology == technology}
        cubic = by_proto.get("cubic")
        verus = by_proto.get("verus_r6")
        sprout = by_proto.get("sprout")
        if cubic and verus:
            checks[f"{technology}:verus_delay_much_lower_than_cubic"] = (
                verus.mean_delay_ms < cubic.mean_delay_ms / 2.0)
            checks[f"{technology}:verus_throughput_comparable"] = (
                verus.mean_throughput_mbps > 0.6 * cubic.mean_throughput_mbps)
        if sprout and verus:
            checks[f"{technology}:verus_throughput_at_least_sprout"] = (
                verus.mean_throughput_mbps >= 0.9 * sprout.mean_throughput_mbps)
    return checks


def check_fig9_shape(points: List[MacroPoint]) -> Dict[str, bool]:
    """Higher R must buy throughput at the cost of delay."""
    checks = {}
    for technology in {p.technology for p in points}:
        ordered = sorted((p for p in points if p.technology == technology),
                         key=lambda p: p.protocol)  # r2 < r4 < r6 lexically
        if len(ordered) >= 2:
            lo, hi = ordered[0], ordered[-1]
            checks[f"{technology}:delay_increases_with_r"] = (
                hi.mean_delay_ms > lo.mean_delay_ms)
            checks[f"{technology}:throughput_increases_with_r"] = (
                hi.mean_throughput_mbps > lo.mean_throughput_mbps)
    return checks
