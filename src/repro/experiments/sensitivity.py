"""§5.3 parameter sensitivity: epoch ε, profile update interval, δ1/δ2.

The paper selected ε = 5 ms, a 1 s re-interpolation interval and
δ1/δ2 = 1/2 ms through OPNET sweeps over the seven collected traces.
These sweeps regenerate that analysis on the synthetic traces, reporting
throughput/delay per setting so the chosen defaults can be justified.

Settings are submitted through the campaign engine
(:func:`repro.campaign.run_campaign`), so sweeps can fan out over a
process pool (``jobs``) and reuse cached cells (``cache_dir``); the
defaults — serial, uncached — reproduce the historical behaviour
exactly, down to the per-setting seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..metrics import aggregate_stats
from .runner import summary_stats


def _sweep(overrides_list: List[dict], labels: List[str],
           scenario: str = "campus_pedestrian", flows: int = 3,
           duration: float = 60.0, technology: str = "3g",
           cell_rate_bps: float = 10e6, seed: int = 61,
           jobs: int = 1, cache_dir: Optional[str] = None) -> List[dict]:
    from ..campaign import TaskSpec, run_campaign

    tasks = [TaskSpec(scenario=scenario, protocol="verus", flows=flows,
                      duration=duration, seed=seed, technology=technology,
                      cell_rate_bps=cell_rate_bps, label=label,
                      options={"r": 2.0, **overrides})
             for label, overrides in zip(labels, overrides_list)]
    campaign = run_campaign(tasks, jobs=jobs, cache_dir=cache_dir)
    rows = []
    for task, outcome in zip(campaign.tasks, campaign.outcomes):
        row = {"setting": task.label}
        if outcome.ok:
            agg = aggregate_stats(summary_stats(outcome.result))
            row["mean_throughput_mbps"] = agg["mean_throughput_mbps"]
            row["mean_delay_ms"] = agg["mean_delay_ms"]
        else:
            row["error"] = outcome.error
        rows.append(row)
    return rows


def sweep_epoch(epochs: Sequence[float] = (0.002, 0.005, 0.010, 0.020, 0.050),
                **kwargs) -> List[dict]:
    """ε sweep: small epochs react faster (the paper lands on 5 ms)."""
    return _sweep([{"epoch": e} for e in epochs],
                  [f"epoch_{e * 1e3:g}ms" for e in epochs], **kwargs)


def sweep_update_interval(intervals: Sequence[Optional[float]] = (0.25, 0.5, 1.0, 2.0, 5.0),
                          **kwargs) -> List[dict]:
    """Profile re-interpolation interval sweep (paper: 1 s)."""
    return _sweep([{"profile_update_interval": i} for i in intervals],
                  [f"update_{i:g}s" for i in intervals], **kwargs)


def sweep_deltas(pairs: Sequence[tuple] = ((0.0005, 0.001), (0.001, 0.001),
                                           (0.001, 0.002), (0.002, 0.002),
                                           (0.002, 0.004)),
                 **kwargs) -> List[dict]:
    """δ1/δ2 sweep with the paper's constraint δ1 ≤ δ2."""
    return _sweep([{"delta1": d1, "delta2": d2} for d1, d2 in pairs],
                  [f"d{d1 * 1e3:g}_{d2 * 1e3:g}ms" for d1, d2 in pairs],
                  **kwargs)


def sweep_alpha(alphas: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
                **kwargs) -> List[dict]:
    """EWMA α of eq. 2 (not pinned by the paper; default 0.7 here)."""
    return _sweep([{"alpha": a} for a in alphas],
                  [f"alpha_{a:g}" for a in alphas], **kwargs)
