"""Uplink evaluation (§6.2: "the observations are similar for the uplink").

The paper collects uplink traces at 2.5 Mbps (3G HSPA+) alongside the
downlink ones and reports that every §6.2 observation carries over.
This experiment reruns the core trace-driven comparison on uplink
channel presets: sparser grant scheduling, uplink provisioning rates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..cellular import generate_scenario_trace
from ..metrics import aggregate_stats
from .runner import repeat_flows, run_trace_contention

UPLINK_PROTOCOLS = (
    ("verus", {"r": 2.0}),
    ("cubic", {}),
    ("newreno", {}),
)


def uplink_comparison(scenario: str = "campus_pedestrian",
                      flows: int = 5, duration: float = 60.0,
                      technology: str = "3g",
                      cell_rate_bps: float = 8e6,
                      seed: int = 41) -> List[Dict]:
    """Per-protocol mean throughput/delay on an uplink channel."""
    trace = generate_scenario_trace(scenario, duration=duration,
                                    technology=technology,
                                    mean_rate_bps=cell_rate_bps,
                                    direction="uplink", seed=seed)
    rows = []
    for protocol, options in UPLINK_PROTOCOLS:
        specs = repeat_flows(protocol, flows, **options)
        result = run_trace_contention(trace, specs, duration=duration,
                                      seed=seed)
        agg = aggregate_stats(result.all_stats())
        rows.append({
            "protocol": protocol,
            "direction": "uplink",
            "mean_throughput_mbps": agg["mean_throughput_mbps"],
            "mean_delay_ms": agg["mean_delay_ms"],
        })
    return rows


def observations_carry_over(rows: Sequence[Dict]) -> Dict[str, bool]:
    """The §6.2 observations, checked on the uplink rows."""
    by_protocol = {row["protocol"]: row for row in rows}
    verus = by_protocol["verus"]
    cubic = by_protocol["cubic"]
    return {
        "verus_delay_far_below_cubic":
            verus["mean_delay_ms"] < cubic["mean_delay_ms"] / 2.5,
        "verus_throughput_comparable":
            verus["mean_throughput_mbps"]
            > 0.4 * cubic["mean_throughput_mbps"],
    }
