"""Delay-profile introspection: Fig 5 (example profile) and Fig 7
(profile evolution with the channel).

Runs a single Verus flow over a cellular trace with diagnostics enabled
and extracts the learned delay profile — the recorded (window, delay)
knots and the interpolated curve — at one instant (Fig 5) and as a
sequence of snapshots over time (Fig 7b), next to the channel's windowed
throughput (Fig 7a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..cellular import generate_scenario_trace
from ..core import VerusConfig
from ..metrics import windowed_throughput
from .runner import FlowSpec, run_trace_contention


@dataclass
class ProfileSnapshot:
    """The delay profile at one instant: knots plus interpolated curve."""

    time: float
    windows: np.ndarray
    delays_ms: np.ndarray

    @property
    def steepness(self) -> float:
        """Mean slope (ms per packet) — steeper means less capacity."""
        if self.windows.size < 2:
            return float("nan")
        span_w = float(self.windows[-1] - self.windows[0])
        span_d = float(self.delays_ms[-1] - self.delays_ms[0])
        return span_d / span_w if span_w > 0 else float("inf")

    @property
    def ls_slope(self) -> float:
        """Least-squares slope (ms per packet) over all knots — the
        robust steepness estimate (≈ 1/capacity on a saturated path)."""
        if self.windows.size < 5:
            return float("nan")
        return float(np.polyfit(self.windows, self.delays_ms, 1)[0])

    def window_at_delay(self, delay_ms: float) -> float:
        """Largest recorded window whose delay stays at or below
        ``delay_ms`` — a robust per-snapshot capacity proxy (the flatter
        the profile, the more window fits under a fixed delay)."""
        if self.windows.size == 0:
            return float("nan")
        admissible = self.windows[self.delays_ms <= delay_ms]
        return float(admissible.max()) if admissible.size else 0.0


@dataclass
class ProfileEvolutionResult:
    """Fig 7: channel throughput series and profile snapshots over time."""

    throughput_series: Tuple[np.ndarray, np.ndarray]
    snapshots: List[ProfileSnapshot]
    final_profile: ProfileSnapshot
    interpolations: int


def run_profile_study(scenario: str = "city_stationary",
                      technology: str = "lte",
                      cell_rate_bps: float = 20e6,
                      duration: float = 120.0,
                      seed: int = 47,
                      r: float = 2.0,
                      two_level: bool = False,
                      level_period: float = 25.0) -> ProfileEvolutionResult:
    """Single Verus flow over a trace, recording profile snapshots.

    ``two_level=True`` replays the paper's Fig 7 conditions in controlled
    form: the channel alternates between cell_rate/4 and cell_rate every
    ``level_period`` seconds, so the profile-vs-capacity relationship has
    a strong, known signal (the paper's own trace swings 0–35 Mbps).
    """
    if two_level:
        from ..cellular import concatenate_traces
        segments = []
        t = 0.0
        index = 0
        while t < duration:
            span = min(level_period, duration - t)
            rate = cell_rate_bps / 4.0 if index % 2 == 0 else cell_rate_bps
            segments.append(generate_scenario_trace(
                scenario, duration=span, technology=technology,
                mean_rate_bps=rate, seed=seed + index))
            t += span
            index += 1
        trace = concatenate_traces(*segments)
    else:
        trace = generate_scenario_trace(scenario, duration=duration,
                                        technology=technology,
                                        mean_rate_bps=cell_rate_bps,
                                        seed=seed)
    config = VerusConfig(r=r, record_diagnostics=True)
    spec = FlowSpec("verus", options={"config": config})
    result = run_trace_contention(trace, [spec], duration=duration,
                                  use_red=False, seed=seed)
    sender = result.senders[0]

    snapshots = []
    for time, points in sender.profile_snapshots:
        if len(points) < 2:
            continue
        windows = np.array(sorted(points))
        delays = np.array([points[int(w)] for w in windows]) * 1e3
        snapshots.append(ProfileSnapshot(time=time, windows=windows,
                                         delays_ms=delays))

    knots = sender.profiler.knots()
    windows = np.array([w for w, _ in knots], dtype=float)
    delays = np.array([d for _, d in knots]) * 1e3
    final = ProfileSnapshot(time=duration, windows=windows, delays_ms=delays)

    series = windowed_throughput(result.deliveries(0), window=1.0,
                                 end=duration)
    return ProfileEvolutionResult(throughput_series=series,
                                  snapshots=snapshots,
                                  final_profile=final,
                                  interpolations=sender.profiler.interpolations)


def fig5_example_profile(**kwargs) -> ProfileSnapshot:
    """Fig 5: one interpolated delay profile from a live Verus run."""
    return run_profile_study(**kwargs).final_profile


def fig7_profile_evolution(**kwargs) -> ProfileEvolutionResult:
    """Fig 7: delay-profile curves evolving with channel throughput."""
    return run_profile_study(**kwargs)


def profile_tracks_channel(result: ProfileEvolutionResult,
                           quantile: float = 0.25) -> bool:
    """Fig 7's qualitative claim: "the smaller the available throughput
    is, the steeper the delay profile becomes."

    Measured robustly as a capacity proxy: the window each snapshot
    supports below a common delay threshold.  High-throughput periods
    must support a larger window at that delay than low-throughput ones
    (equivalently, low-throughput profiles are steeper).
    """
    if len(result.snapshots) < 4:
        return False
    times, tput = result.throughput_series
    if times.size == 0:
        return False
    paired = []
    for snap in result.snapshots:
        idx = int(np.searchsorted(times, snap.time)) - 1
        slope = snap.ls_slope
        if 0 <= idx < tput.size and np.isfinite(slope):
            paired.append((float(tput[idx]), slope))
    if len(paired) < 4:
        return False
    paired.sort(key=lambda p: p[0])
    k = max(1, int(len(paired) * quantile))
    low_tput_slope = float(np.mean([s for _, s in paired[:k]]))
    high_tput_slope = float(np.mean([s for _, s in paired[-k:]]))
    return low_tput_slope > high_tput_slope
