"""§6.2 trace-driven contention evaluation: Fig 10, Table 1 and Fig 15.

Flows contend through a shared RED queue (paper parameters: 3/9 Mbit,
drop probability 10%) in front of a replayed cellular channel trace; the
traces come from the synthetic channel model's seven named scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cellular import EVALUATION_SCENARIOS, generate_scenario_trace
from ..metrics import FlowStats, aggregate_stats, windowed_jain_index
from .runner import FlowSpec, repeat_flows, run_trace_contention

#: Fig 10's three mobility patterns, paper captions (a)–(c).
FIG10_SCENARIOS = ("campus_pedestrian", "city_driving", "highway_driving")

#: Fig 10's protocol line-up.
FIG10_PROTOCOLS = (
    ("cubic", {}),
    ("newreno", {}),
    ("verus", {"r": 2.0}),
    ("verus", {"r": 4.0}),
    ("verus", {"r": 6.0}),
)


def _label(protocol: str, options: dict) -> str:
    if protocol == "verus":
        return f"verus_r{int(options.get('r', 2))}"
    return protocol


@dataclass
class ScatterPoint:
    """One flow's (delay, throughput) scatter point (Fig 10 axes)."""

    scenario: str
    protocol: str
    flow: int
    throughput_mbps: float
    mean_delay_ms: float

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "flow": self.flow,
            "throughput_mbps": round(self.throughput_mbps, 3),
            "delay_ms": round(self.mean_delay_ms, 1),
        }


def fig10_mobility(flows: int = 10, duration: float = 60.0,
                   scenarios: Sequence[str] = FIG10_SCENARIOS,
                   technology: str = "3g",
                   cell_rate_bps: float = 16e6,
                   seed: int = 5) -> List[ScatterPoint]:
    """Fig 10: per-flow delay/throughput scatter, 10 flows, 3 mobility
    patterns, Cubic vs NewReno vs Verus (R ∈ {2, 4, 6})."""
    points: List[ScatterPoint] = []
    for s_idx, scenario in enumerate(scenarios):
        trace = generate_scenario_trace(scenario, duration=duration,
                                        technology=technology,
                                        mean_rate_bps=cell_rate_bps,
                                        seed=seed + s_idx)
        for protocol, options in FIG10_PROTOCOLS:
            label = _label(protocol, options)
            specs = repeat_flows(protocol, flows, label=label, **options)
            result = run_trace_contention(trace, specs, duration=duration,
                                          seed=seed)
            for stat in result.all_stats():
                points.append(ScatterPoint(
                    scenario=scenario, protocol=label, flow=stat.flow_id,
                    throughput_mbps=stat.throughput_mbps,
                    mean_delay_ms=stat.mean_delay_ms))
    return points


def corpus_scatter(corpus, flows: int = 10,
                   duration: Optional[float] = None,
                   protocols: Sequence = FIG10_PROTOCOLS,
                   names: Optional[Sequence[str]] = None,
                   seed: int = 5) -> List[ScatterPoint]:
    """Fig 10's scatter over a trace corpus: every corpus trace is
    replayed as one mobility pattern (its name becomes the scenario).

    ``corpus`` is any :class:`~repro.traces.corpus.Corpus`-shaped object
    (duck-typed to keep this module import-light); ``duration=None``
    runs each trace for its own recorded length.
    """
    points: List[ScatterPoint] = []
    for name in (list(names) if names is not None else corpus.names()):
        trace = corpus.load_seconds(name)
        run_duration = duration
        if run_duration is None:
            entry = corpus.entry(name)
            run_duration = float(entry.stats.get("duration_s")
                                 or (trace[-1] if trace.size else 1.0))
        for protocol, options in protocols:
            label = _label(protocol, options)
            specs = repeat_flows(protocol, flows, label=label, **options)
            result = run_trace_contention(trace, specs,
                                          duration=run_duration, seed=seed)
            for stat in result.all_stats():
                points.append(ScatterPoint(
                    scenario=name, protocol=label, flow=stat.flow_id,
                    throughput_mbps=stat.throughput_mbps,
                    mean_delay_ms=stat.mean_delay_ms))
    return points


def summarize_fig10(points: List[ScatterPoint]) -> List[dict]:
    """Per (scenario, protocol) means and throughput spread."""
    rows = []
    keys = sorted({(p.scenario, p.protocol) for p in points})
    for scenario, protocol in keys:
        chunk = [p for p in points
                 if p.scenario == scenario and p.protocol == protocol]
        tputs = [p.throughput_mbps for p in chunk]
        delays = [p.mean_delay_ms for p in chunk]
        rows.append({
            "scenario": scenario,
            "protocol": protocol,
            "mean_throughput_mbps": float(np.mean(tputs)),
            "throughput_std": float(np.std(tputs)),
            "mean_delay_ms": float(np.nanmean(delays)),
        })
    return rows


# ----------------------------------------------------------------------
# Table 1 — Jain's fairness index
# ----------------------------------------------------------------------
TABLE1_USER_COUNTS = (2, 5, 10, 15, 20)
TABLE1_PROTOCOLS = (
    ("cubic", {}),
    ("newreno", {}),
    ("verus", {"r": 2.0}),
)


def table1_fairness(user_counts: Sequence[int] = TABLE1_USER_COUNTS,
                    scenarios: Sequence[str] = tuple(EVALUATION_SCENARIOS),
                    duration: float = 60.0,
                    technology: str = "3g",
                    cell_rate_bps: float = 16e6,
                    seed: int = 9) -> List[dict]:
    """Table 1: windowed Jain's index per protocol and user count,
    averaged across the five evaluation scenarios."""
    rows = []
    for users in user_counts:
        row: Dict[str, object] = {"users": users}
        for protocol, options in TABLE1_PROTOCOLS:
            label = _label(protocol, options)
            indices = []
            for s_idx, scenario in enumerate(scenarios):
                trace = generate_scenario_trace(
                    scenario, duration=duration, technology=technology,
                    mean_rate_bps=cell_rate_bps, seed=seed + s_idx)
                specs = repeat_flows(protocol, users, label=label, **options)
                result = run_trace_contention(trace, specs,
                                              duration=duration, seed=seed)
                indices.append(windowed_jain_index(
                    result.per_flow_deliveries(), window=1.0, start=5.0,
                    end=duration))
            row[label] = float(np.mean(indices))
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig 15 — static vs updating delay profile
# ----------------------------------------------------------------------
def fig15_static_profile(scenarios: Sequence[str] = tuple(EVALUATION_SCENARIOS),
                         flows: int = 5, duration: float = 60.0,
                         technology: str = "3g",
                         cell_rate_bps: float = 16e6,
                         seed: int = 13) -> List[dict]:
    """Fig 15: Verus R=2 with the 1 s profile update vs a frozen first
    profile, across the five collected traces."""
    rows = []
    for s_idx, scenario in enumerate(scenarios):
        trace = generate_scenario_trace(scenario, duration=duration,
                                        technology=technology,
                                        mean_rate_bps=cell_rate_bps,
                                        seed=seed + s_idx)
        for label, options in (
                ("updating", {"r": 2.0}),
                ("static", {"r": 2.0, "profile_update_interval": None})):
            specs = repeat_flows("verus", flows, label=label, **options)
            result = run_trace_contention(trace, specs, duration=duration,
                                          seed=seed)
            agg = aggregate_stats(result.all_stats())
            rows.append({
                "scenario": scenario,
                "profile": label,
                "mean_throughput_mbps": agg["mean_throughput_mbps"],
                "mean_delay_ms": agg["mean_delay_ms"],
            })
    return rows


def _fig15_ratio(rows: List[dict], key: str) -> float:
    """Geometric-mean updating/static ratio of ``key`` across scenarios."""
    by_scenario: Dict[str, Dict[str, float]] = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], {})[row["profile"]] = row[key]
    ratios = []
    for pair in by_scenario.values():
        if "updating" in pair and "static" in pair and pair["static"] > 0:
            ratios.append(pair["updating"] / pair["static"])
    return float(np.exp(np.mean(np.log(ratios)))) if ratios else float("nan")


def fig15_gain(rows: List[dict]) -> float:
    """Geometric-mean updating/static throughput ratio across scenarios."""
    return _fig15_ratio(rows, "mean_throughput_mbps")


def fig15_delay_ratio(rows: List[dict]) -> float:
    """Geometric-mean updating/static delay ratio (< 1: updating keeps the
    operating point honest as the channel changes — the paper's claim)."""
    return _fig15_ratio(rows, "mean_delay_ms")
