"""Verus reproduction: Adaptive Congestion Control for Unpredictable
Cellular Networks (Zaki et al., SIGCOMM 2015).

Package layout
--------------
``repro.core``
    The Verus protocol (delay estimator, delay profiler, window estimator,
    loss handler, sender/receiver endpoints).
``repro.netsim``
    Discrete-event network simulator: links, queues (drop-tail, RED,
    CoDel), trace-driven and schedule-driven bottlenecks, dumbbells.
``repro.cellular``
    Synthetic bursty cellular channel model, named measurement scenarios,
    burst analytics, channel predictors and trace I/O.
``repro.tcp``
    TCP baselines: NewReno, Cubic, Vegas, plus the other §2-cited
    designs (LEDBAT, Compound, Binomial).
``repro.sprout``
    Sprout-style stochastic-forecast baseline.
``repro.pcc``
    PCC Allegro utility-driven rate control baseline.
``repro.metrics``
    Flow statistics and Jain's fairness index.
``repro.analysis``
    Fluid model of Verus steady state (the paper's future work).
``repro.viz``
    Dependency-free terminal plots for the CLI.
``repro.experiments``
    One entry point per paper figure/table (Figs 1-15, Table 1, and the
    §5.3 sensitivity sweeps).
``repro.obs``
    Observability: meters, protocol timelines, span timers/profilers,
    and the ``repro bench`` performance benchmark suite (lazy import,
    like ``repro.campaign``).

Quickstart
----------
>>> from repro import quick_comparison
>>> rows = quick_comparison(duration=30.0)   # Verus vs Cubic on a 3G trace
"""

from typing import List

from . import (
    analysis,
    cellular,
    core,
    experiments,
    interp,
    metrics,
    netsim,
    pcc,
    sprout,
    tcp,
    viz,
)
from .core import VerusConfig, VerusReceiver, VerusSender
from .experiments import FlowSpec, repeat_flows, run_trace_contention

__version__ = "1.3.0"

__all__ = [
    "FlowSpec",
    "VerusConfig",
    "VerusReceiver",
    "VerusSender",
    "analysis",
    "cellular",
    "core",
    "experiments",
    "interp",
    "metrics",
    "netsim",
    "pcc",
    "quick_comparison",
    "viz",
    "repeat_flows",
    "run_trace_contention",
    "sprout",
    "tcp",
]


def quick_comparison(duration: float = 30.0, scenario: str = "campus_pedestrian",
                     technology: str = "3g", flows: int = 3,
                     seed: int = 1) -> List[dict]:
    """Run Verus and TCP Cubic over the same cellular trace and return
    per-protocol mean throughput/delay rows -- a one-call demonstration of
    the paper's headline result."""
    from .cellular import generate_scenario_trace
    from .metrics import aggregate_stats

    trace = generate_scenario_trace(scenario, duration=duration,
                                    technology=technology, seed=seed)
    rows = []
    for protocol, options in (("verus", {"r": 2.0}), ("cubic", {})):
        specs = repeat_flows(protocol, flows, **options)
        result = run_trace_contention(trace, specs, duration=duration,
                                      seed=seed)
        agg = aggregate_stats(result.all_stats())
        rows.append({
            "protocol": protocol,
            "mean_throughput_mbps": round(agg["mean_throughput_mbps"], 3),
            "mean_delay_ms": round(agg["mean_delay_ms"], 1),
        })
    return rows
