"""The Verus sender: slow start, epoch loop, loss recovery (§4–§5).

The sender composes the four protocol elements of §4:

* :class:`~repro.core.delay_estimator.DelayEstimator` (eq. 2–3),
* :class:`~repro.core.delay_profiler.DelayProfiler` (Fig 5/7),
* :class:`~repro.core.window_estimator.WindowEstimator` (eq. 4–5),
* :class:`~repro.core.loss_handler.LossHandler` (eq. 6),

around a three-state machine::

    SLOW_START --(loss | delay > N·D_min)--> NORMAL <--> RECOVERY

In SLOW_START the window grows by one packet per acknowledgement while
(window, delay) tuples seed the delay profile.  In NORMAL an ε-epoch timer
runs eq. 4 → profile inverse lookup → eq. 5 and paces the resulting packet
budget across the epoch.  Loss detection follows §5.2: a gap in the
acknowledgement stream arms a ``3 × delay`` reordering timer per missing
sequence; expiry declares the packet lost, multiplies the window down
(eq. 6) and retransmits.  A TCP-like retransmission timeout backstops the
case where the entire window (including acknowledgements) is lost.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netsim.engine import PeriodicTimer
from ..netsim.flow import ReceiverProtocol, SenderProtocol
from ..netsim.packet import Packet
from .config import VerusConfig
from .delay_estimator import DelayEstimator
from .delay_profiler import DelayProfiler
from .loss_handler import LossHandler
from .window_estimator import WindowEstimator

SLOW_START = "slow_start"
NORMAL = "normal"
RECOVERY = "recovery"


@dataclass(slots=True)
class SentRecord:
    """Sender-side state for one outstanding packet.

    Slotted: one record exists per in-flight packet, created on every
    transmission and touched on every acknowledgement."""

    seq: int
    sent_time: float
    window_at_send: float
    retransmission: bool = False
    miss_deadline: Optional[float] = None
    #: Number of retransmission attempts so far.
    attempts: int = 0


@dataclass
class EpochDiagnostics:
    """One row of the optional per-epoch diagnostic trace."""

    time: float
    window: float
    d_est: float
    d_max: float
    inflight: int
    mode: str


class VerusSender(SenderProtocol):
    """Verus congestion-controlled sender.

    By default the sender is a full-buffer source.  Passing
    ``transfer_bytes`` makes it a finite transfer (the §7 "short flows"
    case): the sender stops once every packet of the transfer has been
    acknowledged (or abandoned) and records ``completion_time``.
    """

    def __init__(self, flow_id: int, config: Optional[VerusConfig] = None,
                 transfer_bytes: Optional[int] = None):
        super().__init__(flow_id)
        self.config = config if config is not None else VerusConfig()
        if transfer_bytes is not None and transfer_bytes <= 0:
            raise ValueError("transfer_bytes must be positive")
        self.transfer_packets: Optional[int] = None
        if transfer_bytes is not None:
            self.transfer_packets = max(
                1, -(-transfer_bytes // self.config.packet_bytes))
        self.completion_time: Optional[float] = None
        cfg = self.config
        self.delay_estimator = DelayEstimator(alpha=cfg.alpha,
                                              min_window=cfg.dmin_window)
        self.profiler = DelayProfiler(ewma=cfg.profile_ewma,
                                      max_points=cfg.profile_max_points,
                                      max_age=cfg.profile_max_age)
        self.window_estimator = WindowEstimator(cfg.r, cfg.delta1,
                                                cfg.delta2, cfg.epoch)
        self.loss_handler = LossHandler(cfg.multiplicative_decrease,
                                        cfg.min_window)
        self.mode = SLOW_START
        self.window: float = 1.0
        self._next_seq = 0
        self._next_expected = 0
        self._inflight: Dict[int, SentRecord] = {}
        self._miss_heap: List[Tuple[float, int]] = []
        # Declared-lost sequences waiting for a retransmission slot.
        # Retransmissions consume the regular send budget (they occupy
        # window space, as in TCP) instead of being blasted out at once.
        self._rtx_queue: deque = deque()
        self._pending_rtx: set = set()
        self._send_credit = 0.0
        self._last_progress = 0.0
        self._rto_backoff = 1.0
        self._floor_pin_epochs = 0
        self._epoch_timer: Optional[PeriodicTimer] = None
        self._profile_timer: Optional[PeriodicTimer] = None
        # Statistics / diagnostics
        self.losses_detected = 0
        self.timeouts = 0
        self.retransmissions = 0
        self.abandoned = 0
        self.slow_start_exits: Optional[str] = None
        self.diagnostics: List[EpochDiagnostics] = []
        self.profile_snapshots: List[Tuple[float, Dict[int, float]]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        self.mode = SLOW_START
        self._last_progress = self.now
        self._epoch_timer = PeriodicTimer(self.sim, self.config.epoch,
                                          self._on_epoch)
        self._epoch_timer.start()
        if self.config.profile_update_interval is not None:
            self._profile_timer = PeriodicTimer(
                self.sim, self.config.profile_update_interval,
                self._on_profile_update)
            self._profile_timer.start()
        self._transmit_new()

    def stop(self) -> None:
        super().stop()
        if self._epoch_timer is not None:
            self._epoch_timer.stop()
        if self._profile_timer is not None:
            self._profile_timer.stop()

    # ------------------------------------------------------------------
    # Transmission helpers
    # ------------------------------------------------------------------
    def _transmit_new(self) -> bool:
        """Emit one new packet stamped with the current window.

        Returns False when a finite transfer has no data left to send.
        """
        if (self.transfer_packets is not None
                and self._next_seq >= self.transfer_packets):
            return False
        seq = self._next_seq
        self._next_seq += 1
        now = self.now
        window = self.window
        packet = Packet(flow_id=self.flow_id, seq=seq,
                        size=self.config.packet_bytes, sent_time=now,
                        window_at_send=window)
        self._inflight[seq] = SentRecord(seq=seq, sent_time=now,
                                         window_at_send=window)
        self.send(packet)
        return True

    def _retransmit(self, seq: int) -> None:
        record = self._inflight.get(seq)
        if record is None:
            return
        record.sent_time = self.now
        record.retransmission = True
        record.window_at_send = self.window
        record.attempts += 1
        self.retransmissions += 1
        # Re-arm the reordering timer so a lost retransmission is detected
        # too; without this, twice-lost packets would linger in the
        # in-flight set forever and freeze eq. 5's W_i term.
        timeout = self.config.loss_timeout_factor * self.delay_estimator.rtt()
        record.miss_deadline = self.now + timeout
        heapq.heappush(self._miss_heap, (record.miss_deadline, seq))
        packet = Packet(flow_id=self.flow_id, seq=seq,
                        size=self.config.packet_bytes, sent_time=self.now,
                        window_at_send=self.window, retransmission=True)
        self.send(packet)

    def _effective_inflight(self) -> int:
        """Packets believed to be in the network: outstanding records minus
        those declared lost and still waiting for a retransmission slot."""
        return len(self._inflight) - len(self._pending_rtx)

    def _send_next(self) -> bool:
        """Send one packet: queued retransmissions first, then new data.

        Returns False when there was nothing to send.
        """
        while self._rtx_queue:
            seq = self._rtx_queue.popleft()
            self._pending_rtx.discard(seq)
            if seq in self._inflight:
                self._retransmit(seq)
                return True
        return self._transmit_new()

    def _fill_window(self) -> None:
        """ACK-clocked sending used in slow start and recovery."""
        while self.running and self._effective_inflight() < int(self.window):
            if not self._send_next():
                break

    # ------------------------------------------------------------------
    # Acknowledgement path
    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        if not packet.is_ack or not self.running:
            return
        # An aggregated acknowledgement (ACK-compressing receiver) carries
        # the batch of acknowledged sequences in its payload; a plain
        # per-packet ACK acknowledges just ``ack_seq``.
        batch = None
        if packet.payload is not None:
            batch = packet.payload.get("acked")
        if batch is None:
            self._handle_ack_seq(int(packet.ack_seq))
        else:
            for seq in batch:
                self._handle_ack_seq(int(seq))

    def _handle_ack_seq(self, seq: int) -> None:
        record = self._inflight.pop(seq, None)
        if record is None:
            return  # duplicate or stale acknowledgement
        self._pending_rtx.discard(seq)
        now = self.now
        self._last_progress = now
        self._rto_backoff = 1.0
        self._check_transfer_complete()

        delay = now - record.sent_time
        if delay > 0:
            # Delay estimator takes retransmission samples too (without
            # them a heavy loss episode freezes D_max/srtt and deadlocks
            # eq. 4) — but a retransmission's ACK is ambiguous (Karn): it
            # may acknowledge the original copy, yielding an impossibly
            # small delay that would poison the windowed D_min.  Samples
            # faster than the fastest genuine round trip ever seen are
            # therefore discarded.
            floor = self.delay_estimator.lifetime_min
            plausible = (not record.retransmission
                         or floor is None or delay >= 0.999 * floor)
            if plausible:
                self.delay_estimator.add_sample(delay, now=now)
            if not record.retransmission:
                # The profile only learns from first transmissions, whose
                # (window, delay) pairing is unambiguous.
                self.profiler.add_sample(record.window_at_send, delay,
                                         now=now)

        self._advance_expected()
        self._arm_gap_timers(seq)

        if self.mode == SLOW_START:
            self._slow_start_ack(record, delay)
        elif self.mode == RECOVERY:
            self._recovery_ack(record)
        # NORMAL mode sending is epoch-driven, nothing else to do here.

    def _advance_expected(self) -> None:
        while (self._next_expected < self._next_seq
               and self._next_expected not in self._inflight):
            self._next_expected += 1

    def _arm_gap_timers(self, acked_seq: int) -> None:
        """§5.2: every missing sequence gets a 3×delay reordering timer."""
        if acked_seq <= self._next_expected:
            return
        timeout = self.config.loss_timeout_factor * self.delay_estimator.rtt()
        deadline = self.now + timeout
        upper = min(acked_seq, self._next_expected + 4096)
        for seq in range(self._next_expected, upper):
            record = self._inflight.get(seq)
            if record is not None and record.miss_deadline is None:
                record.miss_deadline = deadline
                heapq.heappush(self._miss_heap, (deadline, seq))

    def _compact_miss_heap(self) -> None:
        """Drop stale miss-heap entries (acknowledged or re-armed seqs).

        Entries are lazily deleted — every re-arm pushes a fresh (deadline,
        seq) pair and the old one becomes a corpse that ``_check_missing``
        would skip on pop.  Under heavy reordering the corpses can dwarf
        the live set, so the epoch sweep rebuilds the heap from the live
        entries once they are outnumbered 4:1.
        """
        inflight = self._inflight
        live = [entry for entry in self._miss_heap
                if (record := inflight.get(entry[1])) is not None
                and record.miss_deadline == entry[0]]
        heapq.heapify(live)
        self._miss_heap = live

    def _check_missing(self) -> None:
        """Fire expired reordering timers (called from the epoch tick)."""
        heap = self._miss_heap
        if len(heap) > 64 and len(heap) > 4 * len(self._inflight):
            self._compact_miss_heap()
        while self._miss_heap and self._miss_heap[0][0] <= self.now:
            deadline, seq = heapq.heappop(self._miss_heap)
            record = self._inflight.get(seq)
            if record is None or record.miss_deadline != deadline:
                continue  # acknowledged meanwhile, or timer re-armed
            if record.attempts >= self.config.max_retransmits:
                # Give up on this sequence: remove it from the in-flight
                # set so the window arithmetic reflects reality.  The loss
                # episode already collapsed the window when first detected.
                del self._inflight[seq]
                self._pending_rtx.discard(seq)
                self.abandoned += 1
                self._advance_expected()
                self._check_transfer_complete()
                continue
            self._declare_loss(record)

    def _queue_retransmission(self, seq: int) -> None:
        if seq not in self._pending_rtx and seq in self._inflight:
            self._pending_rtx.add(seq)
            self._rtx_queue.append(seq)
            self._inflight[seq].miss_deadline = None

    def _declare_loss(self, record: SentRecord) -> None:
        self.losses_detected += 1
        if self.mode == SLOW_START:
            self._exit_slow_start("loss")
        if not self.loss_handler.in_recovery:
            w_loss = record.window_at_send
            self.window = self.loss_handler.on_loss(w_loss)
            self.mode = RECOVERY
            self.profiler.freeze_updates()
            if self.observers:
                self.notify("on_loss", time=self.now, w_loss=w_loss,
                            w_after=self.window, kind="gap")
        self._queue_retransmission(record.seq)

    # ------------------------------------------------------------------
    # Slow start
    # ------------------------------------------------------------------
    def _slow_start_ack(self, record: SentRecord, delay: float) -> None:
        est = self.delay_estimator
        # §5.1 exit condition 1: "encountering a packet loss: this can be
        # deduced from acknowledgement sequence numbers" — a gap in the
        # acknowledged sequence ends slow start immediately, well before
        # the 3×delay reordering timer confirms the loss.  A gap of a
        # couple of positions is tolerated (mild reordering, e.g. path
        # jitter, must not abort slow start spuriously).
        if record.seq > self._next_expected + 2:
            self._exit_slow_start("loss")
            w_loss = self.window
            self.window = self.loss_handler.on_loss(w_loss)
            self.mode = RECOVERY
            self.profiler.freeze_updates()
            if self.observers:
                self.notify("on_loss", time=self.now, w_loss=w_loss,
                            w_after=self.window, kind="slow_start_gap")
            return
        self.window += 1.0
        if (est.d_min is not None and delay > 0
                and delay > self.config.ss_exit_ratio * est.d_min
                and est.samples_seen >= 4):
            self._exit_slow_start("delay")
        else:
            self._fill_window()

    def _exit_slow_start(self, reason: str) -> None:
        """Hand over from slow start to the epoch-driven controller."""
        if self.mode != SLOW_START:
            return
        self.slow_start_exits = reason
        est = self.delay_estimator
        # Close the running epoch so D_max reflects slow-start samples.
        est.end_epoch()
        d_min = est.d_min if est.d_min is not None else 0.05
        built = self.profiler.interpolate(d_min)
        if not built:
            # Pathological exit before two distinct windows were observed;
            # seed a flat two-point profile so lookups are defined.
            self.profiler.add_sample(1, d_min * 1.01)
            self.profiler.add_sample(2, d_min * 1.02)
            self.profiler.interpolate(d_min)
        d_max = est.d_max if est.d_max is not None else d_min
        d_est0 = max(d_min, min(d_max, self.config.r * d_min))
        self.window_estimator.initialise(d_est0)
        self.mode = NORMAL

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recovery_ack(self, record: SentRecord) -> None:
        self.window = self.loss_handler.on_ack_in_recovery(record.window_at_send)
        if not self.loss_handler.in_recovery:
            self.profiler.unfreeze_updates()
            self.mode = NORMAL
        else:
            self._fill_window()

    # ------------------------------------------------------------------
    # Epoch loop
    # ------------------------------------------------------------------
    def _on_epoch(self) -> None:
        if not self.running:
            return
        self._check_missing()
        self._check_rto()
        if self.mode == NORMAL:
            self._normal_epoch()
        elif self.mode == RECOVERY:
            # Delay samples keep aggregating so D_max stays current, but
            # eq. 4/5 are suspended while the loss episode drains.
            self.delay_estimator.end_epoch()
            self._fill_window()
        if self.config.record_diagnostics:
            est = self.window_estimator
            self.diagnostics.append(EpochDiagnostics(
                time=self.now, window=self.window,
                d_est=est.d_est if est.d_est is not None else 0.0,
                d_max=self.delay_estimator.d_max or 0.0,
                inflight=len(self._inflight), mode=self.mode))
        if self.observers:
            est = self.window_estimator
            self.notify("on_epoch", time=self.now, window=self.window,
                        d_est=est.d_est, mode=self.mode,
                        inflight=len(self._inflight),
                        pending_rtx=len(self._pending_rtx))

    def _normal_epoch(self) -> None:
        cfg = self.config
        est = self.delay_estimator
        delta_d = est.end_epoch()
        if not est.have_estimate or not self.profiler.ready:
            return
        d_min_used = est.d_min
        d_est = self.window_estimator.update_set_point(
            delta_d, est.d_max, d_min_used)
        # Keep the set-point tethered to reality: a target far above every
        # observed delay carries no information (it can arise when delay
        # is dominated by jitter unrelated to the window) and would let
        # D_est run away.  The cap never binds when queueing drives delay,
        # because D_max then tracks D_est within an RTT.
        ceiling = max(cfg.r * est.d_min, 3.0 * est.d_max)
        if d_est > ceiling:
            d_est = ceiling
            self.window_estimator.d_est = ceiling
        # Probing beyond the explored profile is exploration of *spare*
        # capacity: permit it only while delay is not rising AND sits near
        # its floor (an empty queue).  A flow whose delay already carries
        # queueing has no spare capacity to probe for — un-gated probing
        # would let the most delay-tolerant flow in a shared queue starve
        # its peers.
        near_floor = est.d_max < 1.3 * est.d_min
        w_next = self.profiler.window_for_delay(
            d_est, allow_probe=(delta_d <= 0 and near_floor))
        w_next = min(max(w_next, cfg.min_window), cfg.max_window)
        # Starvation escape: a flow held at its minimum window by the
        # ratio branch for seconds is chasing a floor the path can no
        # longer deliver (e.g. competing flows hold a standing queue).
        # Re-measure the floor from current reality so the eq. 4 ratio
        # test re-engages; without this the pinned state is absorbing.
        if (cfg.floor_rebase_after is not None
                and cfg.dmin_window is not None
                and self.window_estimator.last_branch == "ratio"
                and w_next <= cfg.min_window + 1.0):
            self._floor_pin_epochs += 1
            if self._floor_pin_epochs * cfg.epoch >= cfg.floor_rebase_after:
                # Bound the re-based floor: several Verus flows re-basing
                # against each other's queues would otherwise ratchet the
                # collective delay up geometrically (each re-base grants
                # R× the ambient delay as new tolerance).
                lifetime = est.lifetime_min or est.d_max
                cap = max(5.0 * lifetime, lifetime + 0.1)
                est.rebase_floor(min(est.d_max, cap), now=self.now)
                self._floor_pin_epochs = 0
        else:
            self._floor_pin_epochs = 0
        budget = self.window_estimator.send_budget(
            w_next, self._effective_inflight(), est.rtt())
        self.window = w_next
        if self.observers:
            # d_min is the value eq. 4 actually used this epoch (a floor
            # re-base above may already have moved the live estimate).
            self.notify("on_setpoint", time=self.now,
                        d_est=self.window_estimator.d_est,
                        d_min=d_min_used, d_max=est.d_max, window=w_next,
                        delta_d=delta_d)
        self._send_credit += budget
        count = int(self._send_credit)
        self._send_credit -= count
        if count == 0 and (self._rtx_queue
                           or self._effective_inflight() < cfg.min_window):
            # Keep the pipe minimally alive: queued retransmissions must
            # drain even when eq. 5 yields no budget, and an empty pipe
            # sends one probe so acknowledgements (and therefore delay
            # feedback) keep flowing.
            count = 1
        if count <= 0:
            return
        # Pace the epoch's budget evenly across the epoch.
        spacing = cfg.epoch / count
        for k in range(count):
            if k == 0:
                self._paced_send()
            else:
                self.sim.call_later(k * spacing, self._paced_send)

    def _paced_send(self) -> None:
        if self.running and self.mode != RECOVERY:
            self._send_next()

    # ------------------------------------------------------------------
    # Retransmission timeout (backstop)
    # ------------------------------------------------------------------
    def _rto(self) -> float:
        rtt = self.delay_estimator.rtt()
        return max(self.config.min_rto, 3.0 * rtt) * self._rto_backoff

    def _check_rto(self) -> None:
        if not self._inflight:
            # Idle with an empty pipe (e.g. window collapsed to zero sends):
            # restart the ACK clock with one probe packet.
            if self.mode != NORMAL:
                self._fill_window()
            return
        if self.now - self._last_progress < self._rto():
            return
        self.timeouts += 1
        self._rto_backoff = min(self._rto_backoff * 2.0, 64.0)
        self._last_progress = self.now
        # Collapse and probe, TCP-style.
        oldest = min(self._inflight)
        w_loss = self.window
        if not self.loss_handler.in_recovery:
            self.window = self.loss_handler.on_loss(w_loss)
            self.profiler.freeze_updates()
            if self.observers:
                self.notify("on_loss", time=self.now, w_loss=w_loss,
                            w_after=self.window, kind="rto")
        if self.mode == SLOW_START:
            self._exit_slow_start("loss")
        self.mode = RECOVERY
        self._queue_retransmission(oldest)
        self._send_next()

    # ------------------------------------------------------------------
    # Housekeeping timers
    # ------------------------------------------------------------------
    def _on_profile_update(self) -> None:
        if not self.running or self.mode == SLOW_START:
            return
        d_min = self.delay_estimator.d_min
        if self.profiler.interpolate(d_min, now=self.now):
            if self.config.record_diagnostics:
                self.profile_snapshots.append(
                    (self.now, self.profiler.snapshot()))
            if self.observers:
                self.notify("on_profile_refit", time=self.now,
                            points=len(self.profiler),
                            interpolations=self.profiler.interpolations)

    def _check_transfer_complete(self) -> None:
        if (self.transfer_packets is None or self.completion_time is not None
                or not self.running):
            return
        if (self._next_seq >= self.transfer_packets and not self._inflight):
            self.completion_time = self.now
            self.stop()

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return len(self._inflight)


class VerusReceiver(ReceiverProtocol):
    """Verus receiver.

    Default behaviour matches the paper: one acknowledgement per data
    packet, echoing the window metadata the sender needs for its delay
    profile (§5.1).  ``ack_every > 1`` enables ACK aggregation — common
    on cellular uplinks, where the reverse direction compresses ACK
    streams: up to ``ack_every`` sequences are batched into a single
    acknowledgement, flushed early after ``ack_delay`` seconds so the
    last packets of a burst are not held hostage.  The ablation bench
    measures what this costs Verus's feedback loop.
    """

    def __init__(self, flow_id: int, ack_every: int = 1,
                 ack_delay: float = 0.004):
        super().__init__(flow_id)
        if ack_every < 1:
            raise ValueError("ack_every must be at least 1")
        if ack_delay <= 0:
            raise ValueError("ack_delay must be positive")
        self.ack_every = ack_every
        self.ack_delay = ack_delay
        self._pending: List[int] = []
        self._carrier: Optional[Packet] = None
        self._flush_event = None

    def on_data(self, packet: Packet) -> None:
        self._record(packet)
        if self.ack_every == 1:
            self.send_ack(packet.make_ack(self.now, pool=self.ack_pool))
            return
        self._pending.append(packet.seq)
        self._carrier = packet
        if len(self._pending) >= self.ack_every:
            self._flush()
        elif self._flush_event is None or not self._flush_event.active:
            self._flush_event = self.sim.schedule(self.ack_delay,
                                                  self._flush)

    def _flush(self) -> None:
        if not self._pending or self._carrier is None:
            return
        ack = self._carrier.make_ack(self.now, pool=self.ack_pool)
        ack.payload = {"acked": list(self._pending)}
        self._pending.clear()
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        self.send_ack(ack)
