"""Delay Profiler — the learned window↔delay relationship (Figs 5 and 7).

Every acknowledgement yields a (sending window ``W``, delay ``D``) pair: the
window the acknowledged packet was sent under, and the round-trip delay it
experienced.  The profiler keeps one EWMA-smoothed delay value per integer
window, and periodically re-interpolates the resulting point cloud with a
monotone cubic (PCHIP) spline — the pure-Python stand-in for the ALGLIB
cubic spline of the C++ prototype.  Re-interpolation is deliberately
decoupled from point updates because spline construction is the expensive
step (§5.1: "Due to the high computational effort of the cubic spline
interpolation, this calculation is not performed after every
acknowledgement, but instead at certain intervals").

The inverse query — given a delay set-point ``D_est``, find the sending
window — is the "drop a horizontal line on Fig 5" operation: the largest
window whose interpolated delay stays at or below the set-point, with
linear extrapolation beyond the explored region so the window can keep
growing on an underused channel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..interp import InverseLookup, PchipInterpolator


class DelayProfiler:
    """Maintains the Verus delay profile and its interpolated curve."""

    def __init__(self, ewma: float = 0.5, max_points: int = 512,
                 grid_points: int = 512, max_age: Optional[float] = 10.0):
        if not 0 < ewma <= 1:
            raise ValueError("ewma must be in (0, 1]")
        if max_points < 4:
            raise ValueError("max_points must be at least 4")
        if max_age is not None and max_age <= 0:
            raise ValueError("max_age must be positive or None")
        self.ewma = ewma
        self.max_points = max_points
        self.grid_points = grid_points
        #: Knots untouched for longer than this (seconds) are pruned at
        #: re-interpolation.  Without ageing, high-delay knots recorded in
        #: a past low-capacity era permanently fence off the window range
        #: above them: the inverse lookup never selects those windows, so
        #: they are never re-measured and never corrected.
        self.max_age = max_age
        #: window (int packets) -> smoothed delay (seconds)
        self._points: Dict[int, float] = {}
        #: window -> last update order stamp (for LRU-style eviction)
        self._touched: Dict[int, int] = {}
        #: window -> simulation time of last update (for age pruning)
        self._touched_time: Dict[int, float] = {}
        self._touch_counter = 0
        self._curve: Optional[InverseLookup] = None
        #: Bumped whenever the point set mutates (sample folded in,
        #: eviction, age pruning); lets interpolate() skip rebuilding a
        #: curve for an unchanged profile.
        self._revision = 0
        self._curve_key: Optional[Tuple[int, Optional[float]]] = None
        self.interpolations = 0
        self.updates_frozen = False
        self._probe_steps = 0

    # ------------------------------------------------------------------
    # Point maintenance
    # ------------------------------------------------------------------
    def add_sample(self, window: float, delay: float,
                   now: float = 0.0) -> None:
        """Fold one (window, delay) observation into the profile.

        During loss recovery the caller freezes updates (the paper keeps
        post-loss samples out of the profile because they see artificially
        drained queues); frozen samples are silently dropped.
        """
        if self.updates_frozen:
            return
        if delay <= 0:
            raise ValueError(f"delay must be positive (got {delay})")
        key = max(0, int(round(window)))
        self._revision += 1
        self._touch_counter += 1
        self._touched[key] = self._touch_counter
        self._touched_time[key] = now
        current = self._points.get(key)
        if current is None:
            self._points[key] = delay
        else:
            self._points[key] = (1 - self.ewma) * current + self.ewma * delay
        if len(self._points) > self.max_points:
            self._evict()

    def _evict(self) -> None:
        self._revision += 1
        stale = min(self._touched, key=self._touched.get)
        del self._points[stale]
        del self._touched[stale]
        self._touched_time.pop(stale, None)

    def _prune_aged(self, now: float) -> None:
        if self.max_age is None:
            return
        horizon = now - self.max_age
        stale = [key for key, t in self._touched_time.items() if t < horizon]
        # Never prune below the two points a curve needs.
        if len(self._points) - len(stale) < 2:
            stale = stale[: max(0, len(self._points) - 2)]
        if stale:
            self._revision += 1
        for key in stale:
            self._points.pop(key, None)
            self._touched.pop(key, None)
            self._touched_time.pop(key, None)

    def freeze_updates(self) -> None:
        self.updates_frozen = True

    def unfreeze_updates(self) -> None:
        self.updates_frozen = False

    # ------------------------------------------------------------------
    # Interpolation
    # ------------------------------------------------------------------
    def interpolate(self, d_min: Optional[float] = None,
                    now: Optional[float] = None) -> bool:
        """(Re)build the spline from the current points.

        ``d_min`` anchors the profile at (W=0, D_min): an empty pipe should
        show the propagation floor.  Passing ``now`` prunes knots older
        than ``max_age`` first.  Returns False when there are still too
        few points to build a curve.
        """
        if now is not None:
            self._prune_aged(now)
        # Rebuilding from an unchanged point set with the same anchor
        # yields the identical curve, so reuse it.  The counter still
        # advances: an interpolation *happened* as far as callers and
        # telemetry are concerned, it just cost nothing.
        cache_key = (self._revision, d_min)
        if self._curve is not None and cache_key == self._curve_key:
            self.interpolations += 1
            return True
        points = dict(self._points)
        if d_min is not None and d_min > 0:
            points.setdefault(0, d_min)
        if len(points) < 2:
            return False
        windows = np.array(sorted(points), dtype=float)
        delays = np.array([points[int(w)] for w in windows])
        spline = PchipInterpolator(windows, delays)
        self._curve = InverseLookup(spline, grid_points=self.grid_points,
                                    max_extrapolation=1.0)
        self._curve_key = cache_key
        self.interpolations += 1
        return True

    @property
    def ready(self) -> bool:
        return self._curve is not None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def window_for_delay(self, target_delay: float,
                         allow_probe: bool = True) -> float:
        """W_{i+1} = f^{-1}(D_est,i+1): the Fig 5 horizontal-line lookup.

        When the target exceeds everything the profile has seen but the
        curve is flat (delay not responding to the window — nothing to
        extrapolate along), the lookup probes beyond the explored domain
        so the flow keeps exploring instead of pinning at its historical
        maximum.  Consecutive saturated lookups escalate the probe
        exponentially (slow-start-like domain growth), because the curve
        is only re-interpolated about once per second and a one-packet
        probe per rebuild would take minutes to track a large capacity
        increase.

        ``allow_probe`` gates the expansion on the caller's delay trend:
        probing is exploration of *spare* capacity, so the sender permits
        it only while delays are not rising (∆D ≤ 0).  Without the gate a
        delay-tolerant flow in a shared queue would probe persistently and
        starve its peers.
        """
        if self._curve is None:
            raise RuntimeError("delay profile not interpolated yet")
        result = max(0.0, self._curve.largest_below(target_delay))
        lo, hi = self._curve.f.domain
        saturated = (result >= hi
                     and target_delay > self._curve.y_max)
        if saturated and allow_probe:
            self._probe_steps = min(self._probe_steps + 1, 1000)
            result = max(result, hi + min(2.0 ** self._probe_steps, 8.0))
        elif not saturated:
            self._probe_steps = 0
        return result

    def delay_for_window(self, window: float) -> float:
        """Forward query f(W) on the interpolated curve."""
        if self._curve is None:
            raise RuntimeError("delay profile not interpolated yet")
        return self._curve.value_at(window)

    # ------------------------------------------------------------------
    # Introspection (used by Figs 5 and 7)
    # ------------------------------------------------------------------
    def knots(self) -> List[Tuple[int, float]]:
        """The raw (window, smoothed delay) points, sorted by window."""
        return sorted(self._points.items())

    def curve_samples(self, n: int = 100) -> Tuple[np.ndarray, np.ndarray]:
        """Dense samples of the interpolated curve for plotting/analysis."""
        if self._curve is None:
            raise RuntimeError("delay profile not interpolated yet")
        lo, hi = self._curve.f.domain
        xs = np.linspace(lo, hi, n)
        ys = np.asarray(self._curve.f(xs))
        return xs, ys

    def snapshot(self) -> Dict[int, float]:
        """Copy of the current point set (for evolution tracking, Fig 7b)."""
        return dict(self._points)

    def __len__(self) -> int:
        return len(self._points)
