"""Window Estimator — eq. 4 and eq. 5 of the paper.

Maintains the delay set-point ``D_est`` and turns it into a sending budget:

* eq. 4 moves the set-point each epoch based on the delay trend ∆D and the
  hard bound R on D_max/D_min::

      D_est,i+1 = D_est,i − δ2                        if D_max,i / D_min > R
                  max(D_min, D_est,i − δ1)            elif ∆D_i > 0
                  D_est,i + δ2                        otherwise

* eq. 5 converts the looked-up next window ``W_{i+1}`` into the number of
  packets to actually emit this epoch, accounting for the packets already
  in flight::

      S_{i+1} = max(0, W_{i+1} + (2 − n)/(n − 1) · W_i),   n = ⌈RTT/ε⌉

  In steady state (W_{i+1} = W_i = W) this sends W/(n − 1) packets per
  epoch, i.e. one full window per RTT, matching TCP's ACK clock while
  allowing instantaneous speed-up/slow-down when the target moves.
"""

from __future__ import annotations

import math
from typing import Optional


class WindowEstimator:
    """Evolves the delay set-point and computes per-epoch send budgets."""

    def __init__(self, r: float, delta1: float, delta2: float, epoch: float):
        if r <= 1:
            raise ValueError("R must exceed 1")
        if not 0 < delta1 <= delta2:
            raise ValueError("need 0 < delta1 <= delta2")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.r = r
        self.delta1 = delta1
        self.delta2 = delta2
        self.epoch = epoch
        self.d_est: Optional[float] = None
        #: Which eq. 4 branch fired last: "ratio", "backoff" or "increase".
        self.last_branch: Optional[str] = None

    # ------------------------------------------------------------------
    def initialise(self, d_est: float) -> None:
        """Seed the set-point (done once, when slow start hands over)."""
        if d_est <= 0:
            raise ValueError("initial set-point must be positive")
        self.d_est = d_est

    def update_set_point(self, delta_d: float, d_max: float,
                         d_min: float) -> float:
        """Apply eq. 4; returns the new D_est."""
        if self.d_est is None:
            raise RuntimeError("set-point not initialised")
        if d_min <= 0:
            raise ValueError("d_min must be positive")
        if d_max / d_min > self.r:
            self.d_est -= self.delta2
            self.last_branch = "ratio"
        elif delta_d > 0:
            self.d_est = max(d_min, self.d_est - self.delta1)
            self.last_branch = "backoff"
        else:
            self.d_est += self.delta2
            self.last_branch = "increase"
        # The set-point never drops below the propagation floor.
        self.d_est = max(self.d_est, d_min)
        return self.d_est

    # ------------------------------------------------------------------
    @staticmethod
    def epochs_per_rtt(rtt: float, epoch: float) -> int:
        """n = ⌈RTT/ε⌉, floored at 2 so eq. 5's divisor stays positive."""
        if rtt <= 0:
            return 2
        return max(2, int(math.ceil(rtt / epoch)))

    def send_budget(self, w_next: float, w_current: float, rtt: float) -> float:
        """S_{i+1} of eq. 5 (fractional; the sender accumulates credit)."""
        if w_next < 0 or w_current < 0:
            raise ValueError("windows must be non-negative")
        n = self.epochs_per_rtt(rtt, self.epoch)
        return max(0.0, w_next + (2.0 - n) / (n - 1.0) * w_current)
