"""Loss Handler — eq. 6 and the loss-recovery phase (§4, §5.2).

On a detected loss the sending window collapses to ``M × W_loss`` where
``W_loss`` is the window the lost packet was sent under ("because that
sending window was responsible for the packet loss").  The sender then
enters a recovery phase during which:

* the delay profile is frozen (post-loss samples see drained queues and
  would poison the profile),
* the window grows additively, 1/W per acknowledgement (TCP-style), and
* recovery ends once an acknowledgement arrives for a packet sent *after*
  the decrease — identified by its ``window_at_send`` being at or below the
  current window.
"""

from __future__ import annotations

from typing import Optional


class LossHandler:
    """Tracks the recovery state machine around eq. 6."""

    def __init__(self, multiplicative_decrease: float = 0.5,
                 min_window: float = 1.0):
        if not 0 < multiplicative_decrease < 1:
            raise ValueError("multiplicative decrease must be in (0, 1)")
        self.m = multiplicative_decrease
        self.min_window = min_window
        self.in_recovery = False
        self.losses = 0
        self.recoveries_completed = 0
        self._recovery_window: Optional[float] = None

    # ------------------------------------------------------------------
    def on_loss(self, w_loss: float) -> float:
        """Apply eq. 6; returns the post-decrease window.

        Repeated losses inside one recovery episode do not compound the
        decrease (the first collapse already reflects the overshoot).
        """
        if self.in_recovery:
            return self._recovery_window
        self.losses += 1
        self.in_recovery = True
        self._recovery_window = max(self.min_window, self.m * w_loss)
        return self._recovery_window

    def on_ack_in_recovery(self, window_at_send: float) -> float:
        """Process an ACK during recovery; returns the updated window.

        Additive 1/W growth, with recovery exit when the acknowledged
        packet was sent under a window at or below the current one.
        """
        if not self.in_recovery:
            raise RuntimeError("not in recovery")
        w = self._recovery_window
        w += 1.0 / max(w, 1.0)
        self._recovery_window = w
        if window_at_send <= w:
            self.in_recovery = False
            self.recoveries_completed += 1
        return w

    @property
    def window(self) -> Optional[float]:
        """Current recovery window (None outside recovery episodes)."""
        return self._recovery_window if self.in_recovery else None

    def abort(self) -> None:
        """Leave recovery without the exit condition (e.g. on hard RTO)."""
        self.in_recovery = False
