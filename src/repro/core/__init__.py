"""Verus — the paper's primary contribution.

An end-to-end, delay-based congestion controller that learns a delay
profile ``f: window → delay`` and walks a delay set-point along it in
ε-epochs (eq. 1–6 of the paper), with TCP-style slow start, multiplicative
decrease and timeout handling.
"""

from .config import VerusConfig
from .delay_estimator import DelayEstimator
from .delay_profiler import DelayProfiler
from .loss_handler import LossHandler
from .sender import (
    NORMAL,
    RECOVERY,
    SLOW_START,
    EpochDiagnostics,
    SentRecord,
    VerusReceiver,
    VerusSender,
)
from .window_estimator import WindowEstimator

__all__ = [
    "DelayEstimator",
    "DelayProfiler",
    "EpochDiagnostics",
    "LossHandler",
    "NORMAL",
    "RECOVERY",
    "SLOW_START",
    "SentRecord",
    "VerusConfig",
    "VerusReceiver",
    "VerusSender",
    "WindowEstimator",
]
