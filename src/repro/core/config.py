"""Verus protocol parameters.

Defaults follow §5.3 of the paper: epoch ε = 5 ms, delay-profile
re-interpolation every 1 s, δ1 = 1 ms, δ2 = 2 ms (with 1 ms ≤ δ ≤ 2 ms and
δ1 ≤ δ2), slow-start delay-exit threshold N = 15 × D_min, and the
throughput/delay trade-off knob R (2, 4 or 6 in the evaluation; the paper
sets R = 2 unless stated otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netsim.packet import MTU_BYTES


@dataclass
class VerusConfig:
    """Tunable parameters of the Verus sender.

    Attributes mirror the symbols of §4–§5 of the paper.
    """

    #: Epoch length ε (seconds).  The sender re-estimates its window every
    #: epoch; 5 ms tracks fast fading without reacting to single bursts.
    epoch: float = 0.005
    #: Maximum tolerable ratio R between D_max and D_min (eq. 4).  Higher
    #: values trade delay for throughput (Fig 9).
    r: float = 2.0
    #: Set-point decrement applied when ∆D > 0 (eq. 4, middle branch), seconds.
    delta1: float = 0.001
    #: Set-point increment (last branch) / aggressive decrement (first
    #: branch) of eq. 4, seconds.
    delta2: float = 0.002
    #: EWMA weight on the previous epoch's maximum delay (eq. 2).
    alpha: float = 0.7
    #: Sliding-window horizon (seconds) for the D_min estimate, or ``None``
    #: for the paper's literal lifetime minimum.  A windowed minimum keeps
    #: the eq. 4 ratio test honest for flows that join a busy queue or
    #: share with longer-RTT flows (Fig 12/13 behaviour); the lifetime
    #: minimum reproduces the paper's TCP-coexistence result (Fig 14),
    #: where a creeping floor would let Verus out-compete Cubic.
    dmin_window: Optional[float] = 10.0
    #: Multiplicative decrease factor M on loss (eq. 6).
    multiplicative_decrease: float = 0.5
    #: Slow start exits when a delay sample exceeds ``ss_exit_ratio × D_min``.
    ss_exit_ratio: float = 15.0
    #: Delay profile re-interpolation interval (seconds).  Set to ``None``
    #: to freeze the first profile (the Fig 15 "static delay profile" ablation).
    profile_update_interval: float = 1.0
    #: EWMA weight for updating an existing delay-profile point toward a
    #: newly observed (window, delay) sample.
    profile_ewma: float = 0.5
    #: Maximum number of distinct window points kept in the profile.
    profile_max_points: int = 512
    #: Knots not refreshed within this many seconds are pruned at the next
    #: re-interpolation (``None`` disables ageing).  Prevents high-delay
    #: knots from a past low-capacity era from permanently fencing off the
    #: window range above them.
    profile_max_age: Optional[float] = 10.0
    #: Reordering tolerance: a gap is declared lost after ``loss_timeout_factor
    #: × delay`` without the missing packet arriving (§5.2: "3*delay").
    loss_timeout_factor: float = 3.0
    #: Starvation escape: when the eq. 4 ratio branch holds the flow at
    #: its minimum window for this many consecutive seconds, the windowed
    #: delay floor is re-based to the current D_max (the old floor has
    #: proven unachievable — e.g. competitors hold a standing queue).
    #: ``None`` disables the escape; it is inactive anyway whenever the
    #: flow's window is above the minimum.
    floor_rebase_after: Optional[float] = 1.0
    #: How many times a declared-lost packet is retransmitted before the
    #: sender abandons it (removes it from the in-flight accounting).
    max_retransmits: int = 2
    #: Lower bound on the sending window (packets).
    min_window: float = 1.0
    #: Upper bound on the sending window (packets); guards runaway
    #: extrapolation on effectively unbounded links.
    max_window: float = 20000.0
    #: Packet payload size (bytes).
    packet_bytes: int = MTU_BYTES
    #: Minimum retransmission timeout (seconds).
    min_rto: float = 0.25
    #: Record (time, window, set-point, delay) diagnostics while running.
    record_diagnostics: bool = False

    def __post_init__(self) -> None:
        if self.epoch <= 0:
            raise ValueError("epoch must be positive")
        if self.r <= 1:
            raise ValueError("R must exceed 1 (D_max/D_min ratio bound)")
        if not 0 < self.delta1 <= self.delta2:
            raise ValueError("need 0 < delta1 <= delta2 (paper: δ1 ≤ δ2)")
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1] (eq. 2)")
        if self.dmin_window is not None and self.dmin_window <= 0:
            raise ValueError("dmin_window must be positive or None")
        if self.floor_rebase_after is not None and self.floor_rebase_after <= 0:
            raise ValueError("floor_rebase_after must be positive or None")
        if self.profile_max_age is not None and self.profile_max_age <= 0:
            raise ValueError("profile_max_age must be positive or None")
        if not 0 < self.multiplicative_decrease < 1:
            raise ValueError("multiplicative decrease must be in (0, 1)")
        if self.ss_exit_ratio <= 1:
            raise ValueError("slow-start exit ratio must exceed 1")
        if (self.profile_update_interval is not None
                and self.profile_update_interval <= 0):
            raise ValueError("profile_update_interval must be positive or None")
        if not 0 < self.profile_ewma <= 1:
            raise ValueError("profile_ewma must be in (0, 1]")
        if self.min_window < 0 or self.max_window < self.min_window:
            raise ValueError("need 0 <= min_window <= max_window")

    @classmethod
    def paper_default(cls, r: float = 2.0, **overrides) -> "VerusConfig":
        """The configuration used throughout the paper's evaluation."""
        return cls(r=r, **overrides)
