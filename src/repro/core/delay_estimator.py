"""Delay Estimator — eq. 2 and eq. 3 of the paper.

Collects per-packet round-trip delays reported by acknowledgements within
each ε-epoch, tracks the EWMA-smoothed per-epoch maximum delay

    D_max,i = α · D_max,i−1 + (1 − α) · max(D_i)            (eq. 2)

and exposes the epoch-over-epoch change

    ∆D_i = D_max,i − D_max,i−1                               (eq. 3)

plus the running minimum delay D_min used by the window estimator's ratio
test and by the slow-start exit condition.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional


class DelayEstimator:
    """Tracks smoothed maximum delay per epoch and the minimum delay.

    ``D_min`` is a *windowed* minimum (default 10 s, tracked in one-second
    buckets).  A lifetime minimum would permanently anchor the eq. 4 ratio
    test to conditions a flow saw at start-up: a flow joining a busy queue,
    or sharing a bottleneck with longer-RTT flows, would trip the
    ``D_max/D_min > R`` branch forever and starve.  The sliding window lets
    the floor track the persistent component of the path delay, which is
    what makes Verus's RTT-fairness (Fig 13) and late-joiner behaviour
    (Fig 12) work.
    """

    BUCKET_SECONDS = 1.0

    def __init__(self, alpha: float = 0.7,
                 min_window: Optional[float] = 10.0):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if min_window is not None and min_window <= 0:
            raise ValueError("min_window must be positive or None (lifetime)")
        self.alpha = alpha
        self.min_window = min_window
        self._epoch_delays: List[float] = []
        self.d_max: Optional[float] = None
        self.d_max_prev: Optional[float] = None
        self._min_buckets: "OrderedDict[int, float]" = OrderedDict()
        #: Bucket index the last expiry sweep ran for.  Stale buckets can
        #: only appear when the current bucket advances, so add_sample's
        #: per-ACK sweep is skipped while time stays within one bucket.
        self._expired_for: Optional[int] = None
        #: Cached min over the buckets; ``d_min`` is read on every
        #: slow-start acknowledgement and every epoch, while the bucket
        #: set only changes on a new per-bucket minimum or an expiry.
        self._d_min_cache: Optional[float] = None
        self._d_min_dirty = True
        self._lifetime_min: Optional[float] = None
        self.srtt: Optional[float] = None
        self._srtt_gain = 0.125
        self.samples_seen = 0

    # ------------------------------------------------------------------
    def add_sample(self, delay: float, now: float = 0.0) -> None:
        """Record one acknowledged packet's round-trip delay at ``now``."""
        if delay <= 0:
            raise ValueError(f"delay must be positive (got {delay})")
        self._epoch_delays.append(delay)
        self.samples_seen += 1
        if self.min_window is not None:
            bucket = int(now / self.BUCKET_SECONDS)
            current = self._min_buckets.get(bucket)
            if current is None or delay < current:
                self._min_buckets[bucket] = delay
                self._min_buckets.move_to_end(bucket)
                self._d_min_dirty = True
            self._expire_buckets(bucket)
        if self._lifetime_min is None or delay < self._lifetime_min:
            self._lifetime_min = delay
        if self.srtt is None:
            self.srtt = delay
        else:
            self.srtt += self._srtt_gain * (delay - self.srtt)

    def _expire_buckets(self, current_bucket: int) -> None:
        if current_bucket == self._expired_for:
            return
        self._expired_for = current_bucket
        horizon = current_bucket - int(self.min_window / self.BUCKET_SECONDS)
        stale = [b for b in self._min_buckets if b < horizon]
        if stale:
            self._d_min_dirty = True
        for b in stale:
            del self._min_buckets[b]

    @property
    def d_min(self) -> Optional[float]:
        """Windowed minimum delay (falls back to the lifetime minimum when
        windowing is disabled or the window holds no samples, e.g. across
        a long outage)."""
        if self.min_window is not None and self._min_buckets:
            if self._d_min_dirty:
                self._d_min_cache = min(self._min_buckets.values())
                self._d_min_dirty = False
            return self._d_min_cache
        return self._lifetime_min

    @property
    def lifetime_min(self) -> Optional[float]:
        return self._lifetime_min

    def rebase_floor(self, value: float, now: float = 0.0) -> None:
        """Reset the windowed floor to ``value`` (floor re-calibration).

        Used when the current floor has proven unachievable: a flow pinned
        at its minimum window by the eq. 4 ratio test is measuring a path
        whose *persistent* delay exceeds the floor it once saw; keeping
        the stale floor starves it forever.  Only the windowed estimate is
        rebased — the lifetime minimum stays untouched.
        """
        if value <= 0:
            raise ValueError("floor must be positive")
        self._min_buckets.clear()
        self._min_buckets[int(now / self.BUCKET_SECONDS)] = value
        self._d_min_dirty = True

    def end_epoch(self) -> float:
        """Close the current epoch; returns ∆D_i (eq. 3).

        If the epoch saw no acknowledgements the previous smoothed maximum
        carries over unchanged and ∆D is zero — the window estimator's
        ratio test (eq. 4) still applies, so a persistently high D_max keeps
        pushing the set-point down even through feedback gaps.
        """
        if self._epoch_delays:
            epoch_max = max(self._epoch_delays)
            self._epoch_delays.clear()
            if self.d_max is None:
                new_max = epoch_max
            else:
                new_max = self.alpha * self.d_max + (1 - self.alpha) * epoch_max
        else:
            new_max = self.d_max
        self.d_max_prev = self.d_max
        self.d_max = new_max
        if self.d_max is None or self.d_max_prev is None:
            return 0.0
        return self.d_max - self.d_max_prev

    # ------------------------------------------------------------------
    @property
    def have_estimate(self) -> bool:
        return self.d_max is not None and self.d_min is not None

    def max_min_ratio(self) -> float:
        """D_max / D_min, the quantity bounded by R in eq. 4."""
        if not self.have_estimate or self.d_min <= 0:
            return 1.0
        return self.d_max / self.d_min

    def rtt(self, fallback: float = 0.1) -> float:
        """Smoothed network round-trip time estimate."""
        return self.srtt if self.srtt is not None else fallback

    def reset_epoch(self) -> None:
        """Drop samples collected in the current (unfinished) epoch."""
        self._epoch_delays.clear()

    @property
    def pending_samples(self) -> int:
        return len(self._epoch_delays)
