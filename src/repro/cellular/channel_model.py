"""Synthetic cellular channel model.

Substitutes for the paper's measured Etisalat/Du 3G & LTE channels.  The
model reproduces the three phenomena §3 of the paper identifies as the cause
of cellular unpredictability:

1. **Burst scheduling** — the radio scheduler serves a user at discrete
   1 ms Transmission Time Intervals (TTIs).  Whether a TTI serves the user
   is a Markov ON/OFF process (giving variable burst inter-arrival times);
   how much it carries is a log-normal burst size scaled by the current
   fade level (giving variable burst sizes).  LTE is parameterised with
   more frequent, smaller bursts than 3G, matching Fig 2.
2. **Multi-timescale fading** — the mean service rate is modulated by an
   Ornstein–Uhlenbeck process in the log domain (slow fading / path loss,
   seconds timescale) on top of per-TTI randomness (fast fading,
   milliseconds).  Mobility scenarios increase the OU volatility and add
   outage episodes (deep fades from handover or signal loss).
3. **Competing traffic** — a second user's demand reduces the share of
   TTIs the first user wins, raising its queueing delay as the combined
   load nears capacity (Fig 3).

The output is a *delivery-opportunity trace*: a sorted array of timestamps,
each able to carry one MTU.  These traces feed
:class:`~repro.netsim.trace_link.TraceLink`, exactly how the paper replays
its recorded traces through the OPNET traffic shaper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netsim.packet import MTU_BYTES

TTI_SECONDS = 0.001


@dataclass
class ChannelParams:
    """Parameters of the synthetic cellular channel.

    The defaults describe a stationary LTE downlink.  Scenario presets in
    :mod:`repro.cellular.scenarios` derive from this.
    """

    name: str = "lte-generic"
    technology: str = "lte"  # "lte" or "3g"
    mean_rate_bps: float = 10e6
    #: Fraction of TTIs that serve this user under nominal conditions.
    serve_prob: float = 0.45
    #: Log-normal sigma of the burst size (packets); higher = burstier.
    burst_sigma: float = 0.6
    #: Peak radio rate used to serialise packets inside one burst.
    peak_rate_bps: float = 150e6
    #: OU mean-reversion rate (1/s) of the slow-fading log-rate process.
    fading_theta: float = 0.4
    #: OU volatility of the slow-fading log-rate process.
    fading_sigma: float = 0.25
    #: Per-TTI fast-fading multiplier spread (log-normal sigma).
    fast_fading_sigma: float = 0.15
    #: Expected outages per second (Poisson); 0 disables outages.
    outage_rate: float = 0.0
    #: Mean outage duration in seconds (exponential).
    outage_duration: float = 0.5
    #: Residual stochastic packet loss (after link-layer retransmissions).
    loss_rate: float = 0.0
    packet_bytes: int = MTU_BYTES

    def __post_init__(self) -> None:
        if self.technology not in ("lte", "3g"):
            raise ValueError(f"unknown technology {self.technology!r}")
        if self.mean_rate_bps <= 0:
            raise ValueError("mean_rate_bps must be positive")
        if not 0 < self.serve_prob <= 1:
            raise ValueError("serve_prob must be in (0, 1]")
        if self.peak_rate_bps < self.mean_rate_bps:
            raise ValueError("peak_rate_bps must be >= mean_rate_bps")

    @property
    def mean_packets_per_tti(self) -> float:
        return self.mean_rate_bps * TTI_SECONDS / (8.0 * self.packet_bytes)

    @property
    def mean_burst_packets(self) -> float:
        """Burst size needed so served TTIs average out to the mean rate."""
        return self.mean_packets_per_tti / self.serve_prob

    def with_rate(self, mean_rate_bps: float) -> "ChannelParams":
        return replace(self, mean_rate_bps=mean_rate_bps)


@dataclass
class CompetingUser:
    """Open-loop contender at the same base station (Fig 3 setup)."""

    rate_bps: float
    #: (start, end) intervals during which the user is active; None = always.
    on_intervals: Optional[List[Tuple[float, float]]] = None

    def demand_at(self, t: float) -> float:
        if self.on_intervals is None:
            return self.rate_bps
        for start, end in self.on_intervals:
            if start <= t < end:
                return self.rate_bps
        return 0.0

    @classmethod
    def on_off(cls, rate_bps: float, period: float, duration: float,
               start_on: bool = False) -> "CompetingUser":
        """Square-wave activity with the given half-period, e.g. the paper's
        one-minute ON/OFF second user."""
        intervals = []
        t = 0.0 if start_on else period
        while t < duration:
            intervals.append((t, min(t + period, duration)))
            t += 2 * period
        return cls(rate_bps=rate_bps, on_intervals=intervals)


class CellularChannelModel:
    """Generates delivery-opportunity traces from :class:`ChannelParams`."""

    def __init__(self, params: ChannelParams,
                 rng: Optional[np.random.Generator] = None):
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng(1)

    # ------------------------------------------------------------------
    def generate(self, duration: float,
                 capacity_bps: Optional[float] = None,
                 competitors: Sequence[CompetingUser] = ()) -> np.ndarray:
        """Delivery-opportunity timestamps for ``duration`` seconds.

        ``capacity_bps`` is the cell's total capacity; when competitors are
        active their combined demand reduces this user's TTI share
        proportionally (processor-sharing approximation of the scheduler).
        Without competitors the user sees the full configured channel.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        p = self.params
        n_ttis = int(math.ceil(duration / TTI_SECONDS))
        rng = self.rng

        # --- slow fading: OU process in log domain, stepped every TTI ----
        log_fade = self._ou_path(n_ttis, p.fading_theta, p.fading_sigma)

        # --- outage episodes ---------------------------------------------
        in_outage = self._outage_mask(n_ttis, duration)

        # --- Markov ON/OFF TTI service ------------------------------------
        # Choose transition probabilities so the stationary ON fraction is
        # serve_prob and mean ON run length differs by technology: LTE's
        # scheduler interleaves users finely (short runs), 3G HSPA+ serves
        # longer runs, producing the bigger, rarer bursts of Fig 2.
        mean_on_run = 1.5 if p.technology == "lte" else 3.0
        q_off = 1.0 / mean_on_run                 # P(on -> off)
        denom = max(1e-9, 1.0 - p.serve_prob)
        q_on = min(1.0, q_off * p.serve_prob / denom)  # P(off -> on)

        serialize_dt = p.packet_bytes * 8.0 / p.peak_rate_bps
        times: List[float] = []
        on = rng.random() < p.serve_prob
        base_capacity = capacity_bps if capacity_bps is not None else p.mean_rate_bps
        # Lognormal fading multipliers have mean exp(var/2) > 1; divide it
        # out so high-mobility scenarios still average the configured rate.
        ou_var = (p.fading_sigma ** 2 / (2.0 * p.fading_theta)
                  if p.fading_theta > 0 else p.fading_sigma ** 2)
        fade_correction = math.exp(0.5 * (ou_var + p.fast_fading_sigma ** 2))

        # Hot loop: ~1000 iterations per simulated second.  Hoist every
        # per-iteration attribute/property lookup, index the precomputed
        # paths as plain Python scalars (.tolist() — identical doubles,
        # no numpy-scalar boxing), and inline _draw_burst.  The RNG draw
        # sequence and every arithmetic expression are those of the
        # straightforward loop, so traces are bit-identical; note the
        # share draw was already short-circuited away when share == 1.0,
        # which is why skipping _user_share entirely without competitors
        # leaves the stream untouched.
        mean_burst_nominal = p.mean_burst_packets
        burst_sigma = p.burst_sigma
        fast_sigma = p.fast_fading_sigma
        rng_random = rng.random
        rng_normal = rng.normal
        rng_uniform = rng.uniform
        rng_lognormal = rng.lognormal
        exp = math.exp
        log = math.log
        append = times.append
        log_fade_l = log_fade.tolist()
        in_outage_l = in_outage.tolist()
        half_tti = TTI_SECONDS * 0.5
        has_competitors = bool(competitors)

        for i in range(n_ttis):
            if in_outage_l[i]:
                on = False
                continue
            # Markov state update
            if on:
                if rng_random() < q_off:
                    on = False
            else:
                if rng_random() < q_on:
                    on = True
            if not on:
                continue
            t = i * TTI_SECONDS
            if has_competitors:
                share = self._user_share(t, base_capacity, competitors)
                if share < 1.0 and rng_random() > share:
                    # The competitor won this TTI.
                    continue
            fade = (exp(log_fade_l[i])
                    * exp(rng_normal(0.0, fast_sigma))
                    / fade_correction)
            mean_burst = mean_burst_nominal * fade
            # _draw_burst, inlined (lognormal size + randomised rounding).
            if mean_burst <= 0:
                continue
            mu = log(mean_burst) - 0.5 * burst_sigma * burst_sigma
            value = rng_lognormal(mu, burst_sigma)
            base = int(value)
            k = base + (1 if rng_random() < value - base else 0)
            if k <= 0:
                continue
            # Sub-TTI jitter of the burst start, then back-to-back packets
            # at the peak radio rate.
            start = t + rng_uniform(0.0, half_tti)
            for j in range(k):
                ts = start + j * serialize_dt
                if ts < duration:
                    append(ts)

        arr = np.asarray(sorted(times), dtype=float)
        if arr.size == 0:
            # Degenerate (e.g. full outage): guarantee a non-empty trace.
            arr = np.array([duration / 2.0])
        return arr

    # ------------------------------------------------------------------
    def stepper(self, capacity_bps: Optional[float] = None,
                competitors: Sequence[CompetingUser] = ()) -> "ChannelStepper":
        """Incremental real-time view of this channel.

        :meth:`generate` materialises a whole trace up front, which a live
        emulator cannot do for an open-ended session.  The returned
        :class:`ChannelStepper` produces the same composed processes
        (OU slow fading, Markov ON/OFF TTIs, log-normal bursts, Poisson
        outages, competing-user share) chunk by chunk, carrying every
        process state across calls, so delivery opportunities can be
        drawn just-in-time as wall-clock time advances.
        """
        return ChannelStepper(self, capacity_bps=capacity_bps,
                              competitors=competitors)

    # ------------------------------------------------------------------
    def _draw_burst(self, mean_packets: float) -> int:
        """Log-normal burst size with the configured dispersion."""
        if mean_packets <= 0:
            return 0
        sigma = self.params.burst_sigma
        mu = math.log(mean_packets) - 0.5 * sigma * sigma
        value = self.rng.lognormal(mu, sigma)
        # Randomised rounding keeps the mean unbiased for small bursts.
        base = int(value)
        frac = value - base
        return base + (1 if self.rng.random() < frac else 0)

    def _ou_path(self, n: int, theta: float, sigma: float) -> np.ndarray:
        """Ornstein–Uhlenbeck sample path around 0 in the log-rate domain."""
        dt = TTI_SECONDS
        x = np.empty(n)
        x[0] = self.rng.normal(0.0, sigma / math.sqrt(max(2 * theta, 1e-9)))
        sq = sigma * math.sqrt(dt)
        noise = self.rng.normal(0.0, 1.0, size=n - 1) if n > 1 else np.empty(0)
        for i in range(1, n):
            x[i] = x[i - 1] - theta * x[i - 1] * dt + sq * noise[i - 1]
        return x

    def _outage_mask(self, n_ttis: int, duration: float) -> np.ndarray:
        mask = np.zeros(n_ttis, dtype=bool)
        p = self.params
        if p.outage_rate <= 0:
            return mask
        n_outages = self.rng.poisson(p.outage_rate * duration)
        for _ in range(n_outages):
            start = self.rng.uniform(0.0, duration)
            length = self.rng.exponential(p.outage_duration)
            i0 = int(start / TTI_SECONDS)
            i1 = min(n_ttis, int((start + length) / TTI_SECONDS) + 1)
            mask[i0:i1] = True
        return mask

    @staticmethod
    def _user_share(t: float, capacity_bps: float,
                    competitors: Sequence[CompetingUser]) -> float:
        """Probability this user wins a contended TTI at time ``t``.

        Water-filling approximation of the proportional-fair scheduler: the
        competitors take their demand up to their fair share of the cell,
        and this user keeps the remainder of the TTIs.  A floor keeps the
        user from being fully starved (the scheduler never cuts a user off
        entirely).
        """
        if not competitors:
            return 1.0
        active = [c.demand_at(t) for c in competitors]
        other = sum(active)
        if other <= 0:
            return 1.0
        n_active = sum(1 for d in active if d > 0)
        fair_cap = capacity_bps * n_active / (n_active + 1.0)
        taken = min(other, fair_cap)
        return min(1.0, max(0.05, (capacity_bps - taken) / capacity_bps))


class ChannelStepper:
    """Stateful, incremental delivery-opportunity generator.

    Created by :meth:`CellularChannelModel.stepper`.  Each :meth:`advance`
    call extends the trace by ``dt`` seconds and returns only the new
    opportunities, so a real-time consumer (the :mod:`repro.live` link
    emulator) can pull the channel forward in small chunks without ever
    knowing the session duration.  All stochastic state — the OU
    slow-fading level, the Markov TTI service state and any in-progress
    outage — persists across calls; concatenating the chunks yields a
    statistically identical trace to one :meth:`generate` call.
    """

    def __init__(self, model: CellularChannelModel,
                 capacity_bps: Optional[float] = None,
                 competitors: Sequence[CompetingUser] = ()):
        self.model = model
        self.params = model.params
        self.rng = model.rng
        self.competitors = tuple(competitors)
        p = self.params
        self.capacity_bps = (capacity_bps if capacity_bps is not None
                             else p.mean_rate_bps)
        #: Continuous time (seconds) up to which the channel has been drawn.
        self.now: float = 0.0
        self._tti_index = 0
        self._on = self.rng.random() < p.serve_prob
        # OU initial condition: stationary distribution, as in _ou_path.
        self._log_fade = float(self.rng.normal(
            0.0, p.fading_sigma / math.sqrt(max(2 * p.fading_theta, 1e-9))))
        self._outage_until = 0.0
        mean_on_run = 1.5 if p.technology == "lte" else 3.0
        self._q_off = 1.0 / mean_on_run
        denom = max(1e-9, 1.0 - p.serve_prob)
        self._q_on = min(1.0, self._q_off * p.serve_prob / denom)
        ou_var = (p.fading_sigma ** 2 / (2.0 * p.fading_theta)
                  if p.fading_theta > 0 else p.fading_sigma ** 2)
        self._fade_correction = math.exp(
            0.5 * (ou_var + p.fast_fading_sigma ** 2))
        self._serialize_dt = p.packet_bytes * 8.0 / p.peak_rate_bps
        self._ou_sq = p.fading_sigma * math.sqrt(TTI_SECONDS)

    def advance(self, dt: float) -> np.ndarray:
        """Draw the delivery opportunities in ``[now, now + dt)``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        p = self.params
        rng = self.rng
        end = self.now + dt
        end_tti = int(math.ceil(end / TTI_SECONDS))
        times: List[float] = []
        while self._tti_index < end_tti:
            i = self._tti_index
            self._tti_index += 1
            t = i * TTI_SECONDS
            # OU update runs every TTI, in or out of outage, mirroring
            # the precomputed path of CellularChannelModel._ou_path.
            self._log_fade += (-p.fading_theta * self._log_fade * TTI_SECONDS
                               + self._ou_sq * float(rng.normal()))
            # Poisson outage arrivals, drawn per TTI instead of globally.
            if p.outage_rate > 0 and t >= self._outage_until:
                if rng.random() < p.outage_rate * TTI_SECONDS:
                    self._outage_until = t + float(
                        rng.exponential(p.outage_duration))
            if t < self._outage_until:
                self._on = False
                continue
            if self._on:
                if rng.random() < self._q_off:
                    self._on = False
            else:
                if rng.random() < self._q_on:
                    self._on = True
            if not self._on:
                continue
            share = CellularChannelModel._user_share(
                t, self.capacity_bps, self.competitors)
            if share < 1.0 and rng.random() > share:
                continue
            fade = (math.exp(self._log_fade)
                    * math.exp(rng.normal(0.0, p.fast_fading_sigma))
                    / self._fade_correction)
            k = self.model._draw_burst(p.mean_burst_packets * fade)
            if k <= 0:
                continue
            start = t + rng.uniform(0.0, TTI_SECONDS * 0.5)
            for j in range(k):
                ts = start + j * self._serialize_dt
                if self.now <= ts < end:
                    times.append(ts)
        self.now = end
        return np.asarray(sorted(times), dtype=float)


def trace_rate_bps(times: np.ndarray, packet_bytes: int = MTU_BYTES) -> float:
    """Average offered rate of a delivery-opportunity trace."""
    arr = np.asarray(times, dtype=float)
    if arr.size < 2:
        return 0.0
    span = float(arr[-1] - arr[0])
    if span <= 0:
        return 0.0
    return arr.size * packet_bytes * 8.0 / span
