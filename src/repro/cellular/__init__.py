"""Cellular channel substrate.

Synthetic burst-scheduled 3G/LTE channel model (substituting for the
paper's commercial-network measurements), named measurement scenarios,
Mahimahi-style trace I/O, burst statistics (Figs 1–2) and channel
predictors (§3 unpredictability analysis).
"""

from .bursts import BurstStats, burst_table, detect_bursts, log_pdf
from .channel_model import (
    TTI_SECONDS,
    CellularChannelModel,
    ChannelParams,
    ChannelStepper,
    CompetingUser,
    trace_rate_bps,
)
from .predictors import (
    EwmaPredictor,
    HoltPredictor,
    LastValuePredictor,
    LinearPredictor,
    MeanPredictor,
    PredictionScore,
    Predictor,
    compare_predictors,
    evaluate_predictor,
)
from .scenarios import (
    DEFAULT_RATE_BPS,
    EVALUATION_SCENARIOS,
    SCENARIO_NAMES,
    UPLINK_RATE_BPS,
    all_scenario_traces,
    generate_scenario_trace,
    mobile_variant,
    operator_presets,
    scenario_params,
)
from .trace_io import (
    TraceFormatError,
    concatenate_traces,
    load_trace,
    save_trace,
    scale_trace,
)
from .validation import ChannelValidation, compare_technologies, validate_trace

__all__ = [
    "BurstStats",
    "CellularChannelModel",
    "ChannelValidation",
    "ChannelParams",
    "ChannelStepper",
    "CompetingUser",
    "DEFAULT_RATE_BPS",
    "EVALUATION_SCENARIOS",
    "EwmaPredictor",
    "HoltPredictor",
    "LastValuePredictor",
    "LinearPredictor",
    "MeanPredictor",
    "PredictionScore",
    "Predictor",
    "SCENARIO_NAMES",
    "TTI_SECONDS",
    "TraceFormatError",
    "UPLINK_RATE_BPS",
    "all_scenario_traces",
    "burst_table",
    "compare_predictors",
    "compare_technologies",
    "concatenate_traces",
    "detect_bursts",
    "evaluate_predictor",
    "generate_scenario_trace",
    "load_trace",
    "log_pdf",
    "mobile_variant",
    "operator_presets",
    "save_trace",
    "scale_trace",
    "trace_rate_bps",
    "validate_trace",
]
