"""Statistical validation of the synthetic channel model.

The substitution argument in DESIGN.md rests on the synthetic channel
reproducing the *distributional* features the paper measured (§3).
This module quantifies them so tests and benchmarks can assert they hold
for any parameterisation:

* burst sizes are heavy-tailed (high coefficient of variation, large
  p95/median ratio — the paper's Fig 2 PDFs span 1 kB–1 MB);
* burst inter-arrivals span orders of magnitude;
* windowed throughput has high short-window variability that *grows*
  as the window shrinks (Fig 4);
* rate is non-stationary across seconds (slow fading) yet calibrated to
  the configured mean;
* LTE vs 3G ordering: more frequent, smaller bursts on LTE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..metrics import windowed_throughput
from .bursts import detect_bursts
from .channel_model import trace_rate_bps


@dataclass
class ChannelValidation:
    """Distributional summary of one delivery-opportunity trace."""

    mean_rate_bps: float
    burst_count: int
    burst_size_cv: float
    burst_size_p95_over_median: float
    interarrival_span_ratio: float     # p99 / p10 of gaps
    cv_100ms: float
    cv_20ms: float
    second_scale_cv: float             # variability of 1 s windows

    def checks(self, target_rate_bps: Optional[float] = None,
               rate_tolerance: float = 0.35) -> Dict[str, bool]:
        """The §3 channel properties as named pass/fail checks."""
        out = {
            "bursty_sizes": self.burst_size_cv > 0.4,
            "heavy_tail_sizes": self.burst_size_p95_over_median > 2.0,
            "interarrivals_vary_widely": self.interarrival_span_ratio > 3.0,
            "short_windows_more_variable": self.cv_20ms > self.cv_100ms,
            "fluctuates_at_100ms": self.cv_100ms > 0.2,
            "nonstationary_at_seconds": self.second_scale_cv > 0.05,
        }
        if target_rate_bps is not None:
            lo = (1 - rate_tolerance) * target_rate_bps
            hi = (1 + rate_tolerance) * target_rate_bps
            out["rate_calibrated"] = lo < self.mean_rate_bps < hi
        return out

    def all_ok(self, target_rate_bps: Optional[float] = None) -> bool:
        return all(self.checks(target_rate_bps).values())


def validate_trace(trace: np.ndarray, packet_bytes: int = 1400,
                   duration: Optional[float] = None) -> ChannelValidation:
    """Compute the distributional summary for one trace."""
    arr = np.asarray(trace, dtype=float)
    if arr.size < 50:
        raise ValueError("trace too short to validate (need >= 50 packets)")
    if duration is None:
        duration = float(arr[-1])

    bursts = detect_bursts(arr, packet_bytes=packet_bytes)
    sizes = bursts.sizes_bytes
    gaps = bursts.inter_arrivals
    deliveries = [(t, i, 0.0, packet_bytes) for i, t in enumerate(arr)]
    _, w100 = windowed_throughput(deliveries, 0.100, end=duration)
    _, w20 = windowed_throughput(deliveries, 0.020, end=duration)
    _, w1s = windowed_throughput(deliveries, 1.0, end=duration)

    def cv(series):
        mean = float(np.mean(series))
        return float(np.std(series)) / mean if mean > 0 else float("inf")

    return ChannelValidation(
        mean_rate_bps=trace_rate_bps(arr, packet_bytes=packet_bytes),
        burst_count=bursts.count,
        burst_size_cv=float(np.std(sizes) / max(np.mean(sizes), 1e-9)),
        burst_size_p95_over_median=float(
            np.percentile(sizes, 95) / max(np.median(sizes), 1e-9)),
        interarrival_span_ratio=float(
            np.percentile(gaps, 99) / max(np.percentile(gaps, 10), 1e-9))
        if gaps.size else float("inf"),
        cv_100ms=cv(w100),
        cv_20ms=cv(w20),
        second_scale_cv=cv(w1s),
    )


def compare_technologies(trace_3g: np.ndarray, trace_lte: np.ndarray,
                         packet_bytes: int = 1400) -> Dict[str, bool]:
    """Fig 2's operator-independent ordering between 3G and LTE."""
    b3g = detect_bursts(np.asarray(trace_3g), packet_bytes=packet_bytes)
    lte = detect_bursts(np.asarray(trace_lte), packet_bytes=packet_bytes)
    return {
        "lte_more_bursts": lte.count > b3g.count,
        "lte_smaller_bursts": (float(np.mean(lte.sizes_bytes))
                               < float(np.mean(b3g.sizes_bytes))),
        "lte_shorter_gaps": (float(np.mean(lte.inter_arrivals))
                             < float(np.mean(b3g.inter_arrivals))),
    }
