"""Burst detection and statistics over packet-arrival traces.

Reproduces the §3 analysis behind Fig 1 (burst arrival pattern) and Fig 2
(probability distributions of burst size and burst inter-arrival time).  A
*burst* is a maximal run of packet arrivals separated by less than a gap
threshold (default: one TTI, 1 ms — the scheduler granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..netsim.packet import MTU_BYTES


@dataclass
class BurstStats:
    """Per-trace burst statistics.

    ``sizes_bytes`` — total bytes per burst.
    ``inter_arrivals`` — seconds between consecutive burst starts.
    ``start_times`` — burst start timestamps.
    """

    sizes_bytes: np.ndarray
    inter_arrivals: np.ndarray
    start_times: np.ndarray

    @property
    def count(self) -> int:
        return int(self.sizes_bytes.size)

    def summary(self) -> dict:
        if self.count == 0:
            return {"bursts": 0}
        return {
            "bursts": self.count,
            "mean_size_bytes": float(np.mean(self.sizes_bytes)),
            "median_size_bytes": float(np.median(self.sizes_bytes)),
            "p95_size_bytes": float(np.percentile(self.sizes_bytes, 95)),
            "mean_interarrival_ms": float(np.mean(self.inter_arrivals) * 1e3)
            if self.inter_arrivals.size else float("nan"),
            "cv_size": float(np.std(self.sizes_bytes)
                             / max(np.mean(self.sizes_bytes), 1e-12)),
        }


def detect_bursts(arrival_times: np.ndarray, gap_threshold: float = 0.001,
                  packet_bytes: int = MTU_BYTES) -> BurstStats:
    """Group packet arrivals into bursts separated by ``gap_threshold``."""
    times = np.asarray(arrival_times, dtype=float)
    if times.ndim != 1:
        raise ValueError("arrival_times must be one-dimensional")
    if times.size == 0:
        empty = np.empty(0)
        return BurstStats(empty, empty, empty)
    if np.any(np.diff(times) < 0):
        raise ValueError("arrival_times must be sorted")
    if gap_threshold <= 0:
        raise ValueError("gap_threshold must be positive")

    gaps = np.diff(times)
    boundaries = np.flatnonzero(gaps >= gap_threshold) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [times.size]])
    sizes = (ends - starts) * packet_bytes
    start_times = times[starts]
    inter = np.diff(start_times)
    return BurstStats(sizes_bytes=sizes.astype(float),
                      inter_arrivals=inter,
                      start_times=start_times)


def log_pdf(values: np.ndarray, bins: int = 40,
            floor: float = 1e-12) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram density on logarithmic bins (the Fig 2 presentation).

    Returns ``(bin_centers, density)``; density integrates to one over the
    linear measure.  Zero/negative values are excluded.
    """
    arr = np.asarray(values, dtype=float)
    arr = arr[arr > floor]
    if arr.size == 0:
        return np.empty(0), np.empty(0)
    lo, hi = arr.min(), arr.max()
    if lo == hi:
        hi = lo * 1.0001 + floor
    edges = np.logspace(np.log10(lo), np.log10(hi), bins + 1)
    density, _ = np.histogram(arr, bins=edges, density=True)
    centers = np.sqrt(edges[:-1] * edges[1:])
    return centers, density


def burst_table(stats_by_label: dict) -> List[dict]:
    """Flatten per-configuration burst summaries into printable rows."""
    rows = []
    for label, stats in stats_by_label.items():
        row = {"config": label}
        row.update(stats.summary())
        rows.append(row)
    return rows
