"""Channel throughput predictors and their evaluation.

§3 of the paper ("Channel Unpredictability") tries simple predictors —
linear and k-step-ahead — on windowed throughput series and finds they
"fail to track the high variations of the channel".  This module implements
those predictors plus EWMA and Holt double-exponential smoothing, and an
evaluation harness that compares their error against the trivial
last-value (naive) predictor.  The headline reproduction claim is that no
predictor beats naive by a meaningful margin on bursty cellular series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


class Predictor:
    """One-step-at-a-time predictor over a scalar series.

    ``update(value)`` feeds the next observation; ``predict(k)`` forecasts
    the value ``k`` steps ahead of the last observation.
    """

    name = "predictor"

    def update(self, value: float) -> None:
        raise NotImplementedError

    def predict(self, k: int = 1) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class LastValuePredictor(Predictor):
    """Naive persistence: tomorrow equals today."""

    name = "naive"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        self._last = value

    def predict(self, k: int = 1) -> float:
        return 0.0 if self._last is None else self._last

    def reset(self) -> None:
        self._last = None


class MeanPredictor(Predictor):
    """Rolling mean over the most recent ``window`` samples."""

    name = "mean"

    def __init__(self, window: int = 10) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._buf: List[float] = []

    def update(self, value: float) -> None:
        self._buf.append(value)
        if len(self._buf) > self.window:
            self._buf.pop(0)

    def predict(self, k: int = 1) -> float:
        return float(np.mean(self._buf)) if self._buf else 0.0

    def reset(self) -> None:
        self._buf.clear()


class LinearPredictor(Predictor):
    """Least-squares line over the last ``window`` samples, extrapolated.

    This is the "linear predictor" of §3: fit y = a + b·t on recent samples
    and extend the line ``k`` steps ahead.
    """

    name = "linear"

    def __init__(self, window: int = 10) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        self._buf: List[float] = []

    def update(self, value: float) -> None:
        self._buf.append(value)
        if len(self._buf) > self.window:
            self._buf.pop(0)

    def predict(self, k: int = 1) -> float:
        n = len(self._buf)
        if n == 0:
            return 0.0
        if n == 1:
            return self._buf[0]
        t = np.arange(n, dtype=float)
        b, a = np.polyfit(t, np.asarray(self._buf), 1)
        return float(a + b * (n - 1 + k))

    def reset(self) -> None:
        self._buf.clear()


class EwmaPredictor(Predictor):
    """Exponentially weighted moving average (flat forecast)."""

    name = "ewma"

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._level: Optional[float] = None

    def update(self, value: float) -> None:
        if self._level is None:
            self._level = value
        else:
            self._level += self.alpha * (value - self._level)

    def predict(self, k: int = 1) -> float:
        return 0.0 if self._level is None else float(self._level)

    def reset(self) -> None:
        self._level = None


class HoltPredictor(Predictor):
    """Holt double-exponential smoothing (level + trend), the standard
    "k-step-ahead" forecaster the paper experiments with."""

    name = "holt"

    def __init__(self, alpha: float = 0.4, beta: float = 0.2) -> None:
        for name, v in (("alpha", alpha), ("beta", beta)):
            if not 0 < v <= 1:
                raise ValueError(f"{name} must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self._level: Optional[float] = None
        self._trend = 0.0

    def update(self, value: float) -> None:
        if self._level is None:
            self._level = value
            self._trend = 0.0
            return
        prev = self._level
        self._level = self.alpha * value + (1 - self.alpha) * (prev + self._trend)
        self._trend = self.beta * (self._level - prev) + (1 - self.beta) * self._trend

    def predict(self, k: int = 1) -> float:
        if self._level is None:
            return 0.0
        return float(self._level + k * self._trend)

    def reset(self) -> None:
        self._level = None
        self._trend = 0.0


@dataclass
class PredictionScore:
    """Error metrics of a predictor over one series."""

    name: str
    rmse: float
    mae: float
    #: Ratio of this predictor's RMSE to the naive predictor's RMSE;
    #: values near (or above) 1.0 mean the predictor adds nothing.
    rmse_vs_naive: float


def evaluate_predictor(predictor: Predictor, series: Sequence[float],
                       horizon: int = 1, warmup: int = 5) -> Dict[str, float]:
    """Walk-forward evaluation: predict ``horizon`` steps, then reveal."""
    values = np.asarray(series, dtype=float)
    if values.size <= warmup + horizon:
        raise ValueError("series too short for the requested warmup/horizon")
    predictor.reset()
    errors = []
    for i, value in enumerate(values):
        if i >= warmup and i + horizon < values.size:
            pred = predictor.predict(horizon)
            errors.append(pred - values[i + horizon])
        predictor.update(value)
    err = np.asarray(errors)
    return {"rmse": float(np.sqrt(np.mean(err ** 2))),
            "mae": float(np.mean(np.abs(err)))}


def compare_predictors(series: Sequence[float], horizon: int = 1,
                       predictors: Optional[List[Predictor]] = None,
                       warmup: int = 5) -> List[PredictionScore]:
    """Score a predictor suite against the naive baseline on one series."""
    if predictors is None:
        predictors = [LinearPredictor(), EwmaPredictor(), HoltPredictor(),
                      MeanPredictor()]
    naive = evaluate_predictor(LastValuePredictor(), series, horizon, warmup)
    scores = [PredictionScore("naive", naive["rmse"], naive["mae"], 1.0)]
    for predictor in predictors:
        result = evaluate_predictor(predictor, series, horizon, warmup)
        scores.append(PredictionScore(
            predictor.name, result["rmse"], result["mae"],
            result["rmse"] / max(naive["rmse"], 1e-12)))
    return scores
