"""Named channel scenarios mirroring the paper's measurement campaigns.

§5.3 of the paper collects 5-minute traces in seven scenarios — "Campus
stationary, Campus pedestrian, City stationary, City driving, Highway
driving, Shopping Mall and City waterfront" — on a 3G HSPA+ network at
5 Mbps downlink / 2.5 Mbps uplink per device.  §3 additionally measures two
operators (Etisalat- and Du-like presets) on 3G and LTE.

Each scenario maps to a :class:`~repro.cellular.channel_model.ChannelParams`
preset whose mobility class sets the fading volatility and outage behaviour:

* ``stationary`` — slow OU drift, no outages.
* ``pedestrian`` — moderate drift, rare brief outages.
* ``driving`` — fast drift, regular outages (handovers).
* ``highway`` — fastest drift, frequent longer outages.
* ``indoor`` (mall) — slow drift but deep shadowing variance.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from .channel_model import CellularChannelModel, ChannelParams

#: The seven trace-collection scenarios of §5.3, in paper order.
SCENARIO_NAMES = [
    "campus_stationary",
    "campus_pedestrian",
    "city_stationary",
    "city_driving",
    "highway_driving",
    "shopping_mall",
    "city_waterfront",
]

#: The five scenarios used for the §6.2 trace-driven contention evaluation
#: (the paper reports fairness "across all five different scenarios").
EVALUATION_SCENARIOS = [
    "campus_pedestrian",
    "city_stationary",
    "city_driving",
    "highway_driving",
    "shopping_mall",
]

_MOBILITY = {
    "stationary": dict(fading_theta=0.3, fading_sigma=0.18,
                       fast_fading_sigma=0.12, outage_rate=0.0,
                       outage_duration=0.0),
    "pedestrian": dict(fading_theta=0.5, fading_sigma=0.30,
                       fast_fading_sigma=0.18, outage_rate=0.01,
                       outage_duration=0.3),
    "driving": dict(fading_theta=0.9, fading_sigma=0.45,
                    fast_fading_sigma=0.25, outage_rate=0.05,
                    outage_duration=0.5),
    "highway": dict(fading_theta=1.2, fading_sigma=0.60,
                    fast_fading_sigma=0.30, outage_rate=0.08,
                    outage_duration=0.8),
    "indoor": dict(fading_theta=0.25, fading_sigma=0.40,
                   fast_fading_sigma=0.20, outage_rate=0.02,
                   outage_duration=0.4),
}

_SCENARIO_MOBILITY = {
    "campus_stationary": "stationary",
    "campus_pedestrian": "pedestrian",
    "city_stationary": "stationary",
    "city_driving": "driving",
    "highway_driving": "highway",
    "shopping_mall": "indoor",
    "city_waterfront": "pedestrian",
}

#: Technology presets: 3G HSPA+ serves rarer, bigger bursts; LTE serves
#: frequent small bursts (paper Fig 2: "LTE networks exhibit more frequent
#: smaller bursts").
_TECHNOLOGY = {
    "3g": dict(technology="3g", serve_prob=0.18, burst_sigma=0.85,
               peak_rate_bps=42e6, loss_rate=0.002),
    "lte": dict(technology="lte", serve_prob=0.55, burst_sigma=0.55,
                peak_rate_bps=150e6, loss_rate=0.001),
}

#: Operator flavours for the §3 measurement reproduction (Fig 2): the two
#: UAE operators differ mildly in scheduler granularity and load.
_OPERATOR = {
    "etisalat": dict(),
    "du": dict(serve_prob_scale=0.8, burst_sigma_delta=0.1),
}

#: Default downlink rates used in the paper's trace collection.
DEFAULT_RATE_BPS = {"3g": 5e6, "lte": 10e6}
UPLINK_RATE_BPS = {"3g": 2.5e6, "lte": 5e6}


def scenario_params(name: str, technology: str = "3g",
                    mean_rate_bps: Optional[float] = None,
                    operator: str = "etisalat",
                    direction: str = "downlink") -> ChannelParams:
    """Build the channel parameters for a named measurement scenario.

    ``direction`` selects the paper's downlink (default) or uplink
    configuration; the uplink runs at the §5.3 uplink rates (e.g.
    2.5 Mbps on 3G HSPA+) with a sparser grant schedule, matching the
    paper's note that "the observations are similar on the uplink".
    """
    if name not in _SCENARIO_MOBILITY:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {SCENARIO_NAMES}")
    if technology not in _TECHNOLOGY:
        raise ValueError(f"unknown technology {technology!r}")
    if operator not in _OPERATOR:
        raise ValueError(f"unknown operator {operator!r}")
    if direction not in ("downlink", "uplink"):
        raise ValueError(f"direction must be 'downlink' or 'uplink'")

    tech = dict(_TECHNOLOGY[technology])
    op = _OPERATOR[operator]
    serve_prob = tech.pop("serve_prob") * op.get("serve_prob_scale", 1.0)
    burst_sigma = tech.pop("burst_sigma") + op.get("burst_sigma_delta", 0.0)
    mobility = _MOBILITY[_SCENARIO_MOBILITY[name]]
    if direction == "uplink":
        # Uplink grants are scheduled more sparsely (request/grant cycle)
        # and the default rate drops to the uplink provisioning.
        serve_prob *= 0.7
        default_rate = UPLINK_RATE_BPS[technology]
    else:
        default_rate = DEFAULT_RATE_BPS[technology]
    rate = mean_rate_bps if mean_rate_bps is not None else default_rate

    return ChannelParams(
        name=f"{name}/{technology}/{operator}/{direction}",
        mean_rate_bps=rate,
        serve_prob=serve_prob,
        burst_sigma=burst_sigma,
        **tech,
        **mobility,
    )


def generate_scenario_trace(name: str, duration: float = 300.0,
                            technology: str = "3g",
                            mean_rate_bps: Optional[float] = None,
                            operator: str = "etisalat",
                            direction: str = "downlink",
                            seed: int = 0) -> np.ndarray:
    """Delivery-opportunity trace for a named scenario (default 5 minutes,
    matching the paper's collection runs)."""
    params = scenario_params(name, technology=technology,
                             mean_rate_bps=mean_rate_bps, operator=operator,
                             direction=direction)
    model = CellularChannelModel(params, rng=np.random.default_rng(seed))
    return model.generate(duration)


def all_scenario_traces(duration: float = 60.0, technology: str = "3g",
                        seed: int = 0,
                        names: Optional[List[str]] = None) -> Dict[str, np.ndarray]:
    """Traces for every (or the given) scenario, keyed by scenario name."""
    chosen = names if names is not None else SCENARIO_NAMES
    return {
        name: generate_scenario_trace(name, duration=duration,
                                      technology=technology,
                                      seed=seed + i)
        for i, name in enumerate(chosen)
    }


def operator_presets() -> Dict[str, ChannelParams]:
    """The four §3 measurement configurations of Fig 2."""
    combos = [("du", "3g"), ("etisalat", "3g"), ("du", "lte"), ("etisalat", "lte")]
    return {
        f"{op}_{tech}": scenario_params("city_stationary", technology=tech,
                                        operator=op)
        for op, tech in combos
    }


def mobile_variant(params: ChannelParams, mobility: str) -> ChannelParams:
    """Re-class an existing preset into another mobility class."""
    if mobility not in _MOBILITY:
        raise ValueError(f"unknown mobility class {mobility!r}")
    return replace(params, **_MOBILITY[mobility])
