"""Reading and writing delivery-opportunity traces.

Traces use the Mahimahi/Sprout text convention: one integer per line, the
millisecond timestamp of a delivery opportunity (repeated timestamps mean
multiple packet slots in the same millisecond).  This keeps generated
synthetic traces interchangeable with real recorded traces.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

PathLike = Union[str, os.PathLike]


def save_trace(path: PathLike, times_s: np.ndarray) -> None:
    """Write a trace (seconds) to a Mahimahi-style millisecond file."""
    arr = np.asarray(times_s, dtype=float)
    if arr.ndim != 1:
        raise ValueError("trace must be one-dimensional")
    if arr.size and np.any(np.diff(arr) < 0):
        raise ValueError("trace timestamps must be sorted")
    ms = np.round(arr * 1000.0).astype(np.int64)
    Path(path).write_text("\n".join(str(int(v)) for v in ms) + "\n")


def load_trace(path: PathLike) -> np.ndarray:
    """Read a Mahimahi-style millisecond trace into seconds."""
    text = Path(path).read_text()
    values = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            values.append(int(line))
        except ValueError as exc:
            raise ValueError(f"{path}: bad trace line {line_no}: {line!r}") from exc
    arr = np.asarray(values, dtype=float) / 1000.0
    if arr.size and np.any(np.diff(arr) < 0):
        raise ValueError(f"{path}: trace timestamps are not sorted")
    return arr


def concatenate_traces(*traces: np.ndarray, gap_s: float = 0.001) -> np.ndarray:
    """Join traces back to back, shifting each to follow the previous one."""
    parts = []
    offset = 0.0
    for trace in traces:
        arr = np.asarray(trace, dtype=float)
        if arr.size == 0:
            continue
        parts.append(arr - arr[0] + offset)
        offset = parts[-1][-1] + gap_s
    if not parts:
        return np.empty(0)
    return np.concatenate(parts)


def scale_trace(times_s: np.ndarray, factor: float) -> np.ndarray:
    """Speed a trace up (< 1) or slow it down (> 1) in time."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return np.asarray(times_s, dtype=float) * factor
