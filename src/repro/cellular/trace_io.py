"""Reading and writing delivery-opportunity traces.

Traces use the Mahimahi/Sprout text convention: one integer per line, the
millisecond timestamp of a delivery opportunity (repeated timestamps mean
multiple packet slots in the same millisecond).  This keeps generated
synthetic traces interchangeable with real recorded traces.

:mod:`repro.traces.formats` builds on these primitives with multi-format
readers/writers (mahimahi / newline-seconds / CSV rate series) and
lossless conversion; this module stays the minimal dependency-free core
the simulator and live emulator load traces through.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Union

import numpy as np

PathLike = Union[str, os.PathLike]


class TraceFormatError(ValueError):
    """A trace file or array violates the delivery-opportunity contract.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; raised for malformed lines, NaN or negative
    timestamps and unsorted sequences — each of which would otherwise
    produce a silently misbehaving :class:`~repro.netsim.trace_link.TraceLink`.
    """


def _validate_times(arr: np.ndarray, origin: str) -> None:
    """Reject NaN / negative / unsorted timestamps with a clear error."""
    if arr.ndim != 1:
        raise TraceFormatError(f"{origin}: trace must be one-dimensional")
    if arr.size == 0:
        return
    if np.any(np.isnan(arr)):
        raise TraceFormatError(f"{origin}: trace contains NaN timestamps")
    if arr[0] < 0:
        raise TraceFormatError(f"{origin}: trace timestamps must be "
                               f"non-negative (first is {arr[0]!r})")
    if np.any(np.diff(arr) < 0):
        raise TraceFormatError(f"{origin}: trace timestamps are not sorted")


def save_trace(path: PathLike, times_s: np.ndarray) -> None:
    """Write a trace (seconds) to a Mahimahi-style millisecond file."""
    arr = np.asarray(times_s, dtype=float)
    _validate_times(arr, str(path))
    ms = np.round(arr * 1000.0).astype(np.int64)
    Path(path).write_text("\n".join(str(int(v)) for v in ms) + "\n")


def load_trace(path: PathLike) -> np.ndarray:
    """Read a Mahimahi-style millisecond trace into seconds."""
    text = Path(path).read_text()
    values = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            value = int(line)
        except ValueError:
            # Reject float-looking lines too: "nan", "1.5", "inf" are all
            # format violations for the integer-millisecond convention.
            raise TraceFormatError(
                f"{path}: bad trace line {line_no}: {line!r}") from None
        if not math.isfinite(value):  # pragma: no cover - int() is finite
            raise TraceFormatError(
                f"{path}: non-finite timestamp on line {line_no}")
        values.append(value)
    arr = np.asarray(values, dtype=float) / 1000.0
    _validate_times(arr, str(path))
    return arr


def concatenate_traces(*traces: np.ndarray, gap_s: float = 0.001) -> np.ndarray:
    """Join traces back to back, shifting each to follow the previous one."""
    parts = []
    offset = 0.0
    for trace in traces:
        arr = np.asarray(trace, dtype=float)
        if arr.size == 0:
            continue
        parts.append(arr - arr[0] + offset)
        offset = parts[-1][-1] + gap_s
    if not parts:
        return np.empty(0)
    return np.concatenate(parts)


def scale_trace(times_s: np.ndarray, factor: float) -> np.ndarray:
    """Speed a trace up (< 1) or slow it down (> 1) in time."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return np.asarray(times_s, dtype=float) * factor
