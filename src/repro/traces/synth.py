"""Seeded trace synthesis from the cellular channel model's presets.

A :class:`SynthSpec` pins everything the channel model needs — regime,
technology, rate, duration, seed — so a corpus manifest can regenerate
its synthetic traces **bit-identically** from the spec alone: the spec
is the provenance record, the trace file is a cache.

Regimes map the paper's §5.3 mobility classes onto named scenarios:

* ``stationary`` → ``city_stationary`` (slow fading, no outages)
* ``walking``    → ``campus_pedestrian`` (moderate fading, rare outages)
* ``driving``    → ``city_driving`` (fast fading, handover outages)

crossed with the two technologies (``3g`` / ``lte``) the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cellular.channel_model import CellularChannelModel
from ..cellular.scenarios import scenario_params
from .formats import as_milliseconds

#: Mobility regimes offered as corpus presets (ISSUE regime names), and
#: the §5.3 scenario each one instantiates.
REGIME_SCENARIOS: Dict[str, str] = {
    "stationary": "city_stationary",
    "walking": "campus_pedestrian",
    "driving": "city_driving",
}

REGIMES = tuple(REGIME_SCENARIOS)
TECHNOLOGIES = ("3g", "lte")


@dataclass(frozen=True)
class SynthSpec:
    """One regenerable synthetic trace: regime × technology × seed.

    ``mean_rate_bps=None`` uses the technology's paper-default downlink
    rate (5 Mbps 3G / 10 Mbps LTE).
    """

    regime: str
    technology: str = "3g"
    duration: float = 30.0
    seed: int = 0
    mean_rate_bps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.regime not in REGIME_SCENARIOS:
            raise ValueError(f"unknown regime {self.regime!r}; "
                             f"choose from {REGIMES}")
        if self.technology not in TECHNOLOGIES:
            raise ValueError(f"unknown technology {self.technology!r}; "
                             f"choose from {TECHNOLOGIES}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    @property
    def scenario(self) -> str:
        return REGIME_SCENARIOS[self.regime]

    def default_name(self) -> str:
        return f"{self.regime}-{self.technology}-s{self.seed}"

    def to_dict(self) -> dict:
        return {
            "kind": "synth",
            "regime": self.regime,
            "technology": self.technology,
            "duration": self.duration,
            "seed": self.seed,
            "mean_rate_bps": self.mean_rate_bps,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SynthSpec":
        payload = {k: v for k, v in payload.items() if k != "kind"}
        return cls(**payload)

    def generate_seconds(self) -> np.ndarray:
        """The raw channel-model trace (float seconds)."""
        params = scenario_params(self.scenario, technology=self.technology,
                                 mean_rate_bps=self.mean_rate_bps)
        model = CellularChannelModel(
            params, rng=np.random.default_rng(self.seed))
        return model.generate(self.duration)

    def generate_ms(self) -> np.ndarray:
        """The canonical ms-quantised trace written into corpora."""
        return as_milliseconds(self.generate_seconds())


def synthesize(regime: str, technology: str = "3g", duration: float = 30.0,
               seed: int = 0,
               mean_rate_bps: Optional[float] = None) -> np.ndarray:
    """Convenience one-shot: canonical ms trace for the given regime."""
    return SynthSpec(regime=regime, technology=technology,
                     duration=duration, seed=seed,
                     mean_rate_bps=mean_rate_bps).generate_ms()
