"""Trace corpus subsystem: ingestion, synthesis, characterization and
workload generation.

The paper's headline results are all driven by recorded cellular traces;
this package turns traces from ad-hoc files into a managed, reproducible
input layer:

* :mod:`~repro.traces.formats` — mahimahi / newline-seconds / CSV
  readers and writers with auto-detection and lossless conversion;
* :mod:`~repro.traces.synth` — seeded synthesis from the channel
  model's regime presets, regenerable bit-identically from a manifest;
* :mod:`~repro.traces.stats` — per-trace characterization (rates,
  outages, burstiness, short-timescale variability) emitted as JSON;
* :mod:`~repro.traces.corpus` — a content-addressed registry with
  SHA-256 integrity, named presets and import provenance;
* :mod:`~repro.traces.workload` — deterministic augmentation
  (scale / splice / resample) and expansion of a corpus into campaign
  and chaos cells.

Dataflow::

    formats  --read/convert-->  canonical ms trace
    synth    --SynthSpec----->  canonical ms trace
                 |                       |
                 v                       v
    corpus (manifest.json + traces/*.pps, SHA-256 addressed)
                 |
                 v
    workload --expand--> TaskSpec / ChaosTask --> repro sweep / chaos
"""

from .corpus import (
    CORPUS_PRESETS,
    DEFAULT_CORPUS_DIR,
    BuildReport,
    Corpus,
    CorpusError,
    TraceEntry,
    build_corpus,
    import_trace,
    load_corpus,
    trace_sha256,
)
from .formats import (
    FORMATS,
    as_milliseconds,
    as_seconds,
    convert,
    detect_format,
    read_trace_ms,
    read_trace_seconds,
    write_trace_ms,
)
from .stats import TraceStats, characterize
from .synth import REGIMES, SynthSpec, synthesize
from .workload import (
    AUGMENT_OPS,
    apply_augment,
    augment_corpus,
    derive_seed,
    expand_corpus,
    expand_corpus_chaos,
    splice_traces,
)

__all__ = [
    "AUGMENT_OPS",
    "BuildReport",
    "CORPUS_PRESETS",
    "Corpus",
    "CorpusError",
    "DEFAULT_CORPUS_DIR",
    "FORMATS",
    "REGIMES",
    "SynthSpec",
    "TraceEntry",
    "TraceStats",
    "apply_augment",
    "as_milliseconds",
    "as_seconds",
    "augment_corpus",
    "build_corpus",
    "characterize",
    "convert",
    "derive_seed",
    "detect_format",
    "expand_corpus",
    "expand_corpus_chaos",
    "import_trace",
    "load_corpus",
    "read_trace_ms",
    "read_trace_seconds",
    "splice_traces",
    "synthesize",
    "trace_sha256",
    "write_trace_ms",
]
