"""Per-trace characterization, emitted as JSON.

Summarises a delivery-opportunity trace along the axes the paper's §3
measurement study uses to argue cellular channels are unpredictable:

* **rate** — mean plus p95/p99 of the windowed rate distribution;
* **outages** — count, total and longest span with no opportunities;
* **burstiness** — coefficient of variation of inter-opportunity gaps
  (the "bursts of variable size at variable intervals" observation);
* **short-timescale variability** — coefficient of variation of the
  windowed rate at 100 ms and 20 ms (Fig 4's two views), which must
  *grow* as the window shrinks on a genuinely cellular-like trace.

These are descriptive statistics for corpus manifests and ``repro
corpus stats``; the pass/fail distributional *checks* stay in
:mod:`repro.cellular.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netsim.packet import MTU_BYTES
from .formats import validate_ms


@dataclass
class TraceStats:
    """Descriptive summary of one delivery-opportunity trace."""

    opportunities: int
    duration_s: float
    mean_rate_bps: float
    p95_rate_bps: float
    p99_rate_bps: float
    outage_count: int
    outage_total_s: float
    outage_max_s: float
    gap_cv: float
    cv_100ms: float
    cv_20ms: float

    def to_dict(self) -> dict:
        return {
            "opportunities": self.opportunities,
            "duration_s": round(self.duration_s, 3),
            "mean_rate_bps": round(self.mean_rate_bps, 1),
            "p95_rate_bps": round(self.p95_rate_bps, 1),
            "p99_rate_bps": round(self.p99_rate_bps, 1),
            "outage_count": self.outage_count,
            "outage_total_s": round(self.outage_total_s, 3),
            "outage_max_s": round(self.outage_max_s, 3),
            "gap_cv": round(self.gap_cv, 4),
            "cv_100ms": round(self.cv_100ms, 4),
            "cv_20ms": round(self.cv_20ms, 4),
        }


def _windowed_rates(times_s: np.ndarray, window: float, duration: float,
                    packet_bytes: int) -> np.ndarray:
    n_bins = max(1, int(np.ceil(duration / window)))
    edges = np.arange(n_bins + 1) * window
    counts, _ = np.histogram(times_s, bins=edges)
    return counts * packet_bytes * 8.0 / window


def _cv(series: np.ndarray) -> float:
    mean = float(np.mean(series))
    if mean <= 0:
        return float("inf") if np.any(series > 0) else 0.0
    return float(np.std(series)) / mean


def characterize(times_ms: np.ndarray, *,
                 packet_bytes: int = MTU_BYTES,
                 rate_window_s: float = 0.1,
                 outage_threshold_s: float = 0.2) -> TraceStats:
    """Compute :class:`TraceStats` for a canonical ms trace.

    ``rate_window_s`` sets the bin used for the rate percentiles;
    an *outage* is any inter-opportunity gap exceeding
    ``outage_threshold_s`` (default 200 ms — an order of magnitude above
    typical scheduling gaps, well below the paper's multi-second driving
    outages, so both register).
    """
    arr = validate_ms(times_ms)
    times_s = arr.astype(float) / 1000.0
    if arr.size == 0:
        return TraceStats(opportunities=0, duration_s=0.0,
                          mean_rate_bps=0.0, p95_rate_bps=0.0,
                          p99_rate_bps=0.0, outage_count=0,
                          outage_total_s=0.0, outage_max_s=0.0,
                          gap_cv=0.0, cv_100ms=0.0, cv_20ms=0.0)
    duration = max(float(times_s[-1] - times_s[0]), 1e-3)
    rel = times_s - times_s[0]

    rates = _windowed_rates(rel, rate_window_s, duration, packet_bytes)
    gaps = np.diff(times_s)
    outage_gaps = gaps[gaps > outage_threshold_s]

    return TraceStats(
        opportunities=int(arr.size),
        duration_s=float(times_s[-1]),
        mean_rate_bps=arr.size * packet_bytes * 8.0 / duration,
        p95_rate_bps=float(np.percentile(rates, 95)),
        p99_rate_bps=float(np.percentile(rates, 99)),
        outage_count=int(outage_gaps.size),
        outage_total_s=float(outage_gaps.sum()),
        outage_max_s=float(outage_gaps.max()) if outage_gaps.size else 0.0,
        gap_cv=_cv(gaps) if gaps.size else 0.0,
        cv_100ms=_cv(_windowed_rates(rel, 0.100, duration, packet_bytes)),
        cv_20ms=_cv(_windowed_rates(rel, 0.020, duration, packet_bytes)),
    )
