"""Workload generation: trace augmentation and campaign expansion.

Two halves:

1. **Augmentation** grows the workload family beyond what the channel
   model synthesizes, with deterministic, manifest-recordable recipes —
   each op maps ``(parent_ms, params, seed) → ms`` and is registered in
   :data:`AUGMENT_OPS` so a corpus can regenerate derived traces from
   provenance alone:

   * ``scale`` — scale the offered *rate* by thinning (factor < 1) or
     duplicating (factor > 1) delivery opportunities;
   * ``splice`` — cut the trace into contiguous segments and splice
     them back in seeded-random order (regime-mixing without changing
     the marginal rate);
   * ``resample`` — block bootstrap: sample fixed-length blocks with
     replacement to any target duration (new trace, same short-timescale
     structure).

   Seeds are *derived* (SeedSequence over base seed + trace name + op),
   so augmenting a corpus twice yields identical traces.

2. **Expansion** turns a corpus into campaign/chaos cells: every trace
   becomes a scenario axis entry whose :class:`TaskSpec` /
   :class:`ChaosTask` pins the trace content by SHA-256, so ``repro
   sweep --corpus`` and ``repro chaos --corpus`` run straight off the
   registry with full cache correctness.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..campaign.spec import DEFAULT_PROTOCOL_OPTIONS, TaskSpec
from .corpus import Corpus, TraceEntry, trace_sha256
from .formats import validate_ms

#: Registered augmentation ops: name -> (parent_ms, params, seed) -> ms.
AUGMENT_OPS: Dict[str, Callable[[np.ndarray, dict, int], np.ndarray]] = {}


def _op(name: str):
    def register(fn):
        AUGMENT_OPS[name] = fn
        return fn
    return register


def derive_seed(base_seed: int, *entropy: str) -> int:
    """A well-separated child seed bound to string entropy (trace name,
    op, ...), stable across runs and machines."""
    words = [int.from_bytes(hashlib.sha256(item.encode()).digest()[:4], "big")
             for item in entropy]
    return int(np.random.SeedSequence([base_seed, *words])
               .generate_state(1)[0])


# ----------------------------------------------------------------------
# Augmentation ops
# ----------------------------------------------------------------------
@_op("scale")
def scale_rate(parent_ms: np.ndarray, params: dict, seed: int) -> np.ndarray:
    """Scale the offered rate by ``factor`` without changing duration.

    factor < 1 thins opportunities (each kept with probability factor);
    factor > 1 emits ``floor(factor)`` copies of each opportunity plus a
    fractional-probability extra.  Timestamps are never moved, so the
    burst *timing* structure is preserved — only its density changes.
    """
    factor = float(params["factor"])
    if factor <= 0:
        raise ValueError("scale factor must be positive")
    arr = validate_ms(parent_ms)
    if arr.size == 0:
        return arr
    rng = np.random.default_rng(seed)
    whole = int(factor)
    frac = factor - whole
    repeats = np.full(arr.size, whole, dtype=np.int64)
    if frac > 0:
        repeats += (rng.random(arr.size) < frac).astype(np.int64)
    return np.repeat(arr, repeats)


@_op("splice")
def splice_segments(parent_ms: np.ndarray, params: dict,
                    seed: int) -> np.ndarray:
    """Cut into ``segments`` equal time slices, splice in random order.

    Each reordered slice continues 1 ms after the previous one (the same
    seam rule as :class:`~repro.netsim.trace_link.TraceLink` looping),
    so total duration shrinks only by the removed inter-slice idle.
    """
    segments = int(params.get("segments", 4))
    if segments < 2:
        raise ValueError("splice needs at least 2 segments")
    arr = validate_ms(parent_ms)
    if arr.size == 0:
        return arr
    rng = np.random.default_rng(seed)
    start, end = int(arr[0]), int(arr[-1]) + 1
    edges = np.linspace(start, end, segments + 1).astype(np.int64)
    order = rng.permutation(segments)
    parts: List[np.ndarray] = []
    offset = 0
    for idx in order:
        chunk = arr[(arr >= edges[idx]) & (arr < edges[idx + 1])]
        if chunk.size == 0:
            continue
        parts.append(chunk - chunk[0] + offset)
        offset = int(parts[-1][-1]) + 1
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


@_op("resample")
def bootstrap_resample(parent_ms: np.ndarray, params: dict,
                       seed: int) -> np.ndarray:
    """Block bootstrap: fixed-length blocks sampled with replacement.

    ``block_ms`` controls which timescales survive (structure shorter
    than a block is kept, longer correlation is broken);
    ``duration_ms`` sets the output length, so one capture can seed
    arbitrarily long workloads.
    """
    block_ms = int(params.get("block_ms", 1000))
    duration_ms = int(params["duration_ms"])
    if block_ms <= 0 or duration_ms <= 0:
        raise ValueError("block_ms and duration_ms must be positive")
    arr = validate_ms(parent_ms)
    if arr.size == 0:
        return arr
    rng = np.random.default_rng(seed)
    start, end = int(arr[0]), int(arr[-1]) + 1
    span = max(end - start - block_ms, 1)
    parts: List[np.ndarray] = []
    offset = 0
    while offset < duration_ms:
        block_start = start + int(rng.integers(0, span))
        chunk = arr[(arr >= block_start) & (arr < block_start + block_ms)]
        if chunk.size:
            parts.append(chunk - block_start + offset)
        offset += block_ms
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def apply_augment(op: str, parent_ms: np.ndarray, params: dict,
                  seed: int) -> np.ndarray:
    """Dispatch a registered op; the hook corpus regeneration uses."""
    if op not in AUGMENT_OPS:
        raise ValueError(f"unknown augmentation op {op!r}; "
                         f"choose from {sorted(AUGMENT_OPS)}")
    return AUGMENT_OPS[op](parent_ms, params, seed)


def splice_traces(a_ms: np.ndarray, b_ms: np.ndarray,
                  gap_ms: int = 1) -> np.ndarray:
    """Join two traces back to back in the ms domain (programmatic
    two-trace splice; the corpus-recipe ``splice`` op is unary)."""
    a = validate_ms(a_ms)
    b = validate_ms(b_ms)
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    return np.concatenate([a, b - b[0] + int(a[-1]) + int(gap_ms)])


def augment_corpus(corpus: Corpus, name: str, op: str, parent: str,
                   params: Optional[dict] = None, base_seed: int = 0,
                   overwrite: bool = False) -> TraceEntry:
    """Add a derived trace to a corpus with full provenance.

    The derived seed binds (base_seed, parent, op, name), so re-running
    the same augmentation is a content-addressed no-op and the entry
    regenerates bit-identically from the manifest.
    """
    params = dict(params or {})
    seed = derive_seed(base_seed, parent, op, name)
    parent_ms = corpus.load_ms(parent)
    times_ms = apply_augment(op, parent_ms, params, seed)
    if times_ms.size == 0:
        raise ValueError(f"augment {op!r} of {parent!r} produced an "
                         f"empty trace")
    source = {"kind": "augment", "op": op, "parent": parent,
              "params": params, "seed": seed}
    return corpus.add_trace(name, times_ms, source, overwrite=overwrite)


# ----------------------------------------------------------------------
# Corpus -> campaign expansion
# ----------------------------------------------------------------------
def expand_corpus(corpus: Corpus, protocols: Sequence[str],
                  flow_counts: Sequence[int] = (3,), seeds: int = 1,
                  duration: Optional[float] = None, rtt: float = 0.01,
                  warmup: Optional[float] = None, base_seed: int = 0,
                  names: Optional[Sequence[str]] = None) -> List[TaskSpec]:
    """Expand traces × protocols × flow_counts × seeds into sweep cells.

    Mirrors :meth:`~repro.campaign.spec.CampaignSpec.expand`: per-cell
    seeds are SeedSequence-derived from the cell's grid position, so
    the mapping is stable under any execution order and ``--jobs``.
    ``duration=None`` runs each trace for its own recorded length.
    """
    if seeds < 1:
        raise ValueError("seeds must be at least 1")
    chosen = list(names) if names is not None else corpus.names()
    if not chosen or not protocols or not flow_counts:
        raise ValueError("corpus traces, protocols and flow_counts must "
                         "each have at least one entry")
    for name in chosen:
        corpus.entry(name)   # raise early on unknown names
    size = len(chosen) * len(protocols) * len(flow_counts) * seeds
    children = np.random.SeedSequence(base_seed).spawn(size)
    tasks: List[TaskSpec] = []
    index = 0
    for name in chosen:
        entry = corpus.entry(name)
        cell_duration = duration
        if cell_duration is None:
            cell_duration = float(entry.stats.get("duration_s") or 30.0)
        cell_warmup = (warmup if warmup is not None
                       else min(5.0, cell_duration / 5.0))
        trace_path = str((corpus.root / entry.file).resolve())
        for protocol in protocols:
            for flows in flow_counts:
                options = dict(DEFAULT_PROTOCOL_OPTIONS.get(protocol, {}))
                for seed_index in range(seeds):
                    seed = int(children[index].generate_state(1)[0])
                    tasks.append(TaskSpec(
                        scenario=name,
                        protocol=protocol,
                        flows=flows,
                        duration=cell_duration,
                        seed=seed,
                        seed_index=seed_index,
                        rtt=rtt,
                        warmup=cell_warmup,
                        label=protocol,
                        options=tuple(sorted(options.items())),
                        trace_file=trace_path,
                        trace_sha256=entry.sha256,
                    ))
                    index += 1
    return tasks


def expand_corpus_chaos(corpus: Corpus, protocols: Sequence[str],
                        faults: Sequence[str], seeds: int = 1,
                        duration: Optional[float] = None,
                        backends: Sequence[str] = ("sim",),
                        flows: int = 1, rtt: float = 0.01,
                        warmup: Optional[float] = None,
                        deadline: float = 3.0, base_seed: int = 0,
                        names: Optional[Sequence[str]] = None):
    """Expand traces × protocols × faults × backends × seeds into chaos
    cells pinned to corpus content, for ``repro chaos --corpus``."""
    from ..faults.chaos import ChaosTask

    if seeds < 1:
        raise ValueError("seeds must be at least 1")
    chosen = list(names) if names is not None else corpus.names()
    if not chosen or not protocols or not faults or not backends:
        raise ValueError("corpus traces, protocols, faults and backends "
                         "must each have at least one entry")
    for name in chosen:
        corpus.entry(name)
    size = len(chosen) * len(protocols) * len(faults) * len(backends) * seeds
    children = np.random.SeedSequence(base_seed).spawn(size)
    tasks: List[ChaosTask] = []
    index = 0
    for name in chosen:
        entry = corpus.entry(name)
        cell_duration = duration
        if cell_duration is None:
            cell_duration = float(entry.stats.get("duration_s") or 20.0)
        cell_warmup = (warmup if warmup is not None
                       else min(1.0, cell_duration / 10.0))
        trace_path = str((corpus.root / entry.file).resolve())
        for protocol in protocols:
            for fault in faults:
                for backend in backends:
                    for seed_index in range(seeds):
                        seed = int(children[index].generate_state(1)[0])
                        tasks.append(ChaosTask(
                            protocol=protocol, fault=fault,
                            duration=cell_duration, seed=seed,
                            seed_index=seed_index, backend=backend,
                            scenario=name, flows=flows, rtt=rtt,
                            warmup=cell_warmup, deadline=deadline,
                            trace_file=trace_path,
                            trace_sha256=entry.sha256))
                        index += 1
    return tasks
